//! Communication-safety verification: a rank-parametric abstract
//! interpretation over the AST.
//!
//! For each concrete rank (`mynum = 0, 1, …`) the pass walks the main
//! program with an abstract scalar environment of integer intervals
//! ([`crate::interval::Val`]) and tracks the multiset of *in-flight*
//! regions posted by `mpi_isend`/`mpi_irecv`. The walk is concrete where
//! it must be and summarized where it can be:
//!
//! - a loop whose body (transitively) communicates is **iterated
//!   concretely** — its bounds must evaluate to known constants (they do
//!   in every program the pipeline emits: `np` and the tile bounds are
//!   literals or context symbols), otherwise the program is rejected as
//!   unverifiable ([`Code::A007`]);
//! - a pure-compute loop is **summarized**: scalars it assigns are
//!   widened, the loop variable is bound to the hull of its bounds, and
//!   the body is walked once — so its array accesses cover every
//!   iteration at once. This is the interval analogue of `depan`'s
//!   affine-footprint reasoning (and uses [`depan::affine`] to evaluate
//!   affine subscripts exactly), so imprecision can only widen a region,
//!   never shrink one: false alarms are possible, missed hazards are not.
//!
//! Hazards ([`Code::A003`]/[`Code::A004`]) are region intersections
//! against the in-flight multiset; waits drain it; a branch whose
//! condition a rank cannot decide is walked down both arms and must leave
//! the same in-flight multiset ([`Code::A006`]); whatever is still in
//! flight when the program ends was never waited for
//! ([`Code::A001`]/[`Code::A002`]). Collectives are recorded per rank and
//! compared across ranks ([`Code::A005`]).

use crate::diag::{AnalysisReport, Code, Diagnostic};
use crate::interval::Val;
use fir::ast::*;
use fir::intrinsics::{is_mpi_builtin, is_predefined_scalar};
use fir::span::Span;
use fir::symbol::implicit_type;
use std::collections::HashMap;

/// Configuration for one verification run.
#[derive(Debug, Clone)]
pub struct CommCheckConfig {
    /// Number of ranks. Small counts are enumerated exhaustively; large
    /// counts check ranks `0..8` plus `np-1` (the communication structure
    /// emitted by the pipeline is symmetric in `mynum` beyond the
    /// first/last distinction).
    pub np: i64,
    /// Known symbol values (problem sizes etc.), same role as
    /// [`depan::Context`] in the transformation.
    pub symbols: Vec<(String, i64)>,
    /// Abstract-step budget per rank; exhausting it yields [`Code::A007`]
    /// rather than an unbounded analysis.
    pub budget: u64,
}

impl CommCheckConfig {
    pub fn new(np: i64) -> Self {
        CommCheckConfig {
            np,
            symbols: Vec::new(),
            budget: 2_000_000,
        }
    }

    pub fn with_symbols(mut self, symbols: Vec<(String, i64)>) -> Self {
        self.symbols = symbols;
        self
    }

    /// The ranks this configuration actually walks.
    pub fn ranks(&self) -> Vec<i64> {
        if self.np <= 10 {
            (0..self.np.max(1)).collect()
        } else {
            let mut r: Vec<i64> = (0..8).collect();
            r.push(self.np - 1);
            r
        }
    }
}

/// Verify the communication safety of `program` and return the report.
/// The program must already be valid ([`fir::validate`]).
pub fn verify_comm(program: &Program, cfg: &CommCheckConfig) -> AnalysisReport {
    let mut a = Analyzer::new(program, cfg);
    let ranks = cfg.ranks();
    let mut traces: Vec<(i64, Vec<CollectiveEvent>)> = Vec::new();
    for &rank in &ranks {
        if let Some(trace) = a.walk_rank(rank) {
            traces.push((rank, trace));
        }
    }
    a.compare_collectives(&traces);
    let mut report = AnalysisReport {
        diagnostics: a.diags,
        ranks_checked: ranks,
        types: None,
    };
    report.normalize();
    report
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CommKind {
    Send,
    Recv,
}

/// An abstract array region: one interval per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Region {
    array: String,
    dims: Vec<Val>,
}

impl Region {
    fn overlaps(&self, other: &Region) -> bool {
        self.array == other.array
            && (self.dims.len() != other.dims.len()
                || self
                    .dims
                    .iter()
                    .zip(&other.dims)
                    .all(|(a, b)| a.overlaps(*b)))
    }
}

/// One posted-but-unwaited communication.
#[derive(Debug, Clone)]
struct Pending {
    kind: CommKind,
    region: Region,
    span: Span,
}

/// One collective executed by a rank, for cross-rank comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CollectiveEvent {
    name: String,
    /// Per-rank element count; `None` when no count argument applies
    /// (barrier).
    count: Option<i64>,
    span: Span,
}

#[derive(Debug, Clone)]
struct RankState {
    env: HashMap<String, Val>,
    pending: Vec<Pending>,
    collectives: Vec<CollectiveEvent>,
    steps: u64,
}

/// The walk aborted (unverifiable / budget); an A007 was already filed.
struct Abort;

struct Analyzer<'p> {
    program: &'p Program,
    cfg: &'p CommCheckConfig,
    /// Procedure name -> does it (transitively) perform communication?
    proc_comm: HashMap<&'p str, bool>,
    /// Scalar name -> declared-or-implicit type, main scope.
    scalar_types: HashMap<String, ScalarType>,
    diags: Vec<Diagnostic>,
    current_rank: i64,
}

impl<'p> Analyzer<'p> {
    fn new(program: &'p Program, cfg: &'p CommCheckConfig) -> Self {
        let proc_comm = compute_proc_comm(program);
        let mut scalar_types = HashMap::new();
        for d in &program.main.decls {
            if !d.is_array() {
                scalar_types.insert(d.name.clone(), d.ty);
            }
        }
        Analyzer {
            program,
            cfg,
            proc_comm,
            scalar_types,
            diags: Vec::new(),
            current_rank: 0,
        }
    }

    fn diag(&mut self, code: Code, span: Span, message: String) {
        self.diags.push(Diagnostic {
            code,
            message,
            span,
            ranks: vec![self.current_rank],
        });
    }

    /// Walk one rank to completion; `None` when the walk aborted (its
    /// collective trace would be partial and must not be compared).
    fn walk_rank(&mut self, rank: i64) -> Option<Vec<CollectiveEvent>> {
        self.current_rank = rank;
        let mut st = RankState {
            env: HashMap::new(),
            pending: Vec::new(),
            collectives: Vec::new(),
            steps: 0,
        };
        st.env.insert("mynum".into(), Val::constant(rank));
        st.env.insert("np".into(), Val::constant(self.cfg.np));
        for (name, v) in &self.cfg.symbols {
            st.env
                .entry(name.clone())
                .or_insert_with(|| Val::constant(*v));
        }
        let body = &self.program.main.body;
        let completed = self.walk_stmts(body, &mut st, false).is_ok();
        if completed {
            for p in &st.pending {
                let (code, what) = match p.kind {
                    CommKind::Send => (Code::A001, "mpi_isend"),
                    CommKind::Recv => (Code::A002, "mpi_irecv"),
                };
                self.diags.push(Diagnostic {
                    code,
                    message: format!(
                        "{what} on `{}` is still in flight when the program ends; \
                         no wait matches it on this path",
                        p.region.array
                    ),
                    span: p.span,
                    ranks: vec![rank],
                });
            }
            Some(st.collectives)
        } else {
            None
        }
    }

    /// Compare per-rank collective traces; every completed rank must
    /// execute the same sequence with the same counts.
    fn compare_collectives(&mut self, traces: &[(i64, Vec<CollectiveEvent>)]) {
        let Some((base_rank, base)) = traces.first() else {
            return;
        };
        for (rank, trace) in &traces[1..] {
            let n = base.len().min(trace.len());
            for i in 0..n {
                if base[i] != trace[i] {
                    self.diags.push(Diagnostic {
                        code: Code::A005,
                        message: format!(
                            "collective #{}: rank {base_rank} executes `{}` (count {:?}) \
                             but rank {rank} executes `{}` (count {:?}) — ranks would deadlock",
                            i + 1,
                            base[i].name,
                            base[i].count,
                            trace[i].name,
                            trace[i].count
                        ),
                        span: trace[i].span,
                        ranks: vec![*base_rank, *rank],
                    });
                    return;
                }
            }
            if base.len() != trace.len() {
                let (longer_rank, ev) = if base.len() > trace.len() {
                    (*base_rank, &base[n])
                } else {
                    (*rank, &trace[n])
                };
                let other = if longer_rank == *base_rank { *rank } else { *base_rank };
                self.diags.push(Diagnostic {
                    code: Code::A005,
                    message: format!(
                        "rank {longer_rank} executes `{}` but rank {other} never reaches a \
                         matching collective — ranks would deadlock",
                        ev.name
                    ),
                    span: ev.span,
                    ranks: vec![*base_rank, *rank],
                });
                return;
            }
        }
    }

    // -- statement walk ---------------------------------------------------

    /// `sum` selects summary mode: loop variables are hulls, assigned
    /// scalars are widened, and branches with undecided conditions are
    /// simply walked down both arms (summarized code never communicates).
    fn walk_stmts(&mut self, stmts: &[Stmt], st: &mut RankState, sum: bool) -> Result<(), Abort> {
        for s in stmts {
            self.walk_stmt(s, st, sum)?;
        }
        Ok(())
    }

    fn walk_stmt(&mut self, s: &Stmt, st: &mut RankState, sum: bool) -> Result<(), Abort> {
        st.steps += 1;
        if st.steps > self.cfg.budget {
            self.diag(
                Code::A007,
                stmt_span(s),
                format!(
                    "analysis budget ({} abstract steps) exhausted on rank {}",
                    self.cfg.budget, self.current_rank
                ),
            );
            return Err(Abort);
        }
        match s {
            Stmt::Assign { target, value, span } => {
                self.check_expr_reads(value, st);
                for ix in &target.indices {
                    self.check_expr_reads(ix, st);
                }
                if target.indices.is_empty() && !self.is_array(&target.name) {
                    // Scalar assignment: track integers, widen reals.
                    let v = if self.scalar_is_integer(&target.name) {
                        self.eval(value, st)
                    } else {
                        Val::Top
                    };
                    st.env.insert(target.name.clone(), v);
                } else {
                    let region = self.region_of_access(&target.name, &target.indices, st);
                    self.check_write(&region, *span, st);
                }
            }
            Stmt::Do {
                var,
                lower,
                upper,
                step,
                body,
                span,
            } => {
                self.check_expr_reads(lower, st);
                self.check_expr_reads(upper, st);
                if let Some(e) = step {
                    self.check_expr_reads(e, st);
                }
                if self.stmts_communicate(body) {
                    self.walk_comm_loop(var, lower, upper, step.as_ref(), body, *span, st)?;
                } else {
                    self.walk_compute_loop(var, lower, upper, body, st)?;
                }
                // After the loop the variable holds the first value past
                // the bound — outside the iteration hull, so widen.
                st.env.insert(var.clone(), Val::Top);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                self.check_expr_reads(cond, st);
                match self.truth(cond, st) {
                    Some(true) => self.walk_stmts(then_body, st, sum)?,
                    Some(false) => self.walk_stmts(else_body, st, sum)?,
                    None => self.walk_unknown_branch(then_body, else_body, *span, st, sum)?,
                }
            }
            Stmt::Call { name, args, span } => {
                self.walk_call(name, args, *span, st)?;
            }
        }
        Ok(())
    }

    /// A loop that communicates: iterate it concretely. Bounds that are
    /// not statically known make the communication structure symbolic —
    /// reject as unverifiable rather than guess.
    #[allow(clippy::too_many_arguments)] // mirrors the Do statement's fields
    fn walk_comm_loop(
        &mut self,
        var: &str,
        lower: &Expr,
        upper: &Expr,
        step: Option<&Expr>,
        body: &[Stmt],
        span: Span,
        st: &mut RankState,
    ) -> Result<(), Abort> {
        let lo = self.eval(lower, st).singleton();
        let hi = self.eval(upper, st).singleton();
        let stp = match step {
            None => Some(1),
            Some(e) => self.eval(e, st).singleton(),
        };
        let (Some(lo), Some(hi), Some(stp)) = (lo, hi, stp) else {
            self.diag(
                Code::A007,
                span,
                format!(
                    "loop over `{var}` communicates but its bounds are not statically \
                     known on rank {} — communication structure is unverifiable",
                    self.current_rank
                ),
            );
            return Err(Abort);
        };
        if stp == 0 {
            self.diag(
                Code::A007,
                span,
                format!("loop over `{var}` has step 0 — cannot enumerate its iterations"),
            );
            return Err(Abort);
        }
        let mut x = lo;
        while (stp > 0 && x <= hi) || (stp < 0 && x >= hi) {
            st.env.insert(var.to_string(), Val::constant(x));
            self.walk_stmts(body, st, false)?;
            x = match x.checked_add(stp) {
                Some(x) => x,
                None => break,
            };
        }
        Ok(())
    }

    /// A pure-compute loop: widen everything it assigns, bind the loop
    /// variable to the hull of its bounds, and walk the body once so the
    /// recorded accesses cover all iterations.
    fn walk_compute_loop(
        &mut self,
        var: &str,
        lower: &Expr,
        upper: &Expr,
        body: &[Stmt],
        st: &mut RankState,
    ) -> Result<(), Abort> {
        let lo = self.eval(lower, st);
        let hi = self.eval(upper, st);
        let mut assigned = Vec::new();
        collect_assigned_scalars(body, &mut assigned);
        for name in assigned {
            if !self.is_array(&name) {
                st.env.insert(name, Val::Top);
            }
        }
        st.env.insert(var.to_string(), lo.join(hi));
        self.walk_stmts(body, st, true)
    }

    /// A branch this rank cannot decide: walk both arms on cloned states.
    /// Both arms must agree on the in-flight multiset (else a wait is
    /// missing on one path) and on any collectives they execute.
    fn walk_unknown_branch(
        &mut self,
        then_body: &[Stmt],
        else_body: &[Stmt],
        span: Span,
        st: &mut RankState,
        sum: bool,
    ) -> Result<(), Abort> {
        let base_collectives = st.collectives.len();
        let mut st_else = st.clone();
        self.walk_stmts(then_body, st, sum)?;
        self.walk_stmts(else_body, &mut st_else, sum)?;

        if st.collectives[base_collectives..] != st_else.collectives[base_collectives..] {
            self.diag(
                Code::A005,
                span,
                "a collective is executed under a condition the analysis cannot decide \
                 per-rank; ranks taking different arms would deadlock"
                    .into(),
            );
        }

        let then_keys = pending_keys(&st.pending);
        let else_keys = pending_keys(&st_else.pending);
        if then_keys != else_keys {
            self.diag(
                Code::A006,
                span,
                format!(
                    "the arms of this branch leave different operations in flight \
                     ({} vs {}) — a wait is missing on one path",
                    describe_pending(&st.pending),
                    describe_pending(&st_else.pending)
                ),
            );
            // Continue with the union so later hazards are still caught.
            for p in st_else.pending {
                if !st
                    .pending
                    .iter()
                    .any(|q| q.kind == p.kind && q.region == p.region && q.span == p.span)
                {
                    st.pending.push(p);
                }
            }
        }

        // Join the environments pointwise.
        let mut joined = HashMap::new();
        for name in st.env.keys().chain(st_else.env.keys()) {
            if joined.contains_key(name) {
                continue;
            }
            let a = self.value_of(name, &st.env);
            let b = self.value_of(name, &st_else.env);
            joined.insert(name.clone(), a.join(b));
        }
        st.env = joined;
        st.steps = st.steps.max(st_else.steps);
        Ok(())
    }

    // -- calls ------------------------------------------------------------

    fn walk_call(
        &mut self,
        name: &str,
        args: &[Arg],
        span: Span,
        st: &mut RankState,
    ) -> Result<(), Abort> {
        for a in args {
            if let Arg::Expr(e) = a {
                self.check_expr_reads(e, st);
            }
        }
        if is_mpi_builtin(name) || name == "print" {
            return self.walk_builtin(name, args, span, st);
        }
        let Some(proc) = self.program.procedure(name) else {
            self.diag(
                Code::A007,
                span,
                format!("call to unknown procedure `{name}` cannot be analyzed"),
            );
            return Err(Abort);
        };
        if self.proc_comm.get(proc.name.as_str()).copied().unwrap_or(false) {
            self.diag(
                Code::A007,
                span,
                format!(
                    "`{name}` performs communication; interprocedural communication \
                     is not verified — inline the calls or wait before them"
                ),
            );
            return Err(Abort);
        }
        // A communication-free callee can read and write exactly the array
        // windows it was passed (scalars go by value).
        for a in args {
            if let Some(region) = self.region_of_arg(a, st) {
                self.check_write(&region, span, st);
                self.check_read(&region, span, st);
            }
        }
        Ok(())
    }

    fn walk_builtin(
        &mut self,
        name: &str,
        args: &[Arg],
        span: Span,
        st: &mut RankState,
    ) -> Result<(), Abort> {
        match name {
            "mpi_isend" => {
                if let Some(region) = args.first().and_then(|a| self.region_of_arg(a, st)) {
                    // Sending reads the buffer: in-flight receives into it
                    // are a hazard; concurrent sends of the same region
                    // are only concurrent reads.
                    self.check_read(&region, span, st);
                    st.pending.push(Pending {
                        kind: CommKind::Send,
                        region,
                        span,
                    });
                }
            }
            "mpi_irecv" => {
                if let Some(region) = args.first().and_then(|a| self.region_of_arg(a, st)) {
                    self.check_write(&region, span, st);
                    st.pending.push(Pending {
                        kind: CommKind::Recv,
                        region,
                        span,
                    });
                }
            }
            "mpi_waitall_recv" => {
                st.pending.retain(|p| p.kind != CommKind::Recv);
            }
            "mpi_waitall" => {
                st.pending.clear();
            }
            "mpi_barrier" => {
                st.collectives.push(CollectiveEvent {
                    name: name.to_string(),
                    count: None,
                    span,
                });
            }
            "mpi_alltoall" => {
                if let Some(region) = args.first().and_then(|a| self.region_of_arg(a, st)) {
                    self.check_read(&region, span, st);
                }
                if let Some(region) = args.get(2).and_then(|a| self.region_of_arg(a, st)) {
                    self.check_write(&region, span, st);
                }
                let count = match args.get(1) {
                    Some(Arg::Expr(e)) => {
                        let v = self.eval(e, st).singleton();
                        if v.is_none() {
                            self.diag(
                                Code::A007,
                                span,
                                "mpi_alltoall count is not statically known; cannot \
                                 prove it consistent across ranks"
                                    .into(),
                            );
                            return Err(Abort);
                        }
                        v
                    }
                    _ => None,
                };
                st.collectives.push(CollectiveEvent {
                    name: name.to_string(),
                    count,
                    span,
                });
            }
            // `print` only reads; argument reads were checked by the
            // caller.
            _ => {}
        }
        Ok(())
    }

    // -- hazard checks ----------------------------------------------------

    fn check_expr_reads(&mut self, e: &Expr, st: &mut RankState) {
        match e {
            Expr::IntLit(..) | Expr::RealLit(..) | Expr::Var(..) => {}
            Expr::ArrayRef {
                name,
                indices,
                span,
            } => {
                for ix in indices {
                    self.check_expr_reads(ix, st);
                }
                if self.is_array(name) {
                    let region = self.region_of_access(name, indices, st);
                    self.check_read(&region, *span, st);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.check_expr_reads(a, st);
                }
            }
            Expr::Unary { operand, .. } => self.check_expr_reads(operand, st),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr_reads(lhs, st);
                self.check_expr_reads(rhs, st);
            }
        }
    }

    fn check_read(&mut self, region: &Region, span: Span, st: &RankState) {
        let mut hits = Vec::new();
        for p in &st.pending {
            if p.kind == CommKind::Recv && region.overlaps(&p.region) {
                hits.push(format!(
                    "`{}` is read while an mpi_irecv into it is in flight; its \
                     contents are undefined until `call mpi_waitall_recv()`",
                    region.array
                ));
            }
        }
        for m in hits {
            self.diag(Code::A004, span, m);
        }
    }

    fn check_write(&mut self, region: &Region, span: Span, st: &RankState) {
        let mut hits = Vec::new();
        for p in &st.pending {
            if region.overlaps(&p.region) {
                match p.kind {
                    CommKind::Send => hits.push((
                        Code::A003,
                        format!(
                            "`{}` is written while an mpi_isend of it is in flight; \
                             the network may transmit the clobbered data",
                            region.array
                        ),
                    )),
                    CommKind::Recv => hits.push((
                        Code::A004,
                        format!(
                            "`{}` is written while an mpi_irecv into it is in flight; \
                             the arriving message would overwrite this store",
                            region.array
                        ),
                    )),
                }
            }
        }
        for (code, m) in hits {
            self.diag(code, span, m);
        }
    }

    // -- regions ----------------------------------------------------------

    /// Region of `name(indices…)`; `name()` (no indices) or a bare array
    /// name covers the whole declared extent.
    fn region_of_access(&mut self, name: &str, indices: &[Expr], st: &RankState) -> Region {
        let decl_dims = self.decl_dims(name, st);
        let dims = if indices.is_empty() {
            decl_dims
        } else {
            indices
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let v = self.eval(e, st);
                    match v {
                        Val::Top => decl_dims.get(i).copied().unwrap_or(Val::Top),
                        v => v,
                    }
                })
                .collect()
        };
        Region {
            array: name.to_string(),
            dims,
        }
    }

    /// Region named by a call argument, when it names an array window.
    fn region_of_arg(&mut self, arg: &Arg, st: &RankState) -> Option<Region> {
        match arg {
            Arg::Expr(Expr::Var(name, _)) if self.is_array(name) => {
                Some(Region {
                    array: name.clone(),
                    dims: self.decl_dims(name, st),
                })
            }
            Arg::Expr(Expr::ArrayRef {
                name,
                indices,
                ..
            }) if self.is_array(name) => Some(self.region_of_access(name, indices, st)),
            Arg::Section(sec) => {
                let decl_dims = self.decl_dims(&sec.name, st);
                let dims = sec
                    .dims
                    .iter()
                    .enumerate()
                    .map(|(i, d)| {
                        let full = decl_dims.get(i).copied().unwrap_or(Val::Top);
                        match d {
                            SecDim::Index(e) => match self.eval(e, st) {
                                Val::Top => full,
                                v => v,
                            },
                            SecDim::Range(lo, hi) => {
                                let lo_v = match lo {
                                    Some(e) => self.eval(e, st),
                                    None => full,
                                };
                                let hi_v = match hi {
                                    Some(e) => self.eval(e, st),
                                    None => full,
                                };
                                match (lo_v.bounds(), hi_v.bounds()) {
                                    (Some((a, _)), Some((_, d))) => Val::Range(a.min(d), d.max(a)),
                                    _ => full,
                                }
                            }
                        }
                    })
                    .collect();
                Some(Region {
                    array: sec.name.clone(),
                    dims,
                })
            }
            Arg::Expr(_) => None,
        }
    }

    /// Declared per-dimension extents of `name`, evaluated abstractly.
    fn decl_dims(&mut self, name: &str, st: &RankState) -> Vec<Val> {
        let Some(decl) = self.program.main.decl(name) else {
            return Vec::new();
        };
        decl.dims
            .iter()
            .map(|b| {
                let lo = self.eval(&b.lower, st);
                let hi = self.eval(&b.upper, st);
                match (lo.bounds(), hi.bounds()) {
                    (Some((a, _)), Some((_, d))) => Val::Range(a.min(d), d.max(a)),
                    _ => Val::Top,
                }
            })
            .collect()
    }

    // -- abstract evaluation ----------------------------------------------

    fn value_of(&self, name: &str, env: &HashMap<String, Val>) -> Val {
        if let Some(v) = env.get(name) {
            return *v;
        }
        // Never-written scalars read as typed zero (DESIGN.md's
        // deterministic-zero convention) — exact for integers.
        if self.scalar_is_integer(name) && !self.is_array(name) {
            Val::constant(0)
        } else {
            Val::Top
        }
    }

    fn eval(&self, e: &Expr, st: &RankState) -> Val {
        // Affine subscripts go through depan's evaluator first — the
        // dependence facts the transformation itself relied on.
        if let Some(aff) = depan::affine::from_expr(e) {
            if let Some(v) = aff.eval(&|name| st.env.get(name).and_then(|v| v.singleton())) {
                return Val::constant(v);
            }
        }
        self.eval_rec(e, st)
    }

    fn eval_rec(&self, e: &Expr, st: &RankState) -> Val {
        match e {
            Expr::IntLit(v, _) => Val::constant(*v),
            Expr::RealLit(..) => Val::Top,
            Expr::Var(name, _) => self.value_of(name, &st.env),
            Expr::ArrayRef { .. } => Val::Top,
            Expr::Call { name, args, .. } => {
                let vals: Vec<Val> = args.iter().map(|a| self.eval(a, st)).collect();
                match (name.as_str(), vals.as_slice()) {
                    ("mod", [a, m]) => a.modulo(*m),
                    ("min", [first, rest @ ..]) => {
                        rest.iter().fold(*first, |acc, v| acc.min(*v))
                    }
                    ("max", [first, rest @ ..]) => {
                        rest.iter().fold(*first, |acc, v| acc.max(*v))
                    }
                    ("abs", [a]) => a.abs(),
                    // int()/floor() of an already-integer value is exact;
                    // of a real it is Top (reals are not tracked).
                    ("int" | "floor", [a]) => match a.singleton() {
                        Some(v) if self.expr_is_integer(&args[0]) => Val::constant(v),
                        _ => Val::Top,
                    },
                    _ => Val::Top,
                }
            }
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Neg => self.eval(operand, st).neg(),
                UnOp::Not => match self.truth(operand, st) {
                    Some(t) => Val::constant(i64::from(!t)),
                    None => Val::Range(0, 1),
                },
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                use BinOp::*;
                match op {
                    And | Or => {
                        let a = self.truth(lhs, st);
                        let b = self.truth(rhs, st);
                        let r = if *op == And {
                            match (a, b) {
                                (Some(false), _) | (_, Some(false)) => Some(false),
                                (Some(true), Some(true)) => Some(true),
                                _ => None,
                            }
                        } else {
                            match (a, b) {
                                (Some(true), _) | (_, Some(true)) => Some(true),
                                (Some(false), Some(false)) => Some(false),
                                _ => None,
                            }
                        };
                        match r {
                            Some(t) => Val::constant(i64::from(t)),
                            None => Val::Range(0, 1),
                        }
                    }
                    Eq | Ne | Lt | Le | Gt | Ge => {
                        // Interval comparison is only exact for integers;
                        // real operands evaluate to Top and decide nothing.
                        if !self.expr_is_integer(lhs) || !self.expr_is_integer(rhs) {
                            return Val::Range(0, 1);
                        }
                        let a = self.eval(lhs, st);
                        let b = self.eval(rhs, st);
                        let r = match op {
                            Eq => a.cmp_eq(b),
                            Ne => a.cmp_eq(b).map(|t| !t),
                            Lt => a.cmp_lt(b),
                            Le => a.cmp_le(b),
                            Gt => b.cmp_lt(a),
                            Ge => b.cmp_le(a),
                            _ => unreachable!(),
                        };
                        match r {
                            Some(t) => Val::constant(i64::from(t)),
                            None => Val::Range(0, 1),
                        }
                    }
                    Add | Sub | Mul | Div | Pow => {
                        if !self.expr_is_integer(lhs) || !self.expr_is_integer(rhs) {
                            return Val::Top;
                        }
                        let a = self.eval(lhs, st);
                        let b = self.eval(rhs, st);
                        match op {
                            Add => a.add(b),
                            Sub => a.sub(b),
                            Mul => a.mul(b),
                            Div => a.div(b),
                            Pow => match (a.singleton(), b.singleton()) {
                                (Some(x), Some(y)) if (0..=62).contains(&y) => x
                                    .checked_pow(y as u32)
                                    .map_or(Val::Top, Val::constant),
                                _ => Val::Top,
                            },
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    fn truth(&self, e: &Expr, st: &RankState) -> Option<bool> {
        match self.eval(e, st) {
            Val::Range(lo, hi) if lo == 0 && hi == 0 => Some(false),
            Val::Range(lo, hi) if lo > 0 || hi < 0 => Some(true),
            _ => None,
        }
    }

    // -- classification ---------------------------------------------------

    fn is_array(&self, name: &str) -> bool {
        self.program.main.decl(name).is_some_and(Decl::is_array)
    }

    /// Statically integer-valued scalar (declared, implicit rule, or
    /// predefined)?
    fn scalar_is_integer(&self, name: &str) -> bool {
        if is_predefined_scalar(name) {
            return true;
        }
        match self.scalar_types.get(name) {
            Some(t) => *t == ScalarType::Integer,
            None => implicit_type(name) == ScalarType::Integer,
        }
    }

    /// Statically integer-valued expression (mirrors
    /// `fir::validate::infer_type` conservatively: `false` when unsure).
    fn expr_is_integer(&self, e: &Expr) -> bool {
        match e {
            Expr::IntLit(..) => true,
            Expr::RealLit(..) => false,
            Expr::Var(name, _) => self.scalar_is_integer(name),
            Expr::ArrayRef { name, .. } => self
                .program
                .main
                .decl(name)
                .is_some_and(|d| d.ty == ScalarType::Integer),
            Expr::Call { name, args, .. } => match name.as_str() {
                "mod" | "floor" | "int" => true,
                "abs" | "min" | "max" => args.iter().all(|a| self.expr_is_integer(a)),
                _ => false,
            },
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Not => true,
                UnOp::Neg => self.expr_is_integer(operand),
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                use BinOp::*;
                match op {
                    Eq | Ne | Lt | Le | Gt | Ge | And | Or => true,
                    Add | Sub | Mul | Div | Pow => {
                        self.expr_is_integer(lhs) && self.expr_is_integer(rhs)
                    }
                }
            }
        }
    }

    fn stmts_communicate(&self, stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| self.stmt_communicates(s))
    }

    fn stmt_communicates(&self, s: &Stmt) -> bool {
        match s {
            Stmt::Assign { .. } => false,
            Stmt::Do { body, .. } => self.stmts_communicate(body),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => self.stmts_communicate(then_body) || self.stmts_communicate(else_body),
            Stmt::Call { name, .. } => {
                is_mpi_builtin(name)
                    || self.proc_comm.get(name.as_str()).copied().unwrap_or(false)
            }
        }
    }
}

/// Does each procedure (transitively) perform communication? Fixpoint
/// over the call graph; unknown callees count as communicating (they
/// abort the walk anyway).
fn compute_proc_comm(program: &Program) -> HashMap<&str, bool> {
    let mut comm: HashMap<&str, bool> = HashMap::new();
    for p in program.all_procedures() {
        comm.insert(p.name.as_str(), false);
    }
    loop {
        let mut changed = false;
        for p in program.all_procedures() {
            if comm[p.name.as_str()] {
                continue;
            }
            if body_communicates(&p.body, &comm) {
                comm.insert(p.name.as_str(), true);
                changed = true;
            }
        }
        if !changed {
            return comm;
        }
    }
}

fn body_communicates(stmts: &[Stmt], comm: &HashMap<&str, bool>) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign { .. } => false,
        Stmt::Do { body, .. } => body_communicates(body, comm),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_communicates(then_body, comm) || body_communicates(else_body, comm),
        Stmt::Call { name, .. } => {
            is_mpi_builtin(name) || comm.get(name.as_str()).copied().unwrap_or(true)
        }
    })
}

/// Scalars assigned anywhere under `stmts` (callees cannot write caller
/// scalars — they are passed by value).
fn collect_assigned_scalars(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { target, .. } if target.indices.is_empty() => {
                out.push(target.name.clone());
            }
            Stmt::Assign { .. } | Stmt::Call { .. } => {}
            Stmt::Do { var, body, .. } => {
                out.push(var.clone());
                collect_assigned_scalars(body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned_scalars(then_body, out);
                collect_assigned_scalars(else_body, out);
            }
        }
    }
}

fn stmt_span(s: &Stmt) -> Span {
    match s {
        Stmt::Assign { span, .. }
        | Stmt::Do { span, .. }
        | Stmt::If { span, .. }
        | Stmt::Call { span, .. } => *span,
    }
}

/// Canonical sorted keys for multiset comparison of pending operations.
fn pending_keys(pending: &[Pending]) -> Vec<String> {
    let mut keys: Vec<String> = pending
        .iter()
        .map(|p| format!("{:?} {} {:?}", p.kind, p.region.array, p.region.dims))
        .collect();
    keys.sort();
    keys
}

fn describe_pending(pending: &[Pending]) -> String {
    if pending.is_empty() {
        return "nothing".into();
    }
    let mut parts: Vec<String> = pending
        .iter()
        .map(|p| {
            format!(
                "{} `{}`",
                match p.kind {
                    CommKind::Send => "isend of",
                    CommKind::Recv => "irecv into",
                },
                p.region.array
            )
        })
        .collect();
    parts.sort();
    parts.dedup();
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str, np: i64) -> AnalysisReport {
        let program = fir::parse_validated(src).expect("test program must be valid");
        verify_comm(&program, &CommCheckConfig::new(np))
    }

    fn codes(r: &AnalysisReport) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_alltoall_program() {
        let r = check(
            "program m\n\
             real :: as(8)\n\
             real :: ar(8)\n\
             do i = 1, 8\n\
             as(i) = i * 0.5\n\
             end do\n\
             call mpi_alltoall(as, 2, ar)\n\
             do i = 1, 8\n\
             as(i) = ar(i)\n\
             end do\n\
             end program",
            4,
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.ranks_checked, vec![0, 1, 2, 3]);
    }

    #[test]
    fn write_into_inflight_send_is_a003() {
        let r = check(
            "program m\n\
             real :: as(8)\n\
             call mpi_isend(as, 8, mod(mynum + 1, np), 7)\n\
             as(1) = 0.0\n\
             call mpi_waitall()\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A003]);
    }

    #[test]
    fn disjoint_write_next_to_inflight_send_is_clean() {
        let r = check(
            "program m\n\
             real :: as(8, 4)\n\
             call mpi_isend(as(1:8, 1), 8, mod(mynum + 1, np), 7)\n\
             as(1, 2) = 0.0\n\
             call mpi_waitall()\n\
             end program",
            4,
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn read_of_inflight_recv_is_a004() {
        let r = check(
            "program m\n\
             real :: ar(8)\n\
             call mpi_irecv(ar, 8, mod(np + mynum - 1, np), 7)\n\
             x = ar(3)\n\
             call mpi_waitall()\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A004]);
    }

    #[test]
    fn unwaited_send_is_a001() {
        let r = check(
            "program m\n\
             real :: as(8)\n\
             call mpi_isend(as, 8, mod(mynum + 1, np), 7)\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A001]);
    }

    #[test]
    fn unwaited_recv_is_a002() {
        let r = check(
            "program m\n\
             real :: ar(8)\n\
             call mpi_irecv(ar, 8, mod(np + mynum - 1, np), 7)\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A002]);
    }

    #[test]
    fn rank_divergent_collective_is_a005() {
        let r = check(
            "program m\n\
             if (mynum == 0) then\n\
             call mpi_barrier()\n\
             end if\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A005]);
    }

    #[test]
    fn branch_with_one_sided_isend_is_a006() {
        // k(1) is never written, but the analysis does not track array
        // contents, so the condition is undecidable — and one arm posts a
        // send the other does not.
        let r = check(
            "program m\n\
             integer :: k(1)\n\
             real :: as(8)\n\
             if (k(1) == 1) then\n\
             call mpi_isend(as, 8, mod(mynum + 1, np), 7)\n\
             end if\n\
             call mpi_waitall()\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A006]);
    }

    #[test]
    fn comm_callee_is_a007() {
        let r = check(
            "subroutine ping(b)\n\
             real :: b(4)\n\
             call mpi_isend(b, 4, 0, 9)\n\
             call mpi_waitall()\n\
             end subroutine ping\n\
             program m\n\
             real :: as(4)\n\
             call ping(as)\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A007]);
    }

    #[test]
    fn tile_pipelined_sends_to_distinct_columns_are_clean() {
        // The shape prepush emits: per-peer sends of distinct column
        // slices, a recv wait before each exchange round, one full wait
        // at the end.
        let r = check(
            "program m\n\
             real :: as(8, 4)\n\
             real :: ar(8, 4)\n\
             integer :: to\n\
             integer :: from\n\
             do it = 1, 2\n\
             do j = 1, np - 1\n\
             to = mod(mynum + j, np)\n\
             call mpi_isend(as(1:8, to + 1), 8, to, 5)\n\
             from = mod(np + mynum - j, np)\n\
             call mpi_irecv(ar(1:8, from + 1), 8, from, 5)\n\
             end do\n\
             do i = 1, 8\n\
             ar(i, mynum + 1) = as(i, mynum + 1)\n\
             end do\n\
             call mpi_waitall()\n\
             end do\n\
             end program",
            4,
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn symbolic_comm_loop_bound_is_a007() {
        // `n` has no value and is read from nowhere: the comm loop's trip
        // count is unknown.
        let r = check(
            "program m\n\
             integer :: k(1)\n\
             real :: as(8)\n\
             do j = 1, k(1)\n\
             call mpi_isend(as, 8, 0, 5)\n\
             call mpi_waitall()\n\
             end do\n\
             end program",
            4,
        );
        assert_eq!(codes(&r), vec![Code::A007]);
    }

    #[test]
    fn large_np_checks_boundary_ranks() {
        let cfg = CommCheckConfig::new(64);
        assert_eq!(cfg.ranks(), vec![0, 1, 2, 3, 4, 5, 6, 7, 63]);
    }
}
