//! Diagnostics: stable codes, spans, and the machine-readable report.

use crate::types::TypeReport;
use fir::span::{line_col, Span};
use std::fmt;

/// Stable diagnostic codes. `A…` codes come from the communication-safety
/// pass, `T…` codes from type inference. The negative corpus in
/// `workloads::negative` pins one code per program, so renumbering is a
/// breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// An `mpi_isend` is never matched by a wait on some control path.
    A001,
    /// An `mpi_irecv` is never matched by a wait on some control path.
    A002,
    /// A statement writes into a buffer region with an in-flight
    /// `mpi_isend` — the exact hazard prepush must avoid (paper §3.4).
    A003,
    /// A statement reads or writes a buffer region with an in-flight
    /// `mpi_irecv` — its contents are undefined until the wait.
    A004,
    /// A collective operation diverges across ranks (some ranks reach it,
    /// others don't, or its count disagrees) — deadlock at runtime.
    A005,
    /// The set of in-flight operations differs between the two arms of a
    /// rank-undecidable branch — a wait is missing on one path.
    A006,
    /// The analyzer could not verify the program (symbolic communication
    /// bounds, call into a communicating procedure, or budget exhausted).
    A007,
    /// Type inference found conflicting types for one storage location.
    T001,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::A004 => "A004",
            Code::A005 => "A005",
            Code::A006 => "A006",
            Code::A007 => "A007",
            Code::T001 => "T001",
        }
    }

    /// One-line meaning, used in human rendering.
    pub fn title(self) -> &'static str {
        match self {
            Code::A001 => "unmatched mpi_isend (no wait on this path)",
            Code::A002 => "unmatched mpi_irecv (no wait on this path)",
            Code::A003 => "write into an in-flight mpi_isend buffer",
            Code::A004 => "access to an in-flight mpi_irecv buffer",
            Code::A005 => "collective diverges across ranks",
            Code::A006 => "in-flight operations differ across branch arms",
            Code::A007 => "communication unverifiable",
            Code::T001 => "conflicting types for one location",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to the source text via [`fir::span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub message: String,
    pub span: Span,
    /// Ranks (SPMD `mynum` values) the finding was observed on. Empty for
    /// rank-independent findings.
    pub ranks: Vec<i64>,
}

/// The machine-readable result of analyzing one program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Findings, deduplicated by (code, span) and sorted by source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Ranks the communication pass actually walked.
    pub ranks_checked: Vec<i64>,
    /// Inferred types, when the caller ran the type pass too.
    pub types: Option<TypeReport>,
}

impl AnalysisReport {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sort by source position then code, and drop duplicate findings
    /// (the same hazard observed on several ranks is one diagnostic; the
    /// ranks are merged).
    pub fn normalize(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.span.start, d.span.end, d.code));
        let mut out: Vec<Diagnostic> = Vec::with_capacity(self.diagnostics.len());
        for d in self.diagnostics.drain(..) {
            match out.last_mut() {
                Some(prev) if prev.code == d.code && prev.span == d.span => {
                    for r in d.ranks {
                        if !prev.ranks.contains(&r) {
                            prev.ranks.push(r);
                        }
                    }
                    prev.ranks.sort_unstable();
                }
                _ => out.push(d),
            }
        }
        self.diagnostics = out;
    }

    /// Render findings for a terminal, resolving spans against `source`.
    pub fn render_human(&self, source: &str) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            let lc = line_col(source, d.span.start);
            let snippet = d.span.snippet(source);
            s.push_str(&format!(
                "error[{}]: {} at {}:{}\n",
                d.code,
                d.code.title(),
                lc.line,
                lc.col
            ));
            if !snippet.is_empty() {
                s.push_str(&format!("  | {}\n", snippet.lines().next().unwrap_or("")));
            }
            s.push_str(&format!("  = {}\n", d.message));
            if !d.ranks.is_empty() {
                let ranks: Vec<String> = d.ranks.iter().map(i64::to_string).collect();
                s.push_str(&format!("  = on rank(s): {}\n", ranks.join(", ")));
            }
        }
        if self.diagnostics.is_empty() {
            s.push_str("clean: no diagnostics\n");
        }
        s
    }

    /// Render as a JSON object (hand-rolled like `driver::json` — the
    /// workspace carries no serde).
    pub fn to_json(&self, source: &str) -> String {
        let mut s = String::from("{\"clean\":");
        s.push_str(if self.is_clean() { "true" } else { "false" });
        s.push_str(",\"ranks_checked\":[");
        for (i, r) in self.ranks_checked.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_string());
        }
        s.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let lc = line_col(source, d.span.start);
            s.push_str(&format!(
                "{{\"code\":\"{}\",\"title\":{},\"message\":{},\"span\":{{\"start\":{},\"end\":{},\"line\":{},\"col\":{}}},\"ranks\":[{}]}}",
                d.code,
                json_string(d.code.title()),
                json_string(&d.message),
                d.span.start,
                d.span.end,
                lc.line,
                lc.col,
                d.ranks
                    .iter()
                    .map(i64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        s.push(']');
        if let Some(t) = &self.types {
            s.push_str(",\"types\":");
            s.push_str(&t.to_json());
        }
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping (mirrors `driver::json`'s writer rules).
pub(crate) fn json_string(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_dedups_and_merges_ranks() {
        let mut r = AnalysisReport::default();
        let span = Span::new(5, 9);
        r.diagnostics.push(Diagnostic {
            code: Code::A003,
            message: "m".into(),
            span,
            ranks: vec![1],
        });
        r.diagnostics.push(Diagnostic {
            code: Code::A003,
            message: "m".into(),
            span,
            ranks: vec![0],
        });
        r.normalize();
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].ranks, vec![0, 1]);
    }

    #[test]
    fn human_rendering_names_the_code_and_line() {
        let src = "abc\ndefg";
        let mut r = AnalysisReport::default();
        r.diagnostics.push(Diagnostic {
            code: Code::A004,
            message: "read of in-flight `ar`".into(),
            span: Span::new(4, 8),
            ranks: vec![2],
        });
        let h = r.render_human(src);
        assert!(h.contains("error[A004]"), "{h}");
        assert!(h.contains("2:1"), "{h}");
        assert!(h.contains("defg"), "{h}");
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
