//! Integer intervals: the abstract value domain of the communication pass.
//!
//! Everything the safety check cares about — ranks, tags, subscripts,
//! loop bounds — is integer-valued; reals abstract to [`Val::Top`]. The
//! arithmetic is deliberately conservative: any overflow or unmodelled
//! case answers `Top`, which downstream widens a subscript to the whole
//! declared dimension (never *narrows* a region), so imprecision can only
//! produce false alarms, never missed hazards.

/// An abstract integer value: either unknown, or an inclusive range
/// (`Range(v, v)` is a known constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    Top,
    Range(i64, i64),
}

// The arithmetic methods intentionally shadow the operator names: they
// are *interval* transfer functions (widening to Top, not erroring),
// and spelling `a.add(b)` next to `a.modulo(b)`/`a.min(b)` keeps the
// transfer-function table uniform at call sites.
#[allow(clippy::should_implement_trait)]
impl Val {
    pub fn constant(v: i64) -> Val {
        Val::Range(v, v)
    }

    /// The exactly-known value, if any.
    pub fn singleton(self) -> Option<i64> {
        match self {
            Val::Range(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    pub fn bounds(self) -> Option<(i64, i64)> {
        match self {
            Val::Range(lo, hi) => Some((lo, hi)),
            Val::Top => None,
        }
    }

    /// Least upper bound (range hull).
    pub fn join(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => Val::Range(a.min(c), b.max(d)),
            _ => Val::Top,
        }
    }

    pub fn neg(self) -> Val {
        match self {
            Val::Range(lo, hi) => match (hi.checked_neg(), lo.checked_neg()) {
                (Some(a), Some(b)) => Val::Range(a, b),
                _ => Val::Top,
            },
            Val::Top => Val::Top,
        }
    }

    pub fn add(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => {
                match (a.checked_add(c), b.checked_add(d)) {
                    (Some(lo), Some(hi)) => Val::Range(lo, hi),
                    _ => Val::Top,
                }
            }
            _ => Val::Top,
        }
    }

    pub fn sub(self, other: Val) -> Val {
        self.add(other.neg())
    }

    pub fn mul(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => {
                let corners = [a.checked_mul(c), a.checked_mul(d), b.checked_mul(c), b.checked_mul(d)];
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for c in corners {
                    match c {
                        Some(v) => {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        None => return Val::Top,
                    }
                }
                Val::Range(lo, hi)
            }
            _ => Val::Top,
        }
    }

    /// Truncated (Fortran/Rust) integer division. Conservative: `Top`
    /// whenever the divisor range contains zero.
    pub fn div(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) if c > 0 || d < 0 => {
                let corners = [a / c, a / d, b / c, b / d];
                Val::Range(
                    corners.iter().copied().min().unwrap(),
                    corners.iter().copied().max().unwrap(),
                )
            }
            _ => Val::Top,
        }
    }

    /// Fortran `mod` (sign of the dividend — Rust `%`). Exact for known
    /// constants; otherwise bounded by the divisor's magnitude.
    pub fn modulo(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => {
                if a == b && c == d && c != 0 {
                    return Val::constant(a % c);
                }
                if c > 0 {
                    if a >= 0 {
                        // Non-negative dividend, positive divisor: [0, d-1],
                        // and never exceeds the dividend itself.
                        Val::Range(0, (d - 1).min(b.max(0)))
                    } else {
                        Val::Range(-(d - 1), d - 1)
                    }
                } else {
                    Val::Top
                }
            }
            _ => Val::Top,
        }
    }

    pub fn min(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => Val::Range(a.min(c), b.min(d)),
            _ => Val::Top,
        }
    }

    pub fn max(self, other: Val) -> Val {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => Val::Range(a.max(c), b.max(d)),
            _ => Val::Top,
        }
    }

    pub fn abs(self) -> Val {
        match self {
            Val::Range(lo, hi) => {
                if lo == i64::MIN {
                    Val::Top
                } else if lo >= 0 {
                    Val::Range(lo, hi)
                } else if hi <= 0 {
                    Val::Range(-hi, -lo)
                } else {
                    Val::Range(0, (-lo).max(hi))
                }
            }
            Val::Top => Val::Top,
        }
    }

    /// Abstract truth value of `self cmp other`: `Some(true/false)` when
    /// the intervals decide it, `None` when both outcomes are possible.
    pub fn cmp_lt(self, other: Val) -> Option<bool> {
        let (a, b) = self.bounds()?;
        let (c, d) = other.bounds()?;
        if b < c {
            Some(true)
        } else if a >= d {
            Some(false)
        } else {
            None
        }
    }

    pub fn cmp_le(self, other: Val) -> Option<bool> {
        let (a, b) = self.bounds()?;
        let (c, d) = other.bounds()?;
        if b <= c {
            Some(true)
        } else if a > d {
            Some(false)
        } else {
            None
        }
    }

    pub fn cmp_eq(self, other: Val) -> Option<bool> {
        match (self.singleton(), other.singleton()) {
            (Some(x), Some(y)) => Some(x == y),
            _ => {
                let (a, b) = self.bounds()?;
                let (c, d) = other.bounds()?;
                // Disjoint ranges cannot be equal.
                if b < c || d < a {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Do two intervals intersect? `Top` intersects everything.
    pub fn overlaps(self, other: Val) -> bool {
        match (self, other) {
            (Val::Range(a, b), Val::Range(c, d)) => a <= d && c <= b,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_hull() {
        let a = Val::Range(1, 3);
        let b = Val::Range(10, 20);
        assert_eq!(a.add(b), Val::Range(11, 23));
        assert_eq!(b.sub(a), Val::Range(7, 19));
        assert_eq!(a.mul(b), Val::Range(10, 60));
        assert_eq!(Val::Range(-2, 3).mul(Val::constant(10)), Val::Range(-20, 30));
    }

    #[test]
    fn overflow_goes_top() {
        assert_eq!(Val::constant(i64::MAX).add(Val::constant(1)), Val::Top);
        assert_eq!(Val::constant(i64::MIN).neg(), Val::Top);
    }

    #[test]
    fn modulo_matches_runtime_for_constants() {
        // Mirrors try_intrinsic's `a % b` (sign of the dividend).
        assert_eq!(Val::constant(-7).modulo(Val::constant(4)), Val::constant(-3));
        assert_eq!(Val::constant(7).modulo(Val::constant(4)), Val::constant(3));
    }

    #[test]
    fn modulo_range_is_bounded_by_divisor() {
        assert_eq!(Val::Range(0, 100).modulo(Val::constant(4)), Val::Range(0, 3));
        assert_eq!(Val::Range(-5, 100).modulo(Val::constant(4)), Val::Range(-3, 3));
    }

    #[test]
    fn comparisons_decide_only_disjoint_ranges() {
        assert_eq!(Val::Range(1, 3).cmp_lt(Val::Range(5, 9)), Some(true));
        assert_eq!(Val::Range(5, 9).cmp_lt(Val::Range(1, 3)), Some(false));
        assert_eq!(Val::Range(1, 6).cmp_lt(Val::Range(5, 9)), None);
        assert_eq!(Val::constant(4).cmp_eq(Val::constant(4)), Some(true));
        assert_eq!(Val::Range(1, 3).cmp_eq(Val::Range(7, 9)), Some(false));
    }

    #[test]
    fn overlap_is_interval_intersection() {
        assert!(Val::Range(1, 5).overlaps(Val::Range(5, 9)));
        assert!(!Val::Range(1, 4).overlaps(Val::Range(5, 9)));
        assert!(Val::Top.overlaps(Val::Range(5, 9)));
    }
}
