//! # analyzer — static verification of every program the pipeline emits
//!
//! The prepush transformation ([`compuniformer`]) is only correct when no
//! rank touches a buffer between the early `mpi_isend`/`mpi_irecv` and its
//! matching wait. Before this crate that obligation was enforced purely
//! dynamically — a differential test had to *execute* the hazard to see
//! it. This crate checks it statically, over the exact program text the
//! pipeline emits, and produces a machine-readable [`AnalysisReport`]:
//!
//! - **Communication safety** ([`comm`]): a rank-parametric abstract
//!   interpretation that, for each concrete rank, tracks the set of
//!   in-flight send/receive regions and flags
//!   - writes into a posted-but-unwaited `mpi_isend` buffer ([`Code::A003`]),
//!   - any access to a posted-but-unwaited `mpi_irecv` buffer
//!     ([`Code::A004`]),
//!   - sends/receives never matched by a wait on some control path
//!     ([`Code::A001`]/[`Code::A002`]/[`Code::A006`]), and
//!   - collectives that diverge across ranks ([`Code::A005`]).
//!
//! - **Type inference** ([`types`]): the slot-level monomorphic lattice
//!   (int / float / array-of / unknown) that [`interp`]'s optimizer uses
//!   to compile `ChainScalar`/`ChainArray` instructions into *typed*
//!   variants that skip runtime value-tag dispatch. The lattice and the
//!   promotion rules live here; the traversal over lowered programs lives
//!   in `interp::typeck` (lowered IR is private to `interp`).
//!
//! Subscripts are evaluated over integer intervals ([`interval`]), reusing
//! [`depan`]'s affine machinery where subscripts are affine; loops that
//! contain communication are iterated concretely (their bounds are known
//! in emitted programs — `np` comes from the transformation context),
//! while pure-compute loops are summarized in one interval-typed walk.
//!
//! The crate is wired in three places: the `harness analyze` subcommand
//! (human + JSON diagnostics), the gate inside `core::transform` (an
//! emitted prepush program that fails verification is declined with
//! `Status::AnalysisRejected` — it cannot ship), and the verify.sh step
//! that analyzes the full registry × transform matrix.

pub mod comm;
pub mod diag;
pub mod interval;
pub mod types;

pub use comm::{verify_comm, CommCheckConfig};
pub use diag::{AnalysisReport, Code, Diagnostic};
pub use types::{binop_ty, intrinsic_ty, ProcTypes, Ty, TypeReport};
