//! The slot-level monomorphic type lattice and its promotion rules.
//!
//! In mini-Fortran every storage location is monomorphic *by
//! construction*: declarations (or the implicit first-letter rule) fix a
//! `ScalarType` per name, and every store converts the value to that type.
//! "Inference" is therefore seeding from declarations plus a bottom-up
//! walk over expressions with Fortran's promotion rules — no fixpoint.
//! The lattice still carries [`Ty::Unknown`] as a top element so the
//! optimizer can decline to specialize anything it cannot prove (a chain
//! whose operand type is `Unknown` stays on the dynamic dispatch path).
//!
//! The traversal over `interp`'s lowered IR lives in `interp::typeck`
//! (the IR is private to that crate); this module owns the lattice, the
//! promotion rules — which mirror `interp::exec::try_binop` /
//! `try_intrinsic` exactly — and the [`TypeReport`] surfaced by
//! `harness analyze --json`.

use fir::ast::{BinOp, ScalarType, UnOp};

/// Static type of one storage location or expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    Int,
    Real,
    /// Array with the given element type (arrays of arrays do not exist
    /// in the language, so the box always holds `Int`/`Real`).
    Array(Box<Ty>),
    /// Top: the analysis cannot prove a single runtime tag.
    Unknown,
}

impl Ty {
    pub fn of_scalar_type(t: ScalarType) -> Ty {
        match t {
            ScalarType::Integer => Ty::Int,
            ScalarType::Real => Ty::Real,
        }
    }

    /// Least upper bound: equal types join to themselves, anything else
    /// joins to `Unknown`.
    pub fn join(&self, other: &Ty) -> Ty {
        if self == other {
            self.clone()
        } else {
            Ty::Unknown
        }
    }

    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int | Ty::Real)
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Ty::Int => "int",
            Ty::Real => "float",
            Ty::Array(e) => match **e {
                Ty::Int => "array-of-int",
                Ty::Real => "array-of-float",
                _ => "array-of-unknown",
            },
            Ty::Unknown => "unknown",
        }
    }
}

/// Static result type of a binary operation — mirrors
/// `interp::exec::try_binop`: comparisons and logic always produce an
/// integer; arithmetic produces an integer only when both operands are
/// integers (Fortran integer division included), otherwise a real.
pub fn binop_ty(op: BinOp, a: &Ty, b: &Ty) -> Ty {
    use BinOp::*;
    match op {
        Eq | Ne | Lt | Le | Gt | Ge | And | Or => Ty::Int,
        Add | Sub | Mul | Div | Pow => match (a, b) {
            (Ty::Int, Ty::Int) => Ty::Int,
            (Ty::Int | Ty::Real, Ty::Int | Ty::Real) => Ty::Real,
            _ => Ty::Unknown,
        },
    }
}

/// Static result type of a unary operation.
pub fn unop_ty(op: UnOp, a: &Ty) -> Ty {
    match op {
        // Negation preserves the operand's tag.
        UnOp::Neg => {
            if a.is_scalar() {
                a.clone()
            } else {
                Ty::Unknown
            }
        }
        // Logical not always yields 0/1.
        UnOp::Not => Ty::Int,
    }
}

/// Static result type of an intrinsic, by name — mirrors
/// `interp::exec::try_intrinsic`. `args` are the argument types.
pub fn intrinsic_ty(name: &str, args: &[Ty]) -> Ty {
    match name {
        "mod" | "floor" | "int" => Ty::Int,
        "sqrt" | "sin" | "cos" | "exp" | "log" | "real" => Ty::Real,
        // abs preserves the tag; min/max promote to real if any argument
        // is real.
        "abs" => args.first().cloned().unwrap_or(Ty::Unknown),
        "min" | "max" => {
            if args.iter().all(|t| *t == Ty::Int) {
                Ty::Int
            } else if args.iter().all(|t| t.is_scalar()) {
                Ty::Real
            } else {
                Ty::Unknown
            }
        }
        _ => Ty::Unknown,
    }
}

/// Inferred types for one procedure of a lowered program.
#[derive(Debug, Clone, Default)]
pub struct ProcTypes {
    pub name: String,
    /// (name, type) per scalar slot, in slot order.
    pub scalars: Vec<(String, Ty)>,
    /// (name, element type) per array slot, in slot order.
    pub arrays: Vec<(String, Ty)>,
    /// Chain instructions compiled to a typed (monomorphic) variant.
    pub chains_typed: usize,
    /// Chain instructions left on the dynamic value-tag dispatch path.
    pub chains_dyn: usize,
}

/// Whole-program type-inference result.
#[derive(Debug, Clone, Default)]
pub struct TypeReport {
    pub procs: Vec<ProcTypes>,
}

impl TypeReport {
    pub fn chains_typed(&self) -> usize {
        self.procs.iter().map(|p| p.chains_typed).sum()
    }

    pub fn chains_dyn(&self) -> usize {
        self.procs.iter().map(|p| p.chains_dyn).sum()
    }

    pub fn to_json(&self) -> String {
        use crate::diag::json_string;
        let mut s = String::from("{\"procs\":[");
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"chains_typed\":{},\"chains_dyn\":{},\"scalars\":{{",
                json_string(&p.name),
                p.chains_typed,
                p.chains_dyn
            ));
            for (j, (n, t)) in p.scalars.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{}", json_string(n), json_string(t.as_str())));
            }
            s.push_str("},\"arrays\":{");
            for (j, (n, t)) in p.arrays.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{}", json_string(n), json_string(t.as_str())));
            }
            s.push_str("}}");
        }
        s.push_str(&format!(
            "],\"chains_typed\":{},\"chains_dyn\":{}}}",
            self.chains_typed(),
            self.chains_dyn()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_lub() {
        assert_eq!(Ty::Int.join(&Ty::Int), Ty::Int);
        assert_eq!(Ty::Int.join(&Ty::Real), Ty::Unknown);
        assert_eq!(Ty::Unknown.join(&Ty::Int), Ty::Unknown);
    }

    #[test]
    fn binop_rules_mirror_try_binop() {
        use BinOp::*;
        // Fortran integer division stays integer.
        assert_eq!(binop_ty(Div, &Ty::Int, &Ty::Int), Ty::Int);
        assert_eq!(binop_ty(Add, &Ty::Int, &Ty::Real), Ty::Real);
        assert_eq!(binop_ty(Lt, &Ty::Real, &Ty::Real), Ty::Int);
        assert_eq!(binop_ty(Mul, &Ty::Unknown, &Ty::Int), Ty::Unknown);
    }

    #[test]
    fn intrinsic_rules_mirror_try_intrinsic() {
        assert_eq!(intrinsic_ty("mod", &[Ty::Int, Ty::Int]), Ty::Int);
        assert_eq!(intrinsic_ty("sqrt", &[Ty::Int]), Ty::Real);
        assert_eq!(intrinsic_ty("abs", &[Ty::Real]), Ty::Real);
        assert_eq!(intrinsic_ty("min", &[Ty::Int, Ty::Int]), Ty::Int);
        assert_eq!(intrinsic_ty("min", &[Ty::Int, Ty::Real]), Ty::Real);
        assert_eq!(intrinsic_ty("max", &[Ty::Unknown, Ty::Int]), Ty::Unknown);
    }
}
