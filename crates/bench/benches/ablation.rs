//! Criterion bench for the tile-size ablation: the prepush variant at
//! several K values. The simulated makespans (the U-curve) print at
//! startup; criterion tracks the simulation's wall cost per K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interp::run_program;
use overlap_bench::{transform_workload, NetworkModel};
use std::hint::black_box;

fn bench_ablation_k(c: &mut Criterion) {
    let np = 4;
    let w = workloads::direct2d::Direct2d {
        np,
        nloc: 1024,
        outer: 2,
        work: 3,
    };
    let model = NetworkModel::mpich_gm();

    println!("\nTile-size ablation (simulated makespans, np = {np}):");
    let mut programs = Vec::new();
    for k in [1i64, 16, 128, 512, 1024] {
        let out = transform_workload(&w, &model, Some(k));
        let t = run_program(&out.program, np, &model)
            .unwrap()
            .report
            .makespan();
        println!("  K = {k:>5}: {t}");
        programs.push((k, out.program));
    }

    let mut g = c.benchmark_group("ablation-k");
    g.sample_size(10);
    for (k, program) in &programs {
        g.bench_with_input(BenchmarkId::from_parameter(k), program, |b, program| {
            b.iter(|| {
                black_box(
                    run_program(black_box(program), np, &model)
                        .unwrap()
                        .report
                        .makespan(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation_k);
criterion_main!(benches);
