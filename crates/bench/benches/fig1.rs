//! Criterion bench for the Figure-1 experiment: each configuration
//! {MPICH, MPICH-GM} × {Original, Prepush} is one benchmark; criterion
//! measures the wall-clock cost of the full simulated run, and the
//! simulated makespans (the paper's actual metric) are printed once at
//! startup so `cargo bench` output contains the Figure-1 series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interp::run_program;
use overlap_bench::{transform_workload, NetworkModel};
use std::hint::black_box;
use workloads::Workload;

fn bench_fig1(c: &mut Criterion) {
    let np = 4;
    // A reduced-size direct-2d workload keeps criterion iterations cheap
    // while preserving the comm/compute balance of the standard size.
    let w = workloads::direct2d::Direct2d {
        np,
        nloc: 1024,
        outer: 2,
        work: 3,
    };
    let original = w.program();
    let gm = NetworkModel::mpich_gm();
    let tcp = NetworkModel::mpich();
    // Tile size is model-informed, so each model gets its own transform.
    let prepush_gm = transform_workload(&w, &gm, None).program;
    let prepush_tcp = transform_workload(&w, &tcp, None).program;

    // Print the Figure-1 series (simulated time is the paper's metric).
    println!("\nFigure 1 series (simulated makespans, np = {np}):");
    for (model, prepush, label) in
        [(&tcp, &prepush_tcp, "MPICH"), (&gm, &prepush_gm, "MPICH-GM")]
    {
        let o = run_program(&original, np, model).unwrap().report.makespan();
        let p = run_program(prepush, np, model).unwrap().report.makespan();
        println!("  {label:<9} Original {o:>12}  Prepush {p:>12}");
    }

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    let cases = [
        ("original", "mpich", &original, &tcp),
        ("original", "mpich-gm", &original, &gm),
        ("prepush", "mpich", &prepush_tcp, &tcp),
        ("prepush", "mpich-gm", &prepush_gm, &gm),
    ];
    for (label, mlabel, program, model) in cases {
        g.bench_with_input(
            BenchmarkId::new(label, mlabel),
            &(program, model),
            |b, (program, model)| {
                b.iter(|| {
                    black_box(
                        run_program(black_box(program), np, model)
                            .unwrap()
                            .report
                            .makespan(),
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
