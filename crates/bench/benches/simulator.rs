//! Criterion bench: clustersim throughput — wall-clock cost of simulating
//! communication patterns. Simulation speed bounds how large an evaluation
//! the harness can afford.

use clustersim::{Bytes, Cluster, NetworkModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_alltoall_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/alltoall");
    g.sample_size(10);
    for np in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("rounds=32", np), &np, |b, &np| {
            b.iter(|| {
                let cluster = Cluster::new(np, NetworkModel::mpich_gm());
                let out = cluster
                    .run(|comm| {
                        for _ in 0..32 {
                            let payloads: Vec<Bytes> = (0..comm.np())
                                .map(|_| Bytes::from(vec![0u8; 512]))
                                .collect();
                            comm.alltoall(payloads);
                        }
                        comm.now()
                    })
                    .unwrap();
                black_box(out.report.makespan())
            });
        });
    }
    g.finish();
}

fn bench_isend_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/isend-pipeline");
    g.sample_size(10);
    g.bench_function("np=8 msgs=256", |b| {
        b.iter(|| {
            let cluster = Cluster::new(8, NetworkModel::mpich_gm());
            let out = cluster
                .run(|comm| {
                    let me = comm.rank();
                    let np = comm.np();
                    for round in 0..256 {
                        let to = (me + 1 + round % (np - 1)) % np;
                        comm.isend(to, round as i64, Bytes::from(vec![1u8; 64]));
                        let from = (np + me - 1 - round % (np - 1)) % np;
                        comm.irecv(from, round as i64);
                        comm.advance(500.0);
                        if round % 16 == 15 {
                            comm.wait_all();
                        }
                    }
                    comm.wait_all();
                    comm.now()
                })
                .unwrap();
            black_box(out.report.makespan())
        });
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    g.sample_size(10);
    let src = "\
program main
  real :: a(512)
  do it = 1, 64
    do i = 1, 512
      a(i) = a(i) * 0.5 + i + it
    end do
  end do
end program";
    let program = fir::parse(src).unwrap();
    g.bench_function("sequential-kernel 32k stmts", |b| {
        b.iter(|| {
            black_box(
                interp::run_program(
                    black_box(&program),
                    1,
                    &NetworkModel::mpich_gm(),
                )
                .unwrap()
                .report
                .makespan(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_alltoall_rounds, bench_isend_pipeline, bench_interpreter);
criterion_main!(benches);
