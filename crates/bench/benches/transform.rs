//! Criterion bench: Compuniformer throughput — how fast the whole
//! pipeline (parse → analyze → transform → unparse) runs as the input
//! program grows. The paper's pitch is an *automated* system; the compiler
//! itself must stay cheap.

use compuniformer::{transform, Options};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depan::Context;
use std::hint::black_box;

/// A direct-2d kernel with `extra` additional statements in the loop body
/// (more analysis work per opportunity).
fn source(extra: usize) -> String {
    let mut body = String::new();
    for i in 0..extra {
        body.push_str(&format!("        t{i} = ix * {} + iz\n", i + 1));
    }
    format!(
        "\
program main
  real :: as(256, 4), ar(256, 4)
  do iy = 1, 4
    do ix = 1, 256
      do iz = 1, 4
{body}        as(ix, iz) = ix * iz + iy
      end do
    end do
    call mpi_alltoall(as, 256, ar)
  end do
end program"
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("compuniformer");
    g.sample_size(20);
    for extra in [0usize, 8, 32] {
        let src = source(extra);
        g.bench_with_input(
            BenchmarkId::new("parse+transform+unparse", extra),
            &src,
            |b, src| {
                b.iter(|| {
                    let program = fir::parse(black_box(src)).unwrap();
                    let out = transform(
                        &program,
                        &Options {
                            tile_size: Some(32),
                            context: Context::new().with("np", 4),
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    black_box(fir::unparse(&out.program))
                });
            },
        );
    }
    g.finish();
}

fn bench_analysis_only(c: &mut Criterion) {
    let src = source(8);
    let program = fir::parse(&src).unwrap();
    let ctx = Context::new().with("np", 4);
    c.bench_function("depan/tile-safety", |b| {
        b.iter(|| {
            let refs = depan::collect_accesses(black_box(&program.main.body), "as");
            black_box(depan::check_tile_safety(
                &program.main.body,
                "as",
                "ix",
                &ctx,
            ));
            black_box(refs)
        });
    });
}

criterion_group!(benches, bench_pipeline, bench_analysis_only);
criterion_main!(benches);
