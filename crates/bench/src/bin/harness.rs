//! The reproduction harness: regenerates every figure of the paper plus
//! the DESIGN.md ablations, now as declarative grids over the sweep
//! engine (`driver`, a.k.a. `overlap_suite::sweep`).
//!
//! ```text
//! cargo run --release -p overlap-bench --bin harness -- <experiment>
//!
//! experiments:
//!   fig1          performance improvement achieved by pre-pushing
//!   fig2          direct-pattern code before/after (listing)
//!   fig3          indirect-pattern code before/after (listing)
//!   fig4          the generated communication loop (listing)
//!   correctness   §4: transformed output identical to original
//!   ablation-k    execution time vs tile size K (U-curve)
//!   scaling       speedup vs rank count
//!   model-sweep   speedup vs per-byte CPU involvement β
//!   interchange   node-loop-outermost: interchange vs fallback
//!   all           everything above, in order
//!
//! sweep subcommands:
//!   sweep [--grid FILE.toml] [--threads N] [--out PATH] [--wall-out PATH]
//!         [--baseline OLD.json] [--incremental] [--tol F] [--md-out PATH]
//!                                      full evaluation grid (np up to 64,
//!                                      rdma-ideal column, U-curve tile axis),
//!                                      in parallel; writes the
//!                                      BENCH_sweep.json artifact. --grid
//!                                      swaps in a declarative scenario file
//!                                      (scenarios/*.toml) instead of the
//!                                      compiled-in grid; --wall-out also
//!                                      writes the non-normalized artifact
//!                                      with the `timing` section; --baseline
//!                                      diffs the fresh run against OLD.json
//!                                      and exits 1 on virtual-time
//!                                      regressions (one-shot regression
//!                                      gate), with --md-out writing that
//!                                      diff as a markdown report;
//!                                      --incremental (needs --baseline)
//!                                      re-simulates only the scenarios whose
//!                                      `input_hash` moved since the baseline
//!                                      and reuses every other row — the
//!                                      artifact is byte-identical to a cold
//!                                      full run, in seconds instead of
//!                                      minutes (error rows and rows without
//!                                      a hash are never reused)
//!   quick [--grid FILE.toml] [--threads N] [--out PATH] [--wall-out PATH]
//!         [--baseline OLD.json] [--tol F] [--md-out PATH]
//!                                      tiny smoke grid (seconds); same
//!                                      artifact schema — the verify gate
//!                                      and the golden test run this
//!   diff <a.json> <b.json> [--tol F] [--grid FILE.toml] [--md-out PATH]
//!                                      compare two artifacts; exit 1 on
//!                                      virtual-time regressions beyond the
//!                                      fractional tolerance F (default 0).
//!                                      --grid restricts the comparison to
//!                                      the scenarios a grid file expands to;
//!                                      --md-out writes the report as
//!                                      markdown (status flips, movements,
//!                                      per-model geomean table)
//!   diff --wall <a.json> <b.json>      compare the host wall-clock `timing`
//!                                      sections of two --wall-out artifacts
//!                                      (the per-PR perf trajectory under
//!                                      perf/): per-scenario movements plus
//!                                      totals. Informational only — wall
//!                                      clock varies across machines, so
//!                                      this never fails the gate
//!   analyze [--np N] [--size small|medium|standard] [--json]
//!                                      statically analyze every registry
//!                                      workload — the original program and
//!                                      the pre-push program emitted under
//!                                      each preset network model — for
//!                                      communication safety (unmatched
//!                                      isend/irecv, in-flight buffer
//!                                      hazards, rank-divergent collectives)
//!                                      and slot-level types. Prints one
//!                                      line per program (or a JSON array
//!                                      with --json) and exits 1 if any
//!                                      program has diagnostics
//!
//! network models (the `models` axis of --grid scenario files):
//!   mpich                  TCP-like stack; per-byte send AND receive CPU
//!   mpich-gm               Myrinet/GM RDMA stack; near-zero per-byte CPU
//!   rdma-ideal             zero-overhead upper bound (ablation column)
//!   mpich-beta:<factor>    mpich with per-byte CPU scaled by <factor>
//!                          (finite, >= 0); the β involvement sweep
//!   congested:<links>:<load>
//!                          mpich-gm behind a shared switch spine of
//!                          <links> physical links (>= 1) at <load>x
//!                          background load (finite, > 0): every message
//!                          also crosses a link stage serialized at
//!                          gap x ceil(np/links) x load ns/byte
//!   hetero:<profile>       mpich-gm on a heterogeneous cluster;
//!                          profiles: half-slow (upper half of ranks 2x
//!                          slower CPU and NIC), straggler (last rank 4x
//!                          CPU, 2x NIC)
//! ```
//!
//! Every experiment grid runs through [`driver::run_sweep`]: scenarios
//! execute in parallel on a work-stealing pool, results come back in
//! deterministic grid order, and a panicking scenario becomes an error
//! row instead of killing the run.

use compuniformer::{transform, Options};
use depan::Context;
use driver::client::{self, DiffOptions, SweepOptions};
use driver::{run_sweep, ModelSpec, SizeClass, SweepGrid, SweepRecord, SweepResult};
use clustersim::SimTime;
use overlap_bench::{render_fig1, transform_workload, Fig1Rows};
use workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "correctness" => correctness(),
        "ablation-k" => ablation_k(),
        "scaling" => scaling(),
        "model-sweep" => model_sweep(),
        "interchange" => interchange(),
        "sweep" => sweep_cmd(SweepGrid::full(), rest),
        "quick" => sweep_cmd(SweepGrid::quick(), rest),
        "diff" => diff_cmd(rest),
        "analyze" => analyze_cmd(rest),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
            correctness();
            ablation_k();
            scaling();
            model_sweep();
            interchange();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs");
            std::process::exit(2);
        }
    }
}

fn hr(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Find the record for one grid point (the experiments below know their
/// grids are total, so a miss is a bug). An error row aborts here with
/// the scenario's own message — the figure printers downstream can then
/// rely on the measurement fields being present.
fn rec<'a>(
    result: &'a SweepResult,
    workload: &str,
    np: usize,
    model: &ModelSpec,
    tile_size: Option<i64>,
) -> &'a SweepRecord {
    let r = result
        .records
        .iter()
        .find(|r| {
            r.spec.workload == workload
                && r.spec.np == np
                && r.spec.model == *model
                && r.spec.tile_size == tile_size
        })
        .unwrap_or_else(|| panic!("no record for {workload} np={np} {}", model.id()));
    if let Some(e) = r.error() {
        panic!("scenario {} failed: {e}", r.spec.key());
    }
    r
}

/// Abort with every failing row's key and error (not just a count).
fn require_clean(result: &SweepResult, what: &str) {
    if result.summary.errors == 0 {
        return;
    }
    for r in &result.records {
        if let Some(e) = r.error() {
            eprintln!("{what}: {} failed: {e}", r.spec.key());
        }
    }
    panic!("{what}: {} scenario(s) failed", result.summary.errors);
}

/// The descriptive display name of a registry workload.
fn display_name(name: &str, size: SizeClass, np: usize) -> &'static str {
    let entry = workloads::find(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    (entry.make)(size, np).name()
}

fn sim(ns: Option<u64>) -> SimTime {
    SimTime::from_ns(ns.expect("compare record carries both virtual times"))
}

// ------------------------------------------------------------ sweep CLI

struct SweepFlags {
    threads: usize,
    out: String,
    wall_out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    grid: Option<String>,
    md_out: Option<String>,
    /// `diff --wall`: compare host wall-clock timing sections instead of
    /// virtual times.
    wall: bool,
    /// `sweep --incremental`: reuse baseline rows with matching
    /// `input_hash`, re-simulating only moved cells.
    incremental: bool,
}

/// Parse flags, accepting only the ones the subcommand supports (so
/// e.g. `diff --out x` fails loudly instead of being silently ignored).
fn parse_flags(args: &[String], allowed: &[&str]) -> SweepFlags {
    let mut flags = SweepFlags {
        threads: 0,
        out: "BENCH_sweep.json".into(),
        wall_out: None,
        baseline: None,
        tolerance: 0.0,
        grid: None,
        md_out: None,
        wall: false,
        incremental: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if !allowed.contains(&a.as_str()) {
            eprintln!(
                "unknown flag `{a}` for this subcommand (accepts: {})",
                allowed.join(", ")
            );
            std::process::exit(2);
        }
        if a == "--wall" {
            flags.wall = true;
            continue;
        }
        if a == "--incremental" {
            flags.incremental = true;
            continue;
        }
        let mut grab = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--threads" => {
                flags.threads = grab("--threads").parse().unwrap_or_else(|e| {
                    eprintln!("bad --threads: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => flags.out = grab("--out").clone(),
            "--wall-out" => flags.wall_out = Some(grab("--wall-out").clone()),
            "--baseline" => flags.baseline = Some(grab("--baseline").clone()),
            "--grid" => flags.grid = Some(grab("--grid").clone()),
            "--md-out" => flags.md_out = Some(grab("--md-out").clone()),
            "--tol" => {
                flags.tolerance = grab("--tol").parse().unwrap_or_else(|e| {
                    eprintln!("bad --tol: {e}");
                    std::process::exit(2);
                })
            }
            other => unreachable!("`{other}` passed the allow-list"),
        }
    }
    flags
}

/// Run a grid, print the record table + aggregates, write the artifact.
/// All orchestration lives in [`driver::client::sweep_command`] (a thin
/// client of the job core); this shim only parses flags.
fn sweep_cmd(grid: SweepGrid, args: &[String]) {
    let flags = parse_flags(
        args,
        &[
            "--threads",
            "--out",
            "--wall-out",
            "--baseline",
            "--incremental",
            "--tol",
            "--grid",
            "--md-out",
        ],
    );
    let opts = SweepOptions {
        threads: flags.threads,
        out: flags.out,
        wall_out: flags.wall_out,
        baseline: flags.baseline,
        tolerance: flags.tolerance,
        grid: flags.grid,
        md_out: flags.md_out,
        incremental: flags.incremental,
    };
    let code = client::sweep_command(grid, &opts);
    if code != 0 {
        std::process::exit(code);
    }
}

/// Compare two sweep artifacts; exit 1 on regressions. Orchestration
/// lives in [`driver::client::diff_command`]; this shim only separates
/// paths from flags.
fn diff_cmd(args: &[String]) {
    // Flags (with their values) go to parse_flags; bare args are paths.
    let mut paths: Vec<String> = Vec::new();
    let mut flag_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--wall" {
            // Boolean flag: takes no value.
            flag_args.push(a.clone());
        } else if a.starts_with("--") {
            flag_args.push(a.clone());
            if let Some(v) = it.next() {
                flag_args.push(v.clone());
            }
        } else {
            paths.push(a.clone());
        }
    }
    let flags = parse_flags(&flag_args, &["--tol", "--grid", "--md-out", "--wall"]);
    let opts = DiffOptions {
        tolerance: flags.tolerance,
        grid: flags.grid,
        md_out: flags.md_out,
        wall: flags.wall,
    };
    let code = client::diff_command(&paths, &opts);
    if code != 0 {
        std::process::exit(code);
    }
}

/// `analyze`: run the static analyzer over every program the pipeline
/// touches — each registry workload's original, plus the pre-push program
/// emitted under each preset model — and report communication-safety
/// diagnostics and type-inference counts. Exits 1 if any program fails.
fn analyze_cmd(args: &[String]) {
    let mut np: usize = 4;
    let mut size = SizeClass::Small;
    let mut as_json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => as_json = true,
            "--np" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--np needs a value");
                    std::process::exit(2);
                });
                np = v.parse().unwrap_or_else(|e| {
                    eprintln!("bad --np: {e}");
                    std::process::exit(2);
                });
                if np < 2 {
                    eprintln!("--np must be at least 2");
                    std::process::exit(2);
                }
            }
            "--size" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--size needs a value");
                    std::process::exit(2);
                });
                size = SizeClass::parse(v).unwrap_or_else(|| {
                    eprintln!("bad --size `{v}` (small, medium, standard)");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag `{other}` (accepts: --np N, --size S, --json)");
                std::process::exit(2);
            }
        }
    }

    let rows = driver::analyze_registry(size, np, &ModelSpec::presets());
    let dirty = rows.iter().filter(|r| !r.is_clean()).count();

    if as_json {
        let mut out = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"workload\": \"{}\", \"variant\": \"{}\", \"model\": \"{}\", \
                 \"np\": {}, \"analysis\": {}}}",
                row.workload,
                row.variant,
                row.model,
                row.np,
                row.report.to_json(&row.source)
            ));
        }
        out.push_str("\n]\n");
        print!("{out}");
    } else {
        hr(&format!(
            "analyze — registry x {{orig, prepush}} x models, {} np={np}",
            size.id()
        ));
        for row in &rows {
            let types = row
                .report
                .types
                .as_ref()
                .map(|t| format!("{} typed / {} dyn chains", t.chains_typed(), t.chains_dyn()))
                .unwrap_or_else(|| "types unavailable".into());
            if row.is_clean() {
                println!("  ok    {:<40} {}", row.label(), types);
            } else {
                println!("  FAIL  {:<40} {}", row.label(), types);
                for line in row.report.render_human(&row.source).lines() {
                    println!("        {line}");
                }
            }
        }
        println!(
            "\n{} program(s) analyzed, {} clean, {} with diagnostics",
            rows.len(),
            rows.len() - dirty,
            dirty
        );
    }
    if dirty > 0 {
        std::process::exit(1);
    }
}

// ------------------------------------------------------- paper figures

/// Figure 1: normalized execution time of {MPICH, MPICH-GM} × {Original,
/// Prepush}, regenerated as a 2-workload × 2-model grid.
fn fig1() {
    hr("Figure 1 — performance improvement achieved by \"pre-pushing\"");
    let np = 8;
    println!("(np = {np}; bars normalized to the fastest variant; paper shape:");
    println!(" prepush beats original on both stacks, decisively on MPICH-GM)\n");
    let result = run_sweep(&SweepGrid::fig1(), 0);
    for (name, blurb) in [
        ("direct2d", "communication scheme: {} —"),
        ("indirect", "communication scheme: {} (the paper's §4 test shape) —"),
    ] {
        let tcp = rec(&result, name, np, &ModelSpec::Mpich, None);
        let gm = rec(&result, name, np, &ModelSpec::MpichGm, None);
        println!(
            "{}",
            render_fig1(
                &blurb.replace("{}", display_name(name, SizeClass::Standard, np)),
                &Fig1Rows::from_records(tcp, gm)
            )
        );
    }
}

/// Figure 2: the abstract direct-pattern code before and after.
fn fig2() {
    hr("Figure 2 — direct pattern before/after transformation");
    let src = "\
program main
  real :: as(64), ar(64)
  do iy = 1, 64
    do ix = 1, 64
      as(ix) = ix * iy
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", 4),
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- (a) before ---\n{src}\n");
    println!("--- (b) after (K = 8) ---\n{}", fir::unparse(&out.program));
    println!("--- report ---\n{}", out.report.summary());
}

/// Figure 3: the indirect pattern before/after (copy loop removed).
fn fig3() {
    hr("Figure 3 — indirect pattern: removing the redundant copy");
    let w = workloads::indirect3d::Indirect3d::small(4);
    let src = w.source();
    let out = transform(
        &w.program(),
        &Options {
            context: w.context(),
            oracle: compuniformer::UserOracle::AssumeSafe,
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- (a) before ---\n{src}");
    println!("--- (b) after ---\n{}", fir::unparse(&out.program));
    println!("--- report ---\n{}", out.report.summary());
}

/// Figure 4: the generated communication loop, isolated.
fn fig4() {
    hr("Figure 4 — the generated skewed exchange");
    let src = "\
program main
  real :: as(32, 4), ar(32, 4)
  do iy = 1, 2
    do ix = 1, 32
      do iz = 1, 4
        as(ix, iz) = ix * iz + iy
      end do
    end do
    call mpi_alltoall(as, 32, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", 4),
            ..Default::default()
        },
    )
    .unwrap();
    let text = fir::unparse(&out.program);
    println!("paper's Figure 4:");
    println!("  do j = 1,NP-1");
    println!("    to = mod(mynum+j,NP)");
    println!("    call mpi_isend(As(...,(to-1)*(NP/SZ)),...)");
    println!("    from = mod(NP+mynum-j,NP)");
    println!("    call mpi_irecv(Ar(...,(from-1)*(NP/SZ)),...)");
    println!("  enddo\n");
    println!("generated (excerpt):");
    for line in text.lines() {
        let t = line.trim_start();
        if t.starts_with("do cc_j")
            || t.starts_with("cc_to =")
            || t.starts_with("cc_from =")
            || t.starts_with("call mpi_isend")
            || t.starts_with("call mpi_irecv")
        {
            println!("  {t}");
        }
    }
}

/// §4: correctness — transformed output identical to original, across
/// every registry workload, both stacks, several rank counts. The grid is
/// the full evaluation grid; equivalence is asserted inside each
/// scenario, so an `ok` row *is* the §4 check.
fn correctness() {
    hr("§4 correctness — transformed output identical to the original");
    println!(
        "{:<46} {:>3} {:>10} {:>12} {:>12} {:>8}",
        "workload", "np", "model", "orig", "prepush", "gain"
    );
    // The paper's np {4, 8} table — the full grid's np {16, 32, 64} rows
    // belong to `harness sweep`, not to this figure.
    let result = run_sweep(
        &SweepGrid::new()
            .workloads(workloads::registry().iter().map(|e| e.name))
            .size(SizeClass::Standard)
            .nps([4, 8])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm]),
        0,
    );
    require_clean(&result, "correctness");
    for np in [4usize, 8] {
        for entry in workloads::registry() {
            for model in [ModelSpec::Mpich, ModelSpec::MpichGm] {
                let r = rec(&result, entry.name, np, &model, None);
                println!(
                    "{:<46} {:>3} {:>10} {:>12} {:>12} {:>7.2}x",
                    display_name(entry.name, SizeClass::Standard, np),
                    np,
                    model.to_model().name,
                    sim(r.orig_ns).to_string(),
                    sim(r.prepush_ns).to_string(),
                    r.speedup.unwrap_or(0.0)
                );
            }
        }
    }
    println!("\nall outputs identical (checked element-for-element per rank) ✓");
}

/// Ablation: execution time vs tile size K (the U-curve the paper's §2
/// attributes to the performance-critical parameters of [3]).
fn ablation_k() {
    hr("Ablation — execution time vs tile size K (direct-2d, MPICH-GM, np=8)");
    let np = 8;
    let w = workloads::direct2d::Direct2d::standard(np);
    let model = ModelSpec::MpichGm;
    let heur = transform_workload(&w, &model.to_model(), None)
        .report
        .opportunities[0]
        .tile_size
        .unwrap();
    let mut ks = vec![1i64, 8, 64, 256, 1024, heur, 2048, 4096];
    ks.sort_unstable();
    ks.dedup();
    let result = run_sweep(
        &SweepGrid::new()
            .workloads(["direct2d"])
            .nps([np])
            .models([model.clone()])
            .tile_sizes(ks.iter().map(|&k| Some(k))),
        0,
    );
    // The original program is K-independent; any row's orig is the base.
    let base = sim(rec(&result, "direct2d", np, &model, Some(ks[0])).orig_ns);
    println!("{:>6} {:>12} {:>8}", "K", "prepush", "gain");
    for &k in &ks {
        let r = rec(&result, "direct2d", np, &model, Some(k));
        println!(
            "{:>6} {:>12} {:>7.2}x{}",
            k,
            sim(r.prepush_ns).to_string(),
            base.as_ns() as f64 / sim(r.prepush_ns).as_ns() as f64,
            if k == heur { "   <- heuristic" } else { "" }
        );
    }
}

/// Ablation: speedup vs rank count.
fn scaling() {
    hr("Ablation — pre-push speedup vs rank count (direct-2d)");
    let nps = [2usize, 4, 8, 16, 32];
    let result = run_sweep(&SweepGrid::scaling(), 0);
    println!("{:>4} {:>10} {:>10}", "np", "MPICH", "MPICH-GM");
    for np in nps {
        let tcp = rec(&result, "direct2d", np, &ModelSpec::Mpich, None);
        let gm = rec(&result, "direct2d", np, &ModelSpec::MpichGm, None);
        println!(
            "{:>4} {:>9.2}x {:>9.2}x",
            np,
            tcp.speedup.unwrap_or(0.0),
            gm.speedup.unwrap_or(0.0)
        );
    }
}

/// Ablation: sweep the per-byte CPU involvement β from RDMA-like (0) to
/// TCP-like (1×) and beyond — the overlap benefit collapses as the host
/// CPU touches more bytes, which is the paper's whole argument for RDMA
/// interconnects.
fn model_sweep() {
    hr("Ablation — speedup vs per-byte CPU involvement β (direct-2d, np=8)");
    let np = 8;
    let scales = [0.0, 0.125, 0.25, 0.5, 1.0, 2.0];
    let result = run_sweep(
        &SweepGrid::new()
            .workloads(["direct2d"])
            .nps([np])
            .models(scales.iter().map(|&s| ModelSpec::MpichBeta(s))),
        0,
    );
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>16}",
        "β-scale", "orig", "prepush", "gain", "exposed-comm cut"
    );
    for &scale in &scales {
        let r = rec(&result, "direct2d", np, &ModelSpec::MpichBeta(scale), None);
        println!(
            "{:>8.3} {:>12} {:>12} {:>7.2}x {:>15.1}x",
            scale,
            sim(r.orig_ns).to_string(),
            sim(r.prepush_ns).to_string(),
            r.speedup.unwrap_or(0.0),
            r.orig_exposed_ns.unwrap_or(0) as f64
                / r.prepush_exposed_ns.unwrap_or(0).max(1) as f64,
        );
    }
}

/// Ablation: node loop outermost — legal interchange vs the congested
/// fallback (§3.5), now first-class registry workloads.
fn interchange() {
    hr("Ablation — node loop outermost: interchange vs per-column fallback");
    let np = 4;
    let result = run_sweep(&SweepGrid::interchange(), 0);
    for (name, label) in [
        ("interchange-legal", "interchange legal"),
        ("interchange-blocked", "interchange blocked"),
    ] {
        let r = rec(&result, name, np, &ModelSpec::MpichGm, None);
        println!(
            "{label:<22} strategy: {:<34} orig {} -> prepush {} ({:.2}x)",
            r.strategy.as_deref().unwrap_or("-"),
            sim(r.orig_ns),
            sim(r.prepush_ns),
            r.speedup.unwrap_or(0.0)
        );
    }
    println!(
        "\nthe legal interchange recovers the efficient Fig. 4 exchange; the \
         blocked case would pay §3.5's congestion penalty, so the K-selection \
         predictor declines it here (1.00x, original program kept) — the \
         per-column fallback only applies where it measurably wins (zero-copy \
         stack, >= 6 senders per owner, >= 16 KiB columns). \
         (equivalence is asserted inside each scenario — an ok row is the check)"
    );
}
