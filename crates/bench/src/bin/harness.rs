//! The reproduction harness: regenerates every figure of the paper plus
//! the DESIGN.md ablations, now as declarative grids over the sweep
//! engine (`driver`, a.k.a. `overlap_suite::sweep`).
//!
//! ```text
//! cargo run --release -p overlap-bench --bin harness -- <experiment>
//!
//! experiments:
//!   fig1          performance improvement achieved by pre-pushing
//!   fig2          direct-pattern code before/after (listing)
//!   fig3          indirect-pattern code before/after (listing)
//!   fig4          the generated communication loop (listing)
//!   correctness   §4: transformed output identical to original
//!   ablation-k    execution time vs tile size K (U-curve)
//!   scaling       speedup vs rank count
//!   model-sweep   speedup vs per-byte CPU involvement β
//!   interchange   node-loop-outermost: interchange vs fallback
//!   all           everything above, in order
//!
//! sweep subcommands:
//!   sweep [--grid FILE.toml] [--threads N] [--out PATH] [--wall-out PATH]
//!         [--baseline OLD.json] [--incremental] [--tol F] [--md-out PATH]
//!                                      full evaluation grid (np up to 64,
//!                                      rdma-ideal column, U-curve tile axis),
//!                                      in parallel; writes the
//!                                      BENCH_sweep.json artifact. --grid
//!                                      swaps in a declarative scenario file
//!                                      (scenarios/*.toml) instead of the
//!                                      compiled-in grid; --wall-out also
//!                                      writes the non-normalized artifact
//!                                      with the `timing` section; --baseline
//!                                      diffs the fresh run against OLD.json
//!                                      and exits 1 on virtual-time
//!                                      regressions (one-shot regression
//!                                      gate), with --md-out writing that
//!                                      diff as a markdown report;
//!                                      --incremental (needs --baseline)
//!                                      re-simulates only the scenarios whose
//!                                      `input_hash` moved since the baseline
//!                                      and reuses every other row — the
//!                                      artifact is byte-identical to a cold
//!                                      full run, in seconds instead of
//!                                      minutes (error rows and rows without
//!                                      a hash are never reused)
//!   quick [--grid FILE.toml] [--threads N] [--out PATH] [--wall-out PATH]
//!         [--baseline OLD.json] [--tol F] [--md-out PATH]
//!                                      tiny smoke grid (seconds); same
//!                                      artifact schema — the verify gate
//!                                      and the golden test run this
//!   diff <a.json> <b.json> [--tol F] [--grid FILE.toml] [--md-out PATH]
//!                                      compare two artifacts; exit 1 on
//!                                      virtual-time regressions beyond the
//!                                      fractional tolerance F (default 0).
//!                                      --grid restricts the comparison to
//!                                      the scenarios a grid file expands to;
//!                                      --md-out writes the report as
//!                                      markdown (status flips, movements,
//!                                      per-model geomean table)
//!   diff --wall <a.json> <b.json>      compare the host wall-clock `timing`
//!                                      sections of two --wall-out artifacts
//!                                      (the per-PR perf trajectory under
//!                                      perf/): per-scenario movements plus
//!                                      totals. Informational only — wall
//!                                      clock varies across machines, so
//!                                      this never fails the gate
//!   analyze [--np N] [--size small|medium|standard] [--json]
//!                                      statically analyze every registry
//!                                      workload — the original program and
//!                                      the pre-push program emitted under
//!                                      each preset network model — for
//!                                      communication safety (unmatched
//!                                      isend/irecv, in-flight buffer
//!                                      hazards, rank-divergent collectives)
//!                                      and slot-level types. Prints one
//!                                      line per program (or a JSON array
//!                                      with --json) and exits 1 if any
//!                                      program has diagnostics
//!
//! network models (the `models` axis of --grid scenario files):
//!   mpich                  TCP-like stack; per-byte send AND receive CPU
//!   mpich-gm               Myrinet/GM RDMA stack; near-zero per-byte CPU
//!   rdma-ideal             zero-overhead upper bound (ablation column)
//!   mpich-beta:<factor>    mpich with per-byte CPU scaled by <factor>
//!                          (finite, >= 0); the β involvement sweep
//!   congested:<links>:<load>
//!                          mpich-gm behind a shared switch spine of
//!                          <links> physical links (>= 1) at <load>x
//!                          background load (finite, > 0): every message
//!                          also crosses a link stage serialized at
//!                          gap x ceil(np/links) x load ns/byte
//!   hetero:<profile>       mpich-gm on a heterogeneous cluster;
//!                          profiles: half-slow (upper half of ranks 2x
//!                          slower CPU and NIC), straggler (last rank 4x
//!                          CPU, 2x NIC)
//! ```
//!
//! Every experiment grid runs through [`driver::run_sweep`]: scenarios
//! execute in parallel on a work-stealing pool, results come back in
//! deterministic grid order, and a panicking scenario becomes an error
//! row instead of killing the run.

use compuniformer::{transform, Options};
use depan::Context;
use driver::{
    json, run_sweep, ModelSpec, SizeClass, SweepGrid, SweepRecord, SweepResult,
};
use clustersim::SimTime;
use overlap_bench::{render_fig1, transform_workload, Fig1Rows};
use workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "correctness" => correctness(),
        "ablation-k" => ablation_k(),
        "scaling" => scaling(),
        "model-sweep" => model_sweep(),
        "interchange" => interchange(),
        "sweep" => sweep_cmd(SweepGrid::full(), rest),
        "quick" => sweep_cmd(SweepGrid::quick(), rest),
        "diff" => diff_cmd(rest),
        "analyze" => analyze_cmd(rest),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
            correctness();
            ablation_k();
            scaling();
            model_sweep();
            interchange();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs");
            std::process::exit(2);
        }
    }
}

fn hr(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Find the record for one grid point (the experiments below know their
/// grids are total, so a miss is a bug). An error row aborts here with
/// the scenario's own message — the figure printers downstream can then
/// rely on the measurement fields being present.
fn rec<'a>(
    result: &'a SweepResult,
    workload: &str,
    np: usize,
    model: &ModelSpec,
    tile_size: Option<i64>,
) -> &'a SweepRecord {
    let r = result
        .records
        .iter()
        .find(|r| {
            r.spec.workload == workload
                && r.spec.np == np
                && r.spec.model == *model
                && r.spec.tile_size == tile_size
        })
        .unwrap_or_else(|| panic!("no record for {workload} np={np} {}", model.id()));
    if let Some(e) = r.error() {
        panic!("scenario {} failed: {e}", r.spec.key());
    }
    r
}

/// Abort with every failing row's key and error (not just a count).
fn require_clean(result: &SweepResult, what: &str) {
    if result.summary.errors == 0 {
        return;
    }
    for r in &result.records {
        if let Some(e) = r.error() {
            eprintln!("{what}: {} failed: {e}", r.spec.key());
        }
    }
    panic!("{what}: {} scenario(s) failed", result.summary.errors);
}

/// The descriptive display name of a registry workload.
fn display_name(name: &str, size: SizeClass, np: usize) -> &'static str {
    let entry = workloads::find(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    (entry.make)(size, np).name()
}

fn sim(ns: Option<u64>) -> SimTime {
    SimTime::from_ns(ns.expect("compare record carries both virtual times"))
}

// ------------------------------------------------------------ sweep CLI

struct SweepFlags {
    threads: usize,
    out: String,
    wall_out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    grid: Option<String>,
    md_out: Option<String>,
    /// `diff --wall`: compare host wall-clock timing sections instead of
    /// virtual times.
    wall: bool,
    /// `sweep --incremental`: reuse baseline rows with matching
    /// `input_hash`, re-simulating only moved cells.
    incremental: bool,
}

/// Parse flags, accepting only the ones the subcommand supports (so
/// e.g. `diff --out x` fails loudly instead of being silently ignored).
fn parse_flags(args: &[String], allowed: &[&str]) -> SweepFlags {
    let mut flags = SweepFlags {
        threads: 0,
        out: "BENCH_sweep.json".into(),
        wall_out: None,
        baseline: None,
        tolerance: 0.0,
        grid: None,
        md_out: None,
        wall: false,
        incremental: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if !allowed.contains(&a.as_str()) {
            eprintln!(
                "unknown flag `{a}` for this subcommand (accepts: {})",
                allowed.join(", ")
            );
            std::process::exit(2);
        }
        if a == "--wall" {
            flags.wall = true;
            continue;
        }
        if a == "--incremental" {
            flags.incremental = true;
            continue;
        }
        let mut grab = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--threads" => {
                flags.threads = grab("--threads").parse().unwrap_or_else(|e| {
                    eprintln!("bad --threads: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => flags.out = grab("--out").clone(),
            "--wall-out" => flags.wall_out = Some(grab("--wall-out").clone()),
            "--baseline" => flags.baseline = Some(grab("--baseline").clone()),
            "--grid" => flags.grid = Some(grab("--grid").clone()),
            "--md-out" => flags.md_out = Some(grab("--md-out").clone()),
            "--tol" => {
                flags.tolerance = grab("--tol").parse().unwrap_or_else(|e| {
                    eprintln!("bad --tol: {e}");
                    std::process::exit(2);
                })
            }
            other => unreachable!("`{other}` passed the allow-list"),
        }
    }
    flags
}

/// Load a declarative scenario file (`scenarios/*.toml`) into a grid.
fn load_grid(path: &str) -> SweepGrid {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read grid file {path}: {e}");
        std::process::exit(2);
    });
    let text = String::from_utf8(bytes).unwrap_or_else(|e| {
        eprintln!("{path}: grid file is not valid UTF-8: {e}");
        std::process::exit(2);
    });
    driver::grid_from_toml(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

/// Read a sweep artifact, treating any corruption (including non-UTF-8
/// bytes) as a readable error, never a panic.
fn load_artifact(path: &str) -> SweepResult {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    json::from_json_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

/// Write the markdown diff report when `--md-out` was given.
fn write_md_report(
    md_out: &Option<String>,
    report: &driver::DiffReport,
    baseline: &str,
    candidate: &str,
    tolerance: f64,
) {
    let Some(path) = md_out else { return };
    let md = report.render_markdown(baseline, candidate, tolerance);
    if let Err(e) = std::fs::write(path, &md) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} (markdown diff report)");
}

/// Run a grid, print the record table + aggregates, write the artifact.
/// With `--grid FILE.toml`, the compiled-in grid is replaced by the
/// declarative scenario file. With `--baseline`, also diff against the
/// given artifact and exit 1 on regressions (the one-shot regression
/// gate); `--md-out` writes that diff as markdown.
fn sweep_cmd(grid: SweepGrid, args: &[String]) {
    let flags = parse_flags(
        args,
        &[
            "--threads",
            "--out",
            "--wall-out",
            "--baseline",
            "--incremental",
            "--tol",
            "--grid",
            "--md-out",
        ],
    );
    if flags.md_out.is_some() && flags.baseline.is_none() {
        eprintln!("--md-out needs --baseline (the markdown report is a diff report)");
        std::process::exit(2);
    }
    if flags.incremental && flags.baseline.is_none() {
        eprintln!("--incremental needs --baseline (the artifact whose rows to reuse)");
        std::process::exit(2);
    }
    let grid = match &flags.grid {
        Some(path) => load_grid(path),
        None => grid,
    };
    let result = if flags.incremental {
        let baseline_path = flags.baseline.as_deref().expect("checked above");
        let baseline = load_artifact(baseline_path);
        let inc = driver::run_sweep_incremental(&grid, flags.threads, &baseline);
        let simulated = inc.reused.iter().filter(|r| !**r).count();
        println!(
            "incremental vs {baseline_path}: reused {} row(s), re-simulated {simulated}",
            inc.reused.len() - simulated
        );
        inc.result
    } else {
        run_sweep(&grid, flags.threads)
    };
    hr(&format!(
        "sweep — {} scenarios ({} ok, {} errors) in {:.0} ms wall",
        result.summary.scenarios,
        result.summary.ok,
        result.summary.errors,
        result.summary.wall_ms
    ));
    println!(
        "{:<22} {:>8} {:>3} {:>14} {:>6} {:>12} {:>12} {:>7}  strategy/status",
        "workload", "size", "np", "model", "K", "orig", "prepush", "gain"
    );
    for r in &result.records {
        let k = r
            .tile_size
            .map(|k| k.to_string())
            .unwrap_or_else(|| "-".into());
        match r.error() {
            Some(e) => println!(
                "{:<22} {:>8} {:>3} {:>14} {:>6} {:>12} {:>12} {:>7}  ERROR: {}",
                r.spec.workload,
                r.spec.size.id(),
                r.spec.np,
                r.spec.model.id(),
                k,
                "-",
                "-",
                "-",
                e.lines().next().unwrap_or("")
            ),
            None => println!(
                "{:<22} {:>8} {:>3} {:>14} {:>6} {:>12} {:>12} {:>6.2}x  {}",
                r.spec.workload,
                r.spec.size.id(),
                r.spec.np,
                r.spec.model.id(),
                k,
                r.orig_ns.map(SimTime::from_ns).map_or("-".into(), |t| t.to_string()),
                r.prepush_ns.map(SimTime::from_ns).map_or("-".into(), |t| t.to_string()),
                r.speedup.unwrap_or(0.0),
                r.strategy.as_deref().unwrap_or("-")
            ),
        }
    }
    if let Some(g) = result.summary.geomean_speedup {
        println!("\ngeomean speedup: {g:.3}x");
    }
    for (model, g) in &result.summary.per_model {
        println!("  {model:<14} geomean {g:.3}x");
    }
    if let Some((key, s)) = &result.summary.best {
        println!("best : {s:.2}x  {key}");
    }
    if let Some((key, s)) = &result.summary.worst {
        println!("worst: {s:.2}x  {key}");
    }
    if let Some(t) = &result.timing {
        println!(
            "compile cache: {} hit(s), {} miss(es); {} baseline row(s) reused",
            t.cache_hits, t.cache_misses, t.reused_rows
        );
    }
    // Committed artifacts are normalized (host wall-clock zeroed, timing
    // dropped) so the bytes are identical across runs, machines, and
    // thread counts.
    let text = json::to_json_string(&result.normalized());
    if let Err(e) = std::fs::write(&flags.out, &text) {
        eprintln!("cannot write {}: {e}", flags.out);
        std::process::exit(1);
    }
    println!("\nwrote {} ({} records)", flags.out, result.records.len());
    if let Some(wall_out) = &flags.wall_out {
        // The non-normalized artifact keeps per-scenario wall_ms and the
        // `timing` section — the tracked perf-trajectory data.
        let text = json::to_json_string(&result);
        if let Err(e) = std::fs::write(wall_out, &text) {
            eprintln!("cannot write {wall_out}: {e}");
            std::process::exit(1);
        }
        if let Some(t) = &result.timing {
            println!(
                "wrote {wall_out} (timing: {:.0} ms total, pool capacity {}, \
                 worker high-water {}, cache {}h/{}m, {} reused)",
                t.wall_ms_total,
                t.pool_capacity,
                t.workers_high_water,
                t.cache_hits,
                t.cache_misses,
                t.reused_rows
            );
        }
    }
    // The committed BENCH_sweep.json is the quick-grid baseline that
    // scripts/verify.sh regenerates; warn whenever any *other* grid —
    // whichever subcommand or --grid file produced it — lands there.
    if grid != SweepGrid::quick() && flags.out == "BENCH_sweep.json" {
        eprintln!(
            "note: overwrote the quick-grid baseline at BENCH_sweep.json — \
             `git restore BENCH_sweep.json` (or rerun `harness quick`), \
             or pass --out next time"
        );
    }
    if result.summary.errors > 0 {
        std::process::exit(1);
    }
    if let Some(baseline_path) = &flags.baseline {
        let baseline = load_artifact(baseline_path);
        hr(&format!(
            "regression gate — {} (baseline) vs this run, tolerance {}",
            baseline_path, flags.tolerance
        ));
        let report = driver::diff(&baseline, &result, flags.tolerance);
        print!("{}", report.render());
        write_md_report(
            &flags.md_out,
            &report,
            baseline_path,
            "this run",
            flags.tolerance,
        );
        if report.has_regressions() {
            eprintln!("regression gate FAILED");
            std::process::exit(1);
        }
        println!("regression gate passed");
    }
}

/// Keep only the records a grid file's expansion names (by scenario
/// key), recomputing the summary over the survivors.
fn restrict_to_grid(result: SweepResult, keys: &std::collections::HashSet<String>) -> SweepResult {
    let records: Vec<SweepRecord> = result
        .records
        .into_iter()
        .filter(|r| keys.contains(&r.spec.key()))
        .collect();
    let summary = driver::summarize(&records, result.summary.wall_ms);
    SweepResult {
        records,
        summary,
        timing: None,
    }
}

/// Compare two sweep artifacts; exit 1 on regressions. `--grid` scopes
/// the comparison to a scenario file's expansion; `--md-out` writes the
/// report as markdown.
fn diff_cmd(args: &[String]) {
    // Flags (with their values) go to parse_flags; bare args are paths.
    let mut paths: Vec<String> = Vec::new();
    let mut flag_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--wall" {
            // Boolean flag: takes no value.
            flag_args.push(a.clone());
        } else if a.starts_with("--") {
            flag_args.push(a.clone());
            if let Some(v) = it.next() {
                flag_args.push(v.clone());
            }
        } else {
            paths.push(a.clone());
        }
    }
    let flags = parse_flags(&flag_args, &["--tol", "--grid", "--md-out", "--wall"]);
    if paths.len() != 2 {
        eprintln!(
            "usage: harness diff [--wall] <a.json> <b.json> [--tol F] [--grid FILE.toml] [--md-out PATH]"
        );
        std::process::exit(2);
    }
    if flags.wall {
        wall_diff(&paths[0], &paths[1]);
        return;
    }
    let mut a = load_artifact(&paths[0]);
    let mut b = load_artifact(&paths[1]);
    if let Some(grid_path) = &flags.grid {
        let keys: std::collections::HashSet<String> = load_grid(grid_path)
            .expand()
            .iter()
            .map(driver::ScenarioSpec::key)
            .collect();
        a = restrict_to_grid(a, &keys);
        b = restrict_to_grid(b, &keys);
        println!(
            "(scoped to {}: {} baseline / {} candidate records match)",
            grid_path,
            a.records.len(),
            b.records.len()
        );
    }
    hr(&format!(
        "diff — {} (baseline) vs {} (candidate), tolerance {}",
        paths[0], paths[1], flags.tolerance
    ));
    let report = driver::diff(&a, &b, flags.tolerance);
    print!("{}", report.render());
    write_md_report(&flags.md_out, &report, &paths[0], &paths[1], flags.tolerance);
    if report.has_regressions() {
        std::process::exit(1);
    }
}

/// `analyze`: run the static analyzer over every program the pipeline
/// touches — each registry workload's original, plus the pre-push program
/// emitted under each preset model — and report communication-safety
/// diagnostics and type-inference counts. Exits 1 if any program fails.
fn analyze_cmd(args: &[String]) {
    let mut np: usize = 4;
    let mut size = SizeClass::Small;
    let mut as_json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => as_json = true,
            "--np" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--np needs a value");
                    std::process::exit(2);
                });
                np = v.parse().unwrap_or_else(|e| {
                    eprintln!("bad --np: {e}");
                    std::process::exit(2);
                });
                if np < 2 {
                    eprintln!("--np must be at least 2");
                    std::process::exit(2);
                }
            }
            "--size" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--size needs a value");
                    std::process::exit(2);
                });
                size = SizeClass::parse(v).unwrap_or_else(|| {
                    eprintln!("bad --size `{v}` (small, medium, standard)");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag `{other}` (accepts: --np N, --size S, --json)");
                std::process::exit(2);
            }
        }
    }

    let rows = driver::analyze_registry(size, np, &ModelSpec::presets());
    let dirty = rows.iter().filter(|r| !r.is_clean()).count();

    if as_json {
        let mut out = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"workload\": \"{}\", \"variant\": \"{}\", \"model\": \"{}\", \
                 \"np\": {}, \"analysis\": {}}}",
                row.workload,
                row.variant,
                row.model,
                row.np,
                row.report.to_json(&row.source)
            ));
        }
        out.push_str("\n]\n");
        print!("{out}");
    } else {
        hr(&format!(
            "analyze — registry x {{orig, prepush}} x models, {} np={np}",
            size.id()
        ));
        for row in &rows {
            let types = row
                .report
                .types
                .as_ref()
                .map(|t| format!("{} typed / {} dyn chains", t.chains_typed(), t.chains_dyn()))
                .unwrap_or_else(|| "types unavailable".into());
            if row.is_clean() {
                println!("  ok    {:<40} {}", row.label(), types);
            } else {
                println!("  FAIL  {:<40} {}", row.label(), types);
                for line in row.report.render_human(&row.source).lines() {
                    println!("        {line}");
                }
            }
        }
        println!(
            "\n{} program(s) analyzed, {} clean, {} with diagnostics",
            rows.len(),
            rows.len() - dirty,
            dirty
        );
    }
    if dirty > 0 {
        std::process::exit(1);
    }
}

/// `diff --wall`: compare the host wall-clock `timing` sections of two
/// `--wall-out` artifacts — the per-PR perf trajectory the ROADMAP tracks
/// under `perf/`. Prints per-scenario movements (sorted by absolute delta)
/// and totals. Purely informational: wall clock varies across machines and
/// runs, so this never exits nonzero on a slowdown — it exists so a perf
/// regression is *seen* in CI output, not to fail the gate.
fn wall_diff(baseline_path: &str, candidate_path: &str) {
    let load_timing = |path: &str| {
        let result = load_artifact(path);
        result.timing.unwrap_or_else(|| {
            eprintln!(
                "{path}: no `timing` section — wall diffs need the non-normalized \
                 --wall-out artifact (e.g. perf/PR*_quick_wall.json)"
            );
            std::process::exit(2);
        })
    };
    let a = load_timing(baseline_path);
    let b = load_timing(candidate_path);
    hr(&format!(
        "wall-clock diff — {baseline_path} (baseline) vs {candidate_path} (candidate)"
    ));
    let base: std::collections::HashMap<&str, f64> = a
        .per_scenario
        .iter()
        .map(|(k, ms)| (k.as_str(), *ms))
        .collect();
    let mut rows: Vec<(&str, Option<f64>, f64)> = b
        .per_scenario
        .iter()
        .map(|(k, ms)| (k.as_str(), base.get(k.as_str()).copied(), *ms))
        .collect();
    rows.sort_by(|x, y| {
        let d = |r: &(&str, Option<f64>, f64)| r.1.map_or(f64::MAX, |old| (r.2 - old).abs());
        d(y).partial_cmp(&d(x)).expect("finite wall times")
    });
    println!(
        "{:<58} {:>10} {:>10} {:>8}",
        "scenario", "old ms", "new ms", "ratio"
    );
    for (key, old, new) in &rows {
        match old {
            Some(old) => println!(
                "{key:<58} {old:>10.1} {new:>10.1} {:>7.2}x",
                old / new.max(1e-9)
            ),
            None => println!("{key:<58} {:>10} {new:>10.1}  (new scenario)", "-"),
        }
    }
    for (key, ms) in &a.per_scenario {
        if !b.per_scenario.iter().any(|(k, _)| k == key) {
            println!("{key:<58} {ms:>10.1} {:>10}  (dropped)", "-");
        }
    }
    let matched_old: f64 = rows.iter().filter_map(|r| r.1).sum();
    let matched_new: f64 = rows.iter().filter(|r| r.1.is_some()).map(|r| r.2).sum();
    println!(
        "\ntotals: {:.0} ms -> {:.0} ms over {} matched scenario(s) ({:.2}x); \
         whole runs {:.0} ms -> {:.0} ms",
        matched_old,
        matched_new,
        rows.iter().filter(|r| r.1.is_some()).count(),
        matched_old / matched_new.max(1e-9),
        a.wall_ms_total,
        b.wall_ms_total,
    );
    // Reuse counters ride along so the perf trajectory shows the cache
    // *working* — an accidental 0%-hit regression is visible here, not
    // silent. (Pre-v3 artifacts read back as all-zero counters.)
    println!(
        "compile cache: {} -> {} hit(s), {} -> {} miss(es); reused rows {} -> {}",
        a.cache_hits, b.cache_hits, a.cache_misses, b.cache_misses, a.reused_rows, b.reused_rows,
    );
}

// ------------------------------------------------------- paper figures

/// Figure 1: normalized execution time of {MPICH, MPICH-GM} × {Original,
/// Prepush}, regenerated as a 2-workload × 2-model grid.
fn fig1() {
    hr("Figure 1 — performance improvement achieved by \"pre-pushing\"");
    let np = 8;
    println!("(np = {np}; bars normalized to the fastest variant; paper shape:");
    println!(" prepush beats original on both stacks, decisively on MPICH-GM)\n");
    let result = run_sweep(&SweepGrid::fig1(), 0);
    for (name, blurb) in [
        ("direct2d", "communication scheme: {} —"),
        ("indirect", "communication scheme: {} (the paper's §4 test shape) —"),
    ] {
        let tcp = rec(&result, name, np, &ModelSpec::Mpich, None);
        let gm = rec(&result, name, np, &ModelSpec::MpichGm, None);
        println!(
            "{}",
            render_fig1(
                &blurb.replace("{}", display_name(name, SizeClass::Standard, np)),
                &Fig1Rows::from_records(tcp, gm)
            )
        );
    }
}

/// Figure 2: the abstract direct-pattern code before and after.
fn fig2() {
    hr("Figure 2 — direct pattern before/after transformation");
    let src = "\
program main
  real :: as(64), ar(64)
  do iy = 1, 64
    do ix = 1, 64
      as(ix) = ix * iy
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", 4),
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- (a) before ---\n{src}\n");
    println!("--- (b) after (K = 8) ---\n{}", fir::unparse(&out.program));
    println!("--- report ---\n{}", out.report.summary());
}

/// Figure 3: the indirect pattern before/after (copy loop removed).
fn fig3() {
    hr("Figure 3 — indirect pattern: removing the redundant copy");
    let w = workloads::indirect3d::Indirect3d::small(4);
    let src = w.source();
    let out = transform(
        &w.program(),
        &Options {
            context: w.context(),
            oracle: compuniformer::UserOracle::AssumeSafe,
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- (a) before ---\n{src}");
    println!("--- (b) after ---\n{}", fir::unparse(&out.program));
    println!("--- report ---\n{}", out.report.summary());
}

/// Figure 4: the generated communication loop, isolated.
fn fig4() {
    hr("Figure 4 — the generated skewed exchange");
    let src = "\
program main
  real :: as(32, 4), ar(32, 4)
  do iy = 1, 2
    do ix = 1, 32
      do iz = 1, 4
        as(ix, iz) = ix * iz + iy
      end do
    end do
    call mpi_alltoall(as, 32, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", 4),
            ..Default::default()
        },
    )
    .unwrap();
    let text = fir::unparse(&out.program);
    println!("paper's Figure 4:");
    println!("  do j = 1,NP-1");
    println!("    to = mod(mynum+j,NP)");
    println!("    call mpi_isend(As(...,(to-1)*(NP/SZ)),...)");
    println!("    from = mod(NP+mynum-j,NP)");
    println!("    call mpi_irecv(Ar(...,(from-1)*(NP/SZ)),...)");
    println!("  enddo\n");
    println!("generated (excerpt):");
    for line in text.lines() {
        let t = line.trim_start();
        if t.starts_with("do cc_j")
            || t.starts_with("cc_to =")
            || t.starts_with("cc_from =")
            || t.starts_with("call mpi_isend")
            || t.starts_with("call mpi_irecv")
        {
            println!("  {t}");
        }
    }
}

/// §4: correctness — transformed output identical to original, across
/// every registry workload, both stacks, several rank counts. The grid is
/// the full evaluation grid; equivalence is asserted inside each
/// scenario, so an `ok` row *is* the §4 check.
fn correctness() {
    hr("§4 correctness — transformed output identical to the original");
    println!(
        "{:<46} {:>3} {:>10} {:>12} {:>12} {:>8}",
        "workload", "np", "model", "orig", "prepush", "gain"
    );
    // The paper's np {4, 8} table — the full grid's np {16, 32, 64} rows
    // belong to `harness sweep`, not to this figure.
    let result = run_sweep(
        &SweepGrid::new()
            .workloads(workloads::registry().iter().map(|e| e.name))
            .size(SizeClass::Standard)
            .nps([4, 8])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm]),
        0,
    );
    require_clean(&result, "correctness");
    for np in [4usize, 8] {
        for entry in workloads::registry() {
            for model in [ModelSpec::Mpich, ModelSpec::MpichGm] {
                let r = rec(&result, entry.name, np, &model, None);
                println!(
                    "{:<46} {:>3} {:>10} {:>12} {:>12} {:>7.2}x",
                    display_name(entry.name, SizeClass::Standard, np),
                    np,
                    model.to_model().name,
                    sim(r.orig_ns).to_string(),
                    sim(r.prepush_ns).to_string(),
                    r.speedup.unwrap_or(0.0)
                );
            }
        }
    }
    println!("\nall outputs identical (checked element-for-element per rank) ✓");
}

/// Ablation: execution time vs tile size K (the U-curve the paper's §2
/// attributes to the performance-critical parameters of [3]).
fn ablation_k() {
    hr("Ablation — execution time vs tile size K (direct-2d, MPICH-GM, np=8)");
    let np = 8;
    let w = workloads::direct2d::Direct2d::standard(np);
    let model = ModelSpec::MpichGm;
    let heur = transform_workload(&w, &model.to_model(), None)
        .report
        .opportunities[0]
        .tile_size
        .unwrap();
    let mut ks = vec![1i64, 8, 64, 256, 1024, heur, 2048, 4096];
    ks.sort_unstable();
    ks.dedup();
    let result = run_sweep(
        &SweepGrid::new()
            .workloads(["direct2d"])
            .nps([np])
            .models([model.clone()])
            .tile_sizes(ks.iter().map(|&k| Some(k))),
        0,
    );
    // The original program is K-independent; any row's orig is the base.
    let base = sim(rec(&result, "direct2d", np, &model, Some(ks[0])).orig_ns);
    println!("{:>6} {:>12} {:>8}", "K", "prepush", "gain");
    for &k in &ks {
        let r = rec(&result, "direct2d", np, &model, Some(k));
        println!(
            "{:>6} {:>12} {:>7.2}x{}",
            k,
            sim(r.prepush_ns).to_string(),
            base.as_ns() as f64 / sim(r.prepush_ns).as_ns() as f64,
            if k == heur { "   <- heuristic" } else { "" }
        );
    }
}

/// Ablation: speedup vs rank count.
fn scaling() {
    hr("Ablation — pre-push speedup vs rank count (direct-2d)");
    let nps = [2usize, 4, 8, 16, 32];
    let result = run_sweep(&SweepGrid::scaling(), 0);
    println!("{:>4} {:>10} {:>10}", "np", "MPICH", "MPICH-GM");
    for np in nps {
        let tcp = rec(&result, "direct2d", np, &ModelSpec::Mpich, None);
        let gm = rec(&result, "direct2d", np, &ModelSpec::MpichGm, None);
        println!(
            "{:>4} {:>9.2}x {:>9.2}x",
            np,
            tcp.speedup.unwrap_or(0.0),
            gm.speedup.unwrap_or(0.0)
        );
    }
}

/// Ablation: sweep the per-byte CPU involvement β from RDMA-like (0) to
/// TCP-like (1×) and beyond — the overlap benefit collapses as the host
/// CPU touches more bytes, which is the paper's whole argument for RDMA
/// interconnects.
fn model_sweep() {
    hr("Ablation — speedup vs per-byte CPU involvement β (direct-2d, np=8)");
    let np = 8;
    let scales = [0.0, 0.125, 0.25, 0.5, 1.0, 2.0];
    let result = run_sweep(
        &SweepGrid::new()
            .workloads(["direct2d"])
            .nps([np])
            .models(scales.iter().map(|&s| ModelSpec::MpichBeta(s))),
        0,
    );
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>16}",
        "β-scale", "orig", "prepush", "gain", "exposed-comm cut"
    );
    for &scale in &scales {
        let r = rec(&result, "direct2d", np, &ModelSpec::MpichBeta(scale), None);
        println!(
            "{:>8.3} {:>12} {:>12} {:>7.2}x {:>15.1}x",
            scale,
            sim(r.orig_ns).to_string(),
            sim(r.prepush_ns).to_string(),
            r.speedup.unwrap_or(0.0),
            r.orig_exposed_ns.unwrap_or(0) as f64
                / r.prepush_exposed_ns.unwrap_or(0).max(1) as f64,
        );
    }
}

/// Ablation: node loop outermost — legal interchange vs the congested
/// fallback (§3.5), now first-class registry workloads.
fn interchange() {
    hr("Ablation — node loop outermost: interchange vs per-column fallback");
    let np = 4;
    let result = run_sweep(&SweepGrid::interchange(), 0);
    for (name, label) in [
        ("interchange-legal", "interchange legal"),
        ("interchange-blocked", "interchange blocked"),
    ] {
        let r = rec(&result, name, np, &ModelSpec::MpichGm, None);
        println!(
            "{label:<22} strategy: {:<34} orig {} -> prepush {} ({:.2}x)",
            r.strategy.as_deref().unwrap_or("-"),
            sim(r.orig_ns),
            sim(r.prepush_ns),
            r.speedup.unwrap_or(0.0)
        );
    }
    println!(
        "\nthe legal interchange recovers the efficient Fig. 4 exchange; the \
         blocked case would pay §3.5's congestion penalty, so the K-selection \
         predictor declines it here (1.00x, original program kept) — the \
         per-column fallback only applies where it measurably wins (zero-copy \
         stack, >= 6 senders per owner, >= 16 KiB columns). \
         (equivalence is asserted inside each scenario — an ok row is the check)"
    );
}
