//! The reproduction harness: regenerates every figure of the paper plus
//! the DESIGN.md ablations, printing the same rows/series the paper
//! reports.
//!
//! ```text
//! cargo run --release -p overlap-bench --bin harness -- <experiment>
//!
//! experiments:
//!   fig1          performance improvement achieved by pre-pushing
//!   fig2          direct-pattern code before/after (listing)
//!   fig3          indirect-pattern code before/after (listing)
//!   fig4          the generated communication loop (listing)
//!   correctness   §4: transformed output identical to original
//!   ablation-k    execution time vs tile size K (U-curve)
//!   scaling       speedup vs rank count
//!   model-sweep   speedup vs per-byte CPU involvement β
//!   interchange   node-loop-outermost: interchange vs fallback
//!   all           everything above, in order
//! ```

use compuniformer::{transform, Options, UserOracle};
use depan::Context;
use interp::run_program;
use overlap_bench::{figure1, measure, render_fig1, NetworkModel};
use workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "correctness" => correctness(),
        "ablation-k" => ablation_k(),
        "scaling" => scaling(),
        "model-sweep" => model_sweep(),
        "interchange" => interchange(),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
            correctness();
            ablation_k();
            scaling();
            model_sweep();
            interchange();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs");
            std::process::exit(2);
        }
    }
}

fn hr(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Figure 1: normalized execution time of {MPICH, MPICH-GM} × {Original,
/// Prepush}. The paper's figure comes from Danalis et al. [3]; we
/// regenerate the series on the simulated cluster for the paper's own §4
/// test-program shape (indirect) and for the canonical all-peers kernel.
fn fig1() {
    hr("Figure 1 — performance improvement achieved by \"pre-pushing\"");
    let np = 8;
    println!("(np = {np}; bars normalized to the fastest variant; paper shape:");
    println!(" prepush beats original on both stacks, decisively on MPICH-GM)\n");
    let w2 = workloads::direct2d::Direct2d::standard(np);
    println!(
        "{}",
        render_fig1(
            &format!("communication scheme: {} —", w2.name()),
            &figure1(&w2, np)
        )
    );
    let wi = workloads::indirect::Indirect2d::standard(np);
    println!(
        "{}",
        render_fig1(
            &format!("communication scheme: {} (the paper's §4 test shape) —", wi.name()),
            &figure1(&wi, np)
        )
    );
}

/// Figure 2: the abstract direct-pattern code before and after.
fn fig2() {
    hr("Figure 2 — direct pattern before/after transformation");
    let src = "\
program main
  real :: as(64), ar(64)
  do iy = 1, 64
    do ix = 1, 64
      as(ix) = ix * iy
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", 4),
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- (a) before ---\n{src}\n");
    println!("--- (b) after (K = 8) ---\n{}", fir::unparse(&out.program));
    println!("--- report ---\n{}", out.report.summary());
}

/// Figure 3: the indirect pattern before/after (copy loop removed).
fn fig3() {
    hr("Figure 3 — indirect pattern: removing the redundant copy");
    let w = workloads::indirect3d::Indirect3d::small(4);
    let src = w.source();
    let out = transform(
        &w.program(),
        &Options {
            context: w.context(),
            oracle: UserOracle::AssumeSafe,
            ..Default::default()
        },
    )
    .unwrap();
    println!("--- (a) before ---\n{src}");
    println!("--- (b) after ---\n{}", fir::unparse(&out.program));
    println!("--- report ---\n{}", out.report.summary());
}

/// Figure 4: the generated communication loop, isolated.
fn fig4() {
    hr("Figure 4 — the generated skewed exchange");
    let src = "\
program main
  real :: as(32, 4), ar(32, 4)
  do iy = 1, 2
    do ix = 1, 32
      do iz = 1, 4
        as(ix, iz) = ix * iz + iy
      end do
    end do
    call mpi_alltoall(as, 32, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", 4),
            ..Default::default()
        },
    )
    .unwrap();
    let text = fir::unparse(&out.program);
    println!("paper's Figure 4:");
    println!("  do j = 1,NP-1");
    println!("    to = mod(mynum+j,NP)");
    println!("    call mpi_isend(As(...,(to-1)*(NP/SZ)),...)");
    println!("    from = mod(NP+mynum-j,NP)");
    println!("    call mpi_irecv(Ar(...,(from-1)*(NP/SZ)),...)");
    println!("  enddo\n");
    println!("generated (excerpt):");
    for line in text.lines() {
        let t = line.trim_start();
        if t.starts_with("do cc_j")
            || t.starts_with("cc_to =")
            || t.starts_with("cc_from =")
            || t.starts_with("call mpi_isend")
            || t.starts_with("call mpi_irecv")
        {
            println!("  {t}");
        }
    }
}

/// §4: correctness — transformed output identical to original, across
/// every workload, both models, several rank counts.
fn correctness() {
    hr("§4 correctness — transformed output identical to the original");
    println!(
        "{:<42} {:>3} {:>10} {:>12} {:>12} {:>8}",
        "workload", "np", "model", "orig", "prepush", "gain"
    );
    for np in [4usize, 8] {
        let ws: Vec<Box<dyn Workload>> = vec![
            Box::new(workloads::direct::Direct1d::standard(np)),
            Box::new(workloads::direct2d::Direct2d::standard(np)),
            Box::new(workloads::indirect::Indirect2d::standard(np)),
            Box::new(workloads::indirect3d::Indirect3d::standard(np)),
            Box::new(workloads::fft::FftTranspose::standard(np)),
            Box::new(workloads::adi::AdiStencil::standard(np)),
        ];
        for w in &ws {
            for model in [NetworkModel::mpich(), NetworkModel::mpich_gm()] {
                // `measure` asserts equivalence internally.
                let m = measure(w.as_ref(), np, &model, None);
                println!(
                    "{:<42} {:>3} {:>10} {:>12} {:>12} {:>7.2}x",
                    m.workload,
                    np,
                    m.model,
                    m.orig.to_string(),
                    m.prepush.to_string(),
                    m.speedup()
                );
            }
        }
    }
    println!("\nall outputs identical (checked element-for-element per rank) ✓");
}

/// Ablation: execution time vs tile size K (the U-curve the paper's §2
/// attributes to the performance-critical parameters of [3]).
fn ablation_k() {
    hr("Ablation — execution time vs tile size K (direct-2d, MPICH-GM, np=8)");
    let np = 8;
    let w = workloads::direct2d::Direct2d::standard(np);
    let model = NetworkModel::mpich_gm();
    let heur = overlap_bench::transform_workload(&w, &model, None)
        .report
        .opportunities[0]
        .tile_size
        .unwrap();
    println!("{:>6} {:>12} {:>8}", "K", "prepush", "gain");
    let base = measure(&w, np, &model, Some(heur)).orig;
    let mut ks = vec![1i64, 8, 64, 256, 1024, heur, 2048, 4096];
    ks.sort_unstable();
    ks.dedup();
    for k in ks {
        let m = measure(&w, np, &model, Some(k));
        println!(
            "{:>6} {:>12} {:>7.2}x{}",
            k,
            m.prepush.to_string(),
            base.as_ns() as f64 / m.prepush.as_ns() as f64,
            if k == heur { "   <- heuristic" } else { "" }
        );
    }
}

/// Ablation: speedup vs rank count.
fn scaling() {
    hr("Ablation — pre-push speedup vs rank count (direct-2d)");
    println!(
        "{:>4} {:>10} {:>10}",
        "np", "MPICH", "MPICH-GM"
    );
    for np in [2usize, 4, 8, 16, 32] {
        let w = workloads::direct2d::Direct2d::standard(np);
        let tcp = measure(&w, np, &NetworkModel::mpich(), None);
        let gm = measure(&w, np, &NetworkModel::mpich_gm(), None);
        println!(
            "{:>4} {:>9.2}x {:>9.2}x",
            np,
            tcp.speedup(),
            gm.speedup()
        );
    }
}

/// Ablation: sweep the per-byte CPU involvement β from RDMA-like (0) to
/// TCP-like (1×) and beyond — the overlap benefit collapses as the host
/// CPU touches more bytes, which is the paper's whole argument for RDMA
/// interconnects.
fn model_sweep() {
    hr("Ablation — speedup vs per-byte CPU involvement β (direct-2d, np=8)");
    let np = 8;
    let w = workloads::direct2d::Direct2d::standard(np);
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>16}",
        "β-scale", "orig", "prepush", "gain", "exposed-comm cut"
    );
    for scale in [0.0, 0.125, 0.25, 0.5, 1.0, 2.0] {
        let model = NetworkModel::mpich_with_beta_scaled(scale);
        let m = measure(&w, np, &model, None);
        println!(
            "{:>8.3} {:>12} {:>12} {:>7.2}x {:>15.1}x",
            scale,
            m.orig.to_string(),
            m.prepush.to_string(),
            m.speedup(),
            m.orig_exposed.as_ns() as f64 / m.prepush_exposed.as_ns().max(1) as f64,
        );
    }
}

/// Ablation: node loop outermost — legal interchange vs the congested
/// fallback (§3.5).
fn interchange() {
    hr("Ablation — node loop outermost: interchange vs per-column fallback");
    let np = 4;
    let interchangeable = "\
program main
  real :: as(4096, 4), ar(4096, 4)
  do it = 1, 4
    do iz = 1, 4
      do ix = 1, 4096
        as(ix, iz) = ix * iz + it
      end do
    end do
    call mpi_alltoall(as, 4096, ar)
  end do
end program";
    let blocked = "\
program main
  real :: as(4096, 4), ar(4096, 4), c(4100, 8)
  do it = 1, 4
    do iz = 1, 4
      do ix = 1, 4096
        c(ix, iz + 1) = c(ix + 1, iz) + 1
        as(ix, iz) = ix * iz + it
      end do
    end do
    call mpi_alltoall(as, 4096, ar)
  end do
end program";
    for (label, src) in [("interchange legal", interchangeable), ("interchange blocked", blocked)] {
        let program = fir::parse(src).unwrap();
        let out = transform(
            &program,
            &Options {
                context: Context::new().with("np", np as i64),
                ..Default::default()
            },
        )
        .unwrap();
        let model = NetworkModel::mpich_gm();
        let base = run_program(&program, np, &model).unwrap();
        let pre = run_program(&out.program, np, &model).unwrap();
        for rank in 0..np {
            assert_eq!(base.outputs[rank], pre.outputs[rank]);
        }
        let strategy = out.report.opportunities[0]
            .strategy
            .map(|s| s.to_string())
            .unwrap_or_default();
        println!(
            "{label:<22} strategy: {strategy:<34} orig {} -> prepush {} ({:.2}x)",
            base.report.makespan(),
            pre.report.makespan(),
            base.report.makespan().as_ns() as f64 / pre.report.makespan().as_ns() as f64
        );
    }
    println!(
        "\nthe legal interchange recovers the efficient Fig. 4 exchange; the \
         blocked case pays §3.5's congestion penalty but stays correct."
    );
}
