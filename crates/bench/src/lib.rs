//! # overlap-bench — experiment formatting shared by the `harness` binary
//! and the criterion benches.
//!
//! The measurement pipeline itself (transform → interp → clustersim, with
//! the §4 equivalence gate) lives in the [`driver`] crate so the sweep
//! executor and the bench layer share one implementation; this crate
//! re-exports it and keeps the figure-rendering helpers.

pub use clustersim::NetworkModel;
pub use clustersim::SimTime;
pub use driver::{measure, transform_workload, Measurement};

use driver::SweepRecord;
use workloads::Workload;

/// The four Figure-1 bars for one workload: {MPICH, MPICH-GM} × {orig,
/// prepush}, normalized to the best of the four.
pub struct Fig1Rows {
    pub rows: Vec<(String, SimTime, f64)>,
}

impl Fig1Rows {
    /// The four bars, normalized to the best of the four.
    fn from_times(tcp: (SimTime, SimTime), gm: (SimTime, SimTime)) -> Fig1Rows {
        let bars = [
            ("MPICH     Original", tcp.0),
            ("MPICH     Prepush", tcp.1),
            ("MPICH-GM  Original", gm.0),
            ("MPICH-GM  Prepush", gm.1),
        ];
        let best = bars
            .iter()
            .map(|(_, t)| *t)
            .min()
            .expect("four bars")
            .as_ns()
            .max(1) as f64;
        Fig1Rows {
            rows: bars
                .iter()
                .map(|(label, t)| (label.to_string(), *t, t.as_ns() as f64 / best))
                .collect(),
        }
    }

    /// Build the four bars from two `compare` sweep records of the same
    /// workload (one per stack).
    pub fn from_records(tcp: &SweepRecord, gm: &SweepRecord) -> Fig1Rows {
        let t = |ns: Option<u64>| {
            SimTime::from_ns(ns.expect("compare records carry both times"))
        };
        Fig1Rows::from_times(
            (t(tcp.orig_ns), t(tcp.prepush_ns)),
            (t(gm.orig_ns), t(gm.prepush_ns)),
        )
    }
}

/// Regenerate Figure 1 for a workload: normalized execution times.
pub fn figure1(w: &dyn Workload, np: usize) -> Fig1Rows {
    let tcp = measure(w, np, &NetworkModel::mpich(), None);
    let gm = measure(w, np, &NetworkModel::mpich_gm(), None);
    Fig1Rows::from_times((tcp.orig, tcp.prepush), (gm.orig, gm.prepush))
}

/// Render an ASCII bar chart in the style of the paper's Figure 1.
pub fn render_fig1(title: &str, rows: &Fig1Rows) -> String {
    let mut s = format!("{title}\n");
    let maxnorm = rows
        .rows
        .iter()
        .map(|(_, _, n)| *n)
        .fold(1.0f64, f64::max);
    for (label, t, norm) in &rows.rows {
        let width = ((norm / maxnorm) * 50.0).round() as usize;
        s.push_str(&format!(
            "  {label:<20} {:>12}  {norm:>5.2}  |{}\n",
            t.to_string(),
            "#".repeat(width.max(1))
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use driver::{run_sweep, ModelSpec, SizeClass, SweepGrid};

    #[test]
    fn measure_checks_equivalence_and_returns_times() {
        let w = workloads::direct2d::Direct2d::small(2);
        let m = measure(&w, 2, &NetworkModel::mpich_gm(), Some(8));
        assert!(m.orig > SimTime::ZERO);
        assert!(m.prepush > SimTime::ZERO);
        assert_eq!(m.np, 2);
        assert_eq!(m.tile_size, Some(8));
    }

    #[test]
    fn figure1_produces_four_normalized_bars() {
        let w = workloads::direct2d::Direct2d::small(2);
        let f = figure1(&w, 2);
        assert_eq!(f.rows.len(), 4);
        // Normalized values are >= 1 (normalized to the best bar).
        assert!(f.rows.iter().all(|(_, _, n)| *n >= 1.0));
        let txt = render_fig1("t", &f);
        assert!(txt.contains("MPICH-GM"));
        assert!(txt.contains('#'));
    }

    #[test]
    fn fig1_rows_from_sweep_records_match_direct_measurement() {
        let grid = SweepGrid::new()
            .workloads(["direct2d"])
            .size(SizeClass::Small)
            .nps([2])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm]);
        let result = run_sweep(&grid, 1);
        let from_sweep = Fig1Rows::from_records(&result.records[0], &result.records[1]);
        let direct = figure1(&workloads::direct2d::Direct2d::small(2), 2);
        for (a, b) in from_sweep.rows.iter().zip(direct.rows.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
        }
    }
}
