//! # overlap-bench — experiment harness shared by the `harness` binary and
//! the criterion benches.
//!
//! One experiment = (workload, rank count, network model, variant). The
//! runner transforms once, executes both variants, checks output
//! equivalence as a side effect (a benchmark that computes the wrong
//! answer is worthless), and returns the virtual-time figures the paper's
//! tables/figures are built from.

use compuniformer::{transform, Options, TransformOutput, UserOracle};
use interp::run_program;
use workloads::Workload;

pub use clustersim::NetworkModel;
pub use clustersim::SimTime;

/// Measured figures for one (workload, model) pair.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub workload: &'static str,
    pub model: &'static str,
    pub np: usize,
    pub tile_size: Option<i64>,
    pub orig: SimTime,
    pub prepush: SimTime,
    pub orig_exposed: SimTime,
    pub prepush_exposed: SimTime,
}

impl Measurement {
    pub fn speedup(&self) -> f64 {
        self.orig.as_ns() as f64 / self.prepush.as_ns().max(1) as f64
    }
}

/// Transform a workload with the model-informed K heuristic.
pub fn transform_workload(
    w: &dyn Workload,
    model: &NetworkModel,
    tile_size: Option<i64>,
) -> TransformOutput {
    let opts = Options {
        tile_size,
        context: w.context(),
        oracle: UserOracle::AssumeSafe,
        kselect_overhead_ns: Some(model.overhead.as_ns() as f64),
        kselect_cpu_ns_per_byte: Some(model.cpu_send_ns_per_byte),
        kselect_wire_ns_per_byte: Some(model.gap_ns_per_byte),
        ..Default::default()
    };
    transform(&w.program(), &opts)
        .unwrap_or_else(|e| panic!("workload `{}` must transform: {e}", w.name()))
}

/// Run original + transformed under `model`, verify equivalence, measure.
pub fn measure(
    w: &dyn Workload,
    np: usize,
    model: &NetworkModel,
    tile_size: Option<i64>,
) -> Measurement {
    let program = w.program();
    let out = transform_workload(w, model, tile_size);

    let base = run_program(&program, np, model)
        .unwrap_or_else(|e| panic!("`{}` original failed: {e}", w.name()));
    let pre = run_program(&out.program, np, model)
        .unwrap_or_else(|e| panic!("`{}` transformed failed: {e}", w.name()));

    // Equivalence gate (§4): benchmarks must compute identical answers.
    let excluded = out.report.incomparable_arrays();
    for rank in 0..np {
        for name in w.output_arrays() {
            if excluded.contains(&name.as_str()) {
                continue;
            }
            assert_eq!(
                base.outputs[rank].arrays.get(&name),
                pre.outputs[rank].arrays.get(&name),
                "`{}` rank {rank} array `{name}` differs",
                w.name()
            );
        }
    }

    Measurement {
        workload: w.name(),
        model: model.name,
        np,
        tile_size: out.report.opportunities.iter().find_map(|o| o.tile_size),
        orig: base.report.makespan(),
        prepush: pre.report.makespan(),
        orig_exposed: base.report.max_exposed_comm(),
        prepush_exposed: pre.report.max_exposed_comm(),
    }
}

/// The four Figure-1 bars for one workload: {MPICH, MPICH-GM} × {orig,
/// prepush}, normalized to the best of the four.
pub struct Fig1Rows {
    pub rows: Vec<(String, SimTime, f64)>,
}

/// Regenerate Figure 1 for a workload: normalized execution times.
pub fn figure1(w: &dyn Workload, np: usize) -> Fig1Rows {
    let tcp = measure(w, np, &NetworkModel::mpich(), None);
    let gm = measure(w, np, &NetworkModel::mpich_gm(), None);
    let best = [tcp.orig, tcp.prepush, gm.orig, gm.prepush]
        .into_iter()
        .min()
        .expect("four bars")
        .as_ns()
        .max(1) as f64;
    let rows = vec![
        ("MPICH     Original".to_string(), tcp.orig, tcp.orig.as_ns() as f64 / best),
        ("MPICH     Prepush".to_string(), tcp.prepush, tcp.prepush.as_ns() as f64 / best),
        ("MPICH-GM  Original".to_string(), gm.orig, gm.orig.as_ns() as f64 / best),
        ("MPICH-GM  Prepush".to_string(), gm.prepush, gm.prepush.as_ns() as f64 / best),
    ];
    Fig1Rows { rows }
}

/// Render an ASCII bar chart in the style of the paper's Figure 1.
pub fn render_fig1(title: &str, rows: &Fig1Rows) -> String {
    let mut s = format!("{title}\n");
    let maxnorm = rows
        .rows
        .iter()
        .map(|(_, _, n)| *n)
        .fold(1.0f64, f64::max);
    for (label, t, norm) in &rows.rows {
        let width = ((norm / maxnorm) * 50.0).round() as usize;
        s.push_str(&format!(
            "  {label:<20} {:>12}  {norm:>5.2}  |{}\n",
            t.to_string(),
            "#".repeat(width.max(1))
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_checks_equivalence_and_returns_times() {
        let w = workloads::direct2d::Direct2d::small(2);
        let m = measure(&w, 2, &NetworkModel::mpich_gm(), Some(8));
        assert!(m.orig > SimTime::ZERO);
        assert!(m.prepush > SimTime::ZERO);
        assert_eq!(m.np, 2);
        assert_eq!(m.tile_size, Some(8));
    }

    #[test]
    fn figure1_produces_four_normalized_bars() {
        let w = workloads::direct2d::Direct2d::small(2);
        let f = figure1(&w, 2);
        assert_eq!(f.rows.len(), 4);
        // Normalized values are >= 1 (normalized to the best bar).
        assert!(f.rows.iter().all(|(_, _, n)| *n >= 1.0));
        let txt = render_fig1("t", &f);
        assert!(txt.contains("MPICH-GM"));
        assert!(txt.contains('#'));
    }
}
