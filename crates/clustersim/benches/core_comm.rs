//! Criterion micro-bench for the sharded simulator core: isend/recv
//! ping-pong and alltoall rendezvous at np {8, 32}. This is the verify
//! gate's perf smoke — it exercises exactly the paths the sharded state
//! and the rank pool rebuilt (per-pair mailboxes, per-rank condvars,
//! pooled rank threads) so a contention regression shows up as wall-clock
//! here before it shows up as a slow sweep.

use clustersim::{Bytes, Cluster, NetworkModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Neighbouring ranks exchange `rounds` paired isend/irecv ping-pongs.
fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("core/pingpong");
    g.sample_size(10);
    for np in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("rounds=64", np), &np, |b, &np| {
            b.iter(|| {
                let cluster = Cluster::new(np, NetworkModel::mpich_gm());
                let out = cluster
                    .run(|comm| {
                        let me = comm.rank();
                        let np = comm.np();
                        let peer = me ^ 1;
                        for round in 0..64 {
                            if peer < np {
                                comm.isend(peer, round, Bytes::from(vec![me as u8; 256]));
                                let id = comm.irecv(peer, round);
                                comm.wait_recv(id);
                                comm.wait_all();
                            }
                        }
                        comm.now()
                    })
                    .unwrap();
                black_box(out.report.makespan())
            });
        });
    }
    g.finish();
}

/// Full alltoall rendezvous: every rank contributes and collects per-peer
/// payloads — the collective slot + per-rank NIC bump path.
fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("core/alltoall");
    g.sample_size(10);
    for np in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("rounds=16", np), &np, |b, &np| {
            b.iter(|| {
                let cluster = Cluster::new(np, NetworkModel::mpich_gm());
                let out = cluster
                    .run(|comm| {
                        for _ in 0..16 {
                            let payloads: Vec<Bytes> = (0..comm.np())
                                .map(|_| Bytes::from(vec![1u8; 256]))
                                .collect();
                            comm.alltoall(payloads);
                        }
                        comm.now()
                    })
                    .unwrap();
                black_box(out.report.makespan())
            });
        });
    }
    g.finish();
}

criterion_group!(core_comm, bench_pingpong, bench_alltoall);
criterion_main!(core_comm);
