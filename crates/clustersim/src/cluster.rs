//! The cluster runner. Two execution engines share one accounting core:
//!
//! - [`Cluster::run`] — thread-per-rank: one task per simulated rank on the
//!   persistent [`crate::pool`] (rank 0 on the calling thread, the rest on
//!   reusable pool workers), ranks block on condvars. Kept as the
//!   differential reference, the way `single_lock_reference` preserves the
//!   historical state backend.
//! - [`Cluster::run_resumable`] — M worker threads drive `np`
//!   [`RankMachine`]s through a runnable queue ([`crate::sched`]); a rank
//!   that cannot progress parks its *state*, not an OS thread, so any `np`
//!   runs on a fixed worker count.
//!
//! Both produce byte-identical results, statistics, and traces (pinned by
//! the differential suites; argument in DESIGN.md §3).

use crate::comm::Comm;
use crate::model::NetworkModel;
use crate::pool;
use crate::sched::{ParkOutcome, RankSched};
use crate::state::{Shared, WakeEvent};
use crate::stats::{RankStats, Report};
use crate::trace::{Event, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Errors surfaced by a simulated run.
#[derive(Debug)]
pub enum SimError {
    /// A rank panicked (simulated deadlock, program bug, interpreter error).
    RankPanic { rank: usize, message: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a completed run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    pub report: Report,
    /// Present when the cluster was built with tracing enabled.
    pub trace: Option<Trace>,
}

/// One quantum of resumable-rank progress.
pub enum Step<R> {
    /// The rank hit a blocking point whose condition isn't met yet; park it
    /// and re-step when a wake arrives.
    Blocked,
    /// The rank ran to completion.
    Done(R),
}

/// A rank as a resumable state machine: `step` runs until the program
/// either finishes or reaches a communication point that cannot progress
/// (an unmatched wait, an incomplete collective). The machine owns all
/// suspended execution state — frames, pc, pending operations — and `step`
/// is re-entered with the same `Comm` after a wake.
///
/// Contract: a `Blocked` return must leave the rank's virtual clock
/// untouched relative to the eventual completion — i.e. polling must be
/// free. The `Comm` poll methods guarantee this by construction.
pub trait RankMachine {
    type Out: Send;
    fn step(&mut self, comm: &mut Comm) -> Step<Self::Out>;
}

/// A simulated cluster: `np` ranks over one [`NetworkModel`].
pub struct Cluster {
    np: usize,
    model: NetworkModel,
    traced: bool,
    single_lock: bool,
}

impl Cluster {
    pub fn new(np: usize, model: NetworkModel) -> Self {
        assert!(np >= 1, "cluster needs at least one rank");
        Cluster {
            np,
            model,
            traced: false,
            single_lock: false,
        }
    }

    /// Enable event tracing (costs memory; intended for tests/debugging).
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Use the historical single-global-lock state backend instead of the
    /// sharded one. Virtual times are identical by construction; this
    /// exists so differential tests can prove it.
    pub fn single_lock_reference(mut self) -> Self {
        self.single_lock = true;
        self
    }

    pub fn np(&self) -> usize {
        self.np
    }

    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Run `f` once per rank — rank 0 on the calling thread, ranks 1..np
    /// on persistent pool workers — and gather everything. `f` receives a
    /// mutable [`Comm`] endpoint.
    pub fn run<R, F>(&self, f: F) -> Result<RunOutput<R>, SimError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let shared = Arc::new(if self.single_lock {
            Shared::new_single_lock(self.np, self.model.clone())
        } else {
            Shared::new(self.np, self.model.clone())
        });
        let f = &f;
        let traced = self.traced;

        let slots: Vec<Mutex<Option<Result<_, SimError>>>> =
            (0..self.np).map(|_| Mutex::new(None)).collect();

        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..self.np)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                let slots = &slots;
                Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut comm = Comm::new(shared, rank, traced);
                        let result = f(&mut comm);
                        let (stats, events) = comm.finish();
                        (result, stats, events)
                    }));
                    *slots[rank].lock().unwrap() = Some(outcome.map_err(|payload| {
                        SimError::RankPanic {
                            rank,
                            message: panic_message(payload),
                        }
                    }));
                }) as _
            })
            .collect();
        pool::scope_ranks(tasks);

        let slots: Vec<Option<Result<_, SimError>>> = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap())
            .collect();
        gather(self.np, traced, slots)
    }

    /// Run `np` resumable rank machines on a bounded worker set. `mk`
    /// constructs each rank's machine (called on the calling thread, in
    /// rank order). `workers` caps the drivers; `None` means
    /// `min(np, available cores)`. The calling thread always participates,
    /// and extra drivers join only as non-blocking pool tickets allow — so
    /// a run makes progress with zero tickets and never waits on admission.
    ///
    /// Worker count and host scheduling cannot change any result byte:
    /// see `sched.rs` module docs and DESIGN.md §3.
    pub fn run_resumable<M, F>(
        &self,
        workers: Option<usize>,
        mk: F,
    ) -> Result<RunOutput<M::Out>, SimError>
    where
        M: RankMachine + Send,
        F: Fn(&mut Comm) -> M,
    {
        let shared = Arc::new(if self.single_lock {
            Shared::new_single_lock(self.np, self.model.clone())
        } else {
            Shared::new(self.np, self.model.clone())
        });
        let sched = Arc::new(RankSched::new(self.np));
        {
            let sched = Arc::clone(&sched);
            shared.set_waker(Arc::new(move |ev| match ev {
                WakeEvent::One(rank) => sched.wake(rank),
                WakeEvent::All => sched.wake_all(),
            }));
        }

        struct RankCell<M> {
            machine: M,
            comm: Comm,
        }
        // One cell per rank. The scheduler hands a rank to exactly one
        // worker at a time, so these locks are uncontended; they exist to
        // move ownership soundly between workers.
        let cells: Vec<Mutex<Option<RankCell<M>>>> = (0..self.np)
            .map(|rank| {
                let mut comm = Comm::new(Arc::clone(&shared), rank, self.traced);
                let machine = mk(&mut comm);
                Mutex::new(Some(RankCell { machine, comm }))
            })
            .collect();
        type Slot<R> = Mutex<Option<Result<(R, RankStats, Vec<Event>), SimError>>>;
        let slots: Vec<Slot<M::Out>> = (0..self.np).map(|_| Mutex::new(None)).collect();

        let worker = || {
            while let Some(rank) = sched.next() {
                let mut guard = cells[rank]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let cell = guard.as_mut().expect("scheduled rank has a live machine");
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    match cell.machine.step(&mut cell.comm) {
                        Step::Done(out) => {
                            let (stats, events) = cell.comm.finish();
                            Some((out, stats, events))
                        }
                        Step::Blocked => None,
                    }
                }));
                match stepped {
                    Ok(None) => {
                        drop(guard);
                        if sched.park(rank) == ParkOutcome::Deadlock {
                            // Quiescence: nothing queued, nothing running,
                            // live ranks remain. Requeue them all; each
                            // aborts at its next poll with a diagnostic.
                            shared.mark_deadlocked();
                        }
                    }
                    Ok(Some(done)) => {
                        *slots[rank]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Ok(done));
                        guard.take();
                        drop(guard);
                        if sched.done(rank) {
                            // This rank's exit quiesced the cluster with
                            // peers still parked: they wait on messages
                            // that will now never arrive.
                            shared.mark_deadlocked();
                        }
                    }
                    Err(payload) => {
                        // The worker thread itself isn't unwinding, so the
                        // Comm drop can't poison for us — do it explicitly
                        // to abort peers (which also wakes parked ranks).
                        shared.poison();
                        *slots[rank]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some(Err(SimError::RankPanic {
                                rank,
                                message: panic_message(payload),
                            }));
                        guard.take();
                        drop(guard);
                        // `poison()` above already woke every parked rank
                        // to abort, so a quiescing exit needs no separate
                        // deadlock wake here.
                        let _ = sched.done(rank);
                    }
                }
            }
        };

        // The caller always drives; extra workers join only as free tickets
        // allow (never blocking on admission — oversize grids keep moving).
        let want = workers
            .unwrap_or_else(|| default_workers(self.np))
            .clamp(1, self.np.max(1));
        let tickets = pool::Tickets::try_acquire_up_to(want - 1);
        let helpers = tickets.granted();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            (0..helpers + 1).map(|_| Box::new(&worker) as _).collect();
        pool::scope_helpers(tasks);
        drop(tickets);

        let slots: Vec<Option<Result<_, SimError>>> = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect();
        gather(self.np, self.traced, slots)
    }
}

/// Default driver count for resumable runs: one per core, never more than
/// ranks. With the sweep executor running scenarios in parallel, scenario-
/// level concurrency usually saturates the machine already.
fn default_workers(np: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(np)
        .max(1)
}

/// Collect per-rank slots into a [`RunOutput`], preferring the root-cause
/// error over secondary "aborted: another rank failed" panics from
/// poisoned peers.
#[allow(clippy::type_complexity)]
fn gather<R>(
    np: usize,
    traced: bool,
    slots: Vec<Option<Result<(R, RankStats, Vec<Event>), SimError>>>,
) -> Result<RunOutput<R>, SimError> {
    if slots.iter().any(|s| matches!(s, Some(Err(_)))) {
        let mut fallback = None;
        for slot in slots {
            if let Some(Err(e)) = slot {
                let SimError::RankPanic { message, .. } = &e;
                if !message.contains("aborted: another rank failed") {
                    return Err(e);
                }
                fallback.get_or_insert(e);
            }
        }
        return Err(fallback.expect("checked an error exists"));
    }

    let mut results = Vec::with_capacity(np);
    let mut report = Report::default();
    let mut traces = Vec::with_capacity(np);
    for slot in slots {
        let (result, stats, events) = slot.expect("every rank joined")?;
        results.push(result);
        report.per_rank.push(stats);
        traces.push(events);
    }
    Ok(RunOutput {
        results,
        report,
        trace: traced.then(|| Trace::merged(traces)),
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use bytes::Bytes;

    #[test]
    fn single_rank_compute_only() {
        let cluster = Cluster::new(1, NetworkModel::mpich_gm());
        let out = cluster
            .run(|comm| {
                comm.advance(1000.0);
                comm.now()
            })
            .unwrap();
        assert_eq!(out.results[0], SimTime(1000));
        assert_eq!(out.report.per_rank[0].compute, SimTime(1000));
        assert_eq!(out.report.makespan(), SimTime(1000));
    }

    #[test]
    fn ping_message_arrives_with_latency() {
        let model = NetworkModel::mpich_gm();
        let l = model.latency;
        let wire = model.wire(8);
        let send_cpu = model.send_cpu(8);
        let cluster = Cluster::new(2, model);
        let out = cluster
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.isend(1, 7, Bytes::from(vec![42u8; 8]));
                    comm.wait_all();
                } else {
                    let id = comm.irecv(0, 7);
                    let data = comm.wait_recv(id);
                    assert_eq!(data.len(), 8);
                }
                comm.now()
            })
            .unwrap();
        // Receiver: irecv overhead happens immediately; message ready at
        // send_cpu + wire + latency (receiver NIC idle). Arrival dominates.
        let ready = send_cpu + wire + l;
        let expect = ready.max(NetworkModel::mpich_gm().overhead)
            + NetworkModel::mpich_gm().recv_cpu(8);
        assert_eq!(out.results[1], expect);
        assert!(out.report.per_rank[1].blocked > SimTime::ZERO);
    }

    #[test]
    fn overlap_hides_transfer_on_rdma() {
        // Sender computes 10ms after isend of 1MB; under GM the wire time
        // (~4ms) hides entirely within compute. Receiver also computes 10ms
        // before waiting: arrival should already have happened.
        let model = NetworkModel::mpich_gm();
        let cluster = Cluster::new(2, model.clone());
        let out = cluster
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.isend(1, 0, Bytes::from(vec![0u8; 1_000_000]));
                    comm.advance(10_000_000.0); // 10 ms
                    comm.wait_all();
                } else {
                    let id = comm.irecv(0, 0);
                    comm.advance(10_000_000.0);
                    comm.wait_recv(id);
                }
                comm.now()
            })
            .unwrap();
        let r1 = &out.report.per_rank[1];
        // Blocked time ≈ 0: the transfer was fully overlapped.
        assert!(
            r1.blocked < SimTime::from_us(300),
            "blocked = {}",
            r1.blocked
        );
        // And the total is compute-dominated.
        assert!(r1.finish < SimTime::from_ms(11));
    }

    #[test]
    fn no_overlap_under_tcp_per_byte_costs() {
        // Same pattern under MPICH: β·1MB = 8ms of CPU on each side that
        // cannot be hidden.
        let cluster = Cluster::new(2, NetworkModel::mpich());
        let out = cluster
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.isend(1, 0, Bytes::from(vec![0u8; 1_000_000]));
                    comm.advance(10_000_000.0);
                    comm.wait_all();
                } else {
                    let id = comm.irecv(0, 0);
                    comm.advance(10_000_000.0);
                    comm.wait_recv(id);
                }
                comm.now()
            })
            .unwrap();
        // Receiver pays ~8ms of recv CPU on top of 10ms compute.
        let r1 = &out.report.per_rank[1];
        assert!(r1.comm_cpu > SimTime::from_ms(7), "comm_cpu = {}", r1.comm_cpu);
        assert!(r1.finish > SimTime::from_ms(17), "finish = {}", r1.finish);
    }

    #[test]
    fn alltoall_exchanges_data_and_synchronizes() {
        let cluster = Cluster::new(4, NetworkModel::mpich_gm());
        let out = cluster
            .run(|comm| {
                let me = comm.rank() as u8;
                let payloads: Vec<Bytes> = (0..4)
                    .map(|dst| Bytes::from(vec![me * 10 + dst as u8; 4]))
                    .collect();
                let got = comm.alltoall(payloads);
                got.iter().map(|b| b[0]).collect::<Vec<u8>>()
            })
            .unwrap();
        // Rank 2 receives from src s the value s*10 + 2.
        assert_eq!(out.results[2], vec![2, 12, 22, 32]);
        // All ranks finish at the same time (symmetric collective).
        let t0 = out.report.per_rank[0].finish;
        assert!(out.report.per_rank.iter().all(|r| r.finish == t0));
        assert_eq!(out.report.per_rank[0].alltoalls, 1);
    }

    #[test]
    fn alltoall_completion_matches_model_formula() {
        let model = NetworkModel::mpich();
        let np = 4;
        let s = 1000usize;
        let cluster = Cluster::new(np, model.clone());
        let out = cluster
            .run(|comm| {
                let payloads: Vec<Bytes> =
                    (0..4).map(|_| Bytes::from(vec![0u8; s])).collect();
                comm.alltoall(payloads);
                comm.now()
            })
            .unwrap();
        let per_pair = model.send_cpu(s) + model.recv_cpu(s) + model.wire(s);
        let expect = SimTime(per_pair.as_ns() * (np as u64 - 1)) + model.latency;
        assert_eq!(out.results[0], expect);
    }

    #[test]
    fn barrier_aligns_ranks() {
        let cluster = Cluster::new(3, NetworkModel::mpich_gm());
        let out = cluster
            .run(|comm| {
                comm.advance((comm.rank() as f64 + 1.0) * 1000.0);
                comm.barrier();
                comm.now()
            })
            .unwrap();
        let expect = SimTime(3000) + NetworkModel::mpich_gm().overhead;
        assert!(out.results.iter().all(|&t| t == expect));
        assert_eq!(out.report.per_rank[0].barriers, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let cluster = Cluster::new(4, NetworkModel::mpich());
            cluster
                .run(|comm| {
                    let me = comm.rank();
                    let np = comm.np();
                    for j in 1..np {
                        let to = (me + j) % np;
                        comm.isend(to, j as i64, Bytes::from(vec![me as u8; 256]));
                        let from = (np + me - j) % np;
                        comm.irecv(from, j as i64);
                    }
                    comm.advance(50_000.0);
                    comm.wait_all();
                    comm.now()
                })
                .unwrap()
        };
        let a = run();
        let b = run();
        let fa: Vec<_> = a.report.per_rank.iter().map(|r| r.finish).collect();
        let fb: Vec<_> = b.report.per_rank.iter().map(|r| r.finish).collect();
        assert_eq!(fa, fb);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn rank_panic_is_reported() {
        let cluster = Cluster::new(2, NetworkModel::mpich_gm());
        let err = cluster
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("boom at rank 1");
                }
                comm.barrier_free_noop();
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("boom"));
            }
        }
    }

    impl Comm {
        fn barrier_free_noop(&mut self) {}
    }

    #[test]
    fn trace_records_send_and_recv() {
        let cluster = Cluster::new(2, NetworkModel::mpich_gm()).traced();
        let out = cluster
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.isend(1, 3, Bytes::from(vec![1u8; 16]));
                    comm.wait_all();
                } else {
                    let id = comm.irecv(0, 3);
                    comm.wait_recv(id);
                }
            })
            .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(
            trace.count(|e| matches!(e.kind, crate::trace::EventKind::SendPosted { .. })),
            1
        );
        assert_eq!(
            trace.count(
                |e| matches!(e.kind, crate::trace::EventKind::RecvMatched { .. })
            ),
            1
        );
    }

    #[test]
    fn unmatched_recv_at_finish_panics_rank() {
        let cluster = Cluster::new(2, NetworkModel::mpich_gm());
        let err = cluster
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.isend(1, 9, Bytes::from(vec![0u8; 4]));
                    comm.wait_all();
                } else {
                    // irecv posted, never waited.
                    comm.irecv(0, 9);
                }
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("unmatched receives"));
            }
        }
    }
}
