//! The per-rank communication endpoint.
//!
//! A [`Comm`] owns its rank's virtual clock. Computation advances it via
//! [`Comm::advance`]; communication calls combine CPU costs (charged to the
//! clock) with NIC bookings in the shared state. The API mirrors the
//! simplified MPI surface of the mini language:
//!
//! | mini-Fortran        | Comm method        |
//! |---------------------|--------------------|
//! | `mpi_isend`         | [`Comm::isend`]    |
//! | `mpi_irecv`         | [`Comm::irecv`]    |
//! | `mpi_waitall_recv`  | [`Comm::wait_all_recvs`] |
//! | `mpi_waitall`       | [`Comm::wait_all`] |
//! | `mpi_alltoall`      | [`Comm::alltoall`] |
//! | `mpi_barrier`       | [`Comm::barrier`]  |

use crate::message::{InFlight, MsgKey};
use crate::model::NetworkModel;
use crate::state::{CollectiveKind, Shared};
use crate::stats::RankStats;
use crate::time::SimTime;
use crate::trace::{Event, EventKind};
use bytes::Bytes;
use std::sync::Arc;

/// Handle returned by [`Comm::irecv`], redeemed at wait time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecvId(pub usize);

#[derive(Debug, Clone)]
struct PendingRecv {
    id: RecvId,
    key: MsgKey,
}

/// A collective this rank has joined (`*_begin`) but not yet completed —
/// the saved inputs the matching `poll_*` needs to reproduce the blocking
/// path's post-completion accounting bit-for-bit.
struct PendingColl {
    kind: CollectiveKind,
    idx: u64,
    entry: SimTime,
    bytes_per: usize,
}

/// One rank's endpoint into the simulated cluster.
pub struct Comm {
    shared: Arc<Shared>,
    rank: usize,
    clock: SimTime,
    next_recv_id: usize,
    pending_recvs: Vec<PendingRecv>,
    /// NIC-done times of sends not yet waited on.
    outstanding_sends: Vec<SimTime>,
    collective_idx: u64,
    /// Collective joined but not yet completed (resumable mode only).
    pending_coll: Option<PendingColl>,
    stats: RankStats,
    trace: Option<Vec<Event>>,
}

impl Comm {
    pub(crate) fn new(shared: Arc<Shared>, rank: usize, traced: bool) -> Self {
        Comm {
            shared,
            rank,
            clock: SimTime::ZERO,
            next_recv_id: 0,
            pending_recvs: Vec::new(),
            outstanding_sends: Vec::new(),
            collective_idx: 0,
            pending_coll: None,
            stats: RankStats {
                rank,
                ..Default::default()
            },
            trace: traced.then(Vec::new),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn np(&self) -> usize {
        self.shared.np
    }

    pub fn model(&self) -> &NetworkModel {
        &self.shared.model
    }

    /// Current virtual time at this rank.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    fn emit(&mut self, kind: EventKind) {
        if let Some(tr) = &mut self.trace {
            tr.push(Event {
                rank: self.rank,
                t: self.clock,
                kind,
            });
        }
    }

    /// Charge `ns` nanoseconds of computation to this rank.
    pub fn advance(&mut self, ns: f64) {
        let dt = SimTime::from_ns_f64(ns);
        self.clock += dt;
        self.stats.compute += dt;
        self.emit(EventKind::Compute { ns: dt.as_ns() });
    }

    /// Charge an already-rounded computation span to this rank. Callers
    /// that pre-aggregate many per-statement charges (the interpreter's
    /// block-summarized cost accounting) must round each charge first —
    /// integer addition is associative, so the summed clock is
    /// byte-identical to making the individual [`Comm::advance`] calls.
    pub fn advance_exact(&mut self, dt: SimTime) {
        self.clock += dt;
        self.stats.compute += dt;
        self.emit(EventKind::Compute { ns: dt.as_ns() });
    }

    /// Non-blocking send. CPU pays `o + β_s·S`; the NIC takes over.
    ///
    /// Returns the virtual time at which the NIC finishes reading the
    /// buffer — after this instant the application may safely overwrite it
    /// (the interpreter's buffer-reuse detector uses exactly this bound).
    pub fn isend(&mut self, dst: usize, tag: i64, payload: Bytes) -> SimTime {
        assert!(dst < self.np(), "isend to rank {dst} of {}", self.np());
        assert_ne!(dst, self.rank, "isend to self is not modeled; copy locally");
        let n = payload.len();
        let cpu = self.shared.model.send_cpu_at(self.rank, self.shared.np, n);
        self.clock += cpu;
        self.stats.comm_cpu += cpu;

        let (_depart, nic_done) = self.shared.book_send_nic(self.rank, self.clock, n);
        let ready_at = nic_done + self.shared.model.latency;
        self.outstanding_sends.push(nic_done);
        self.stats.bytes_sent += n as u64;
        self.stats.msgs_sent += 1;
        self.emit(EventKind::SendPosted {
            dst,
            tag,
            nbytes: n,
            nic_done,
            ready_at,
        });
        self.shared.deposit(
            MsgKey {
                src: self.rank,
                dst,
                tag,
            },
            InFlight { ready_at, payload },
        );
        nic_done
    }

    /// Post a non-blocking receive; costs one overhead `o` now.
    pub fn irecv(&mut self, src: usize, tag: i64) -> RecvId {
        assert!(src < self.np(), "irecv from rank {src} of {}", self.np());
        let id = RecvId(self.next_recv_id);
        self.next_recv_id += 1;
        let overhead = self.shared.model.overhead_at(self.rank, self.shared.np);
        self.clock += overhead;
        self.stats.comm_cpu += overhead;
        self.pending_recvs.push(PendingRecv {
            id,
            key: MsgKey {
                src,
                dst: self.rank,
                tag,
            },
        });
        self.emit(EventKind::RecvPosted { src, tag });
        id
    }

    /// Block until the message for `id` arrives; returns its payload.
    pub fn wait_recv(&mut self, id: RecvId) -> Bytes {
        let pos = self
            .pending_recvs
            .iter()
            .position(|p| p.id == id)
            .expect("wait_recv on unknown or already-completed RecvId");
        let pending = self.pending_recvs.remove(pos);
        let (arrival, payload) = self.shared.match_one(pending.key);
        self.absorb_arrival(arrival, pending.key, &payload);
        payload
    }

    /// Wait for *all* posted receives; returns (id, payload) in post order.
    ///
    /// This is `mpi_waitall_recv` — the call the transformation inserts at
    /// the top of each tile to drain the previous tile's receives (paper
    /// §3.6 step 2).
    pub fn wait_all_recvs(&mut self) -> Vec<(RecvId, Bytes)> {
        if self.pending_recvs.is_empty() {
            return Vec::new();
        }
        let pendings = std::mem::take(&mut self.pending_recvs);
        let keys: Vec<MsgKey> = pendings.iter().map(|p| p.key).collect();
        let matched = self.shared.match_all(self.rank, &keys);
        let mut out = Vec::with_capacity(pendings.len());
        for (p, (arrival, payload)) in pendings.into_iter().zip(matched) {
            self.absorb_arrival(arrival, p.key, &payload);
            out.push((p.id, payload));
        }
        out
    }

    fn absorb_arrival(&mut self, arrival: SimTime, key: MsgKey, payload: &Bytes) {
        let n = payload.len();
        if arrival > self.clock {
            self.stats.blocked += arrival - self.clock;
            self.clock = arrival;
        }
        let cpu = self.shared.model.recv_cpu_at(self.rank, self.shared.np, n);
        self.clock += cpu;
        self.stats.comm_cpu += cpu;
        self.stats.bytes_recv += n as u64;
        self.stats.msgs_recv += 1;
        self.emit(EventKind::RecvMatched {
            src: key.src,
            tag: key.tag,
            nbytes: n,
            arrival,
        });
    }

    /// Non-blocking [`Comm::wait_all_recvs`]: complete all posted receives
    /// if every one of them already has a message, else `None` with nothing
    /// consumed. On success the matching, NIC serialization, clock jump,
    /// stats, and trace events are the blocking path's own code on the same
    /// inputs — and since a parked rank's clock does not move, the values
    /// are byte-identical no matter how many polls returned `None` first.
    pub fn poll_wait_all_recvs(&mut self) -> Option<Vec<(RecvId, Bytes)>> {
        self.shared
            .check_aborts(self.rank, "waiting for posted receives");
        if self.pending_recvs.is_empty() {
            return Some(Vec::new());
        }
        let keys: Vec<MsgKey> = self.pending_recvs.iter().map(|p| p.key).collect();
        let matched = self.shared.try_match_all(self.rank, &keys)?;
        let pendings = std::mem::take(&mut self.pending_recvs);
        let mut out = Vec::with_capacity(pendings.len());
        for (p, (arrival, payload)) in pendings.into_iter().zip(matched) {
            self.absorb_arrival(arrival, p.key, &payload);
            out.push((p.id, payload));
        }
        Some(out)
    }

    /// Drain all outstanding sends (NIC done — buffers reusable): the send
    /// half of `mpi_waitall`. Purely local — the drain times were fixed at
    /// `isend` time — so it never blocks and needs no poll counterpart.
    pub fn drain_sends(&mut self) {
        let drained = self
            .outstanding_sends
            .drain(..)
            .fold(SimTime::ZERO, SimTime::max);
        if drained > self.clock {
            self.stats.blocked += drained - self.clock;
            self.clock = drained;
        }
        self.emit(EventKind::SendsDrained { until: drained });
    }

    /// Wait for all outstanding sends (NIC drained — buffers reusable) and
    /// all posted receives. This is `mpi_waitall`.
    pub fn wait_all(&mut self) -> Vec<(RecvId, Bytes)> {
        let out = self.wait_all_recvs();
        self.drain_sends();
        out
    }

    /// Join an alltoall: fixes the entry clock and sequence index, registers
    /// the payloads, and remembers what the completion accounting needs.
    /// Shared by the blocking [`Comm::alltoall`] and the resumable
    /// [`Comm::poll_alltoall`], so both attribute identical costs.
    pub fn alltoall_begin(&mut self, payload_per_dst: Vec<Bytes>) {
        assert!(
            self.pending_coll.is_none(),
            "collective already in flight on rank {}",
            self.rank
        );
        assert_eq!(
            payload_per_dst.len(),
            self.np(),
            "alltoall needs one payload per rank"
        );
        let bytes_per = payload_per_dst
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != self.rank)
            .map(|(_, b)| b.len())
            .max()
            .unwrap_or(0);
        let entry = self.clock;
        let idx = self.collective_idx;
        self.collective_idx += 1;
        self.shared.collective_begin(
            CollectiveKind::Alltoall,
            idx,
            self.rank,
            entry,
            payload_per_dst,
        );
        self.pending_coll = Some(PendingColl {
            kind: CollectiveKind::Alltoall,
            idx,
            entry,
            bytes_per,
        });
    }

    /// Post-completion accounting for an alltoall: the CPU part of this
    /// rank's own pairwise exchanges is comm_cpu; the rest of the jump is
    /// blocked.
    fn absorb_alltoall(&mut self, entry: SimTime, bytes_per: usize, completion: SimTime) {
        let np = self.np() as u64;
        let per_pair = self.shared.model.send_cpu_at(self.rank, self.shared.np, bytes_per)
            + self.shared.model.recv_cpu_at(self.rank, self.shared.np, bytes_per);
        let cpu_part = SimTime(per_pair.as_ns() * (np - 1));
        let total_jump = completion.saturating_sub(entry);
        let cpu_part = SimTime(cpu_part.as_ns().min(total_jump.as_ns()));
        self.stats.comm_cpu += cpu_part;
        self.stats.blocked += total_jump - cpu_part;
        self.clock = completion.max(self.clock);
        self.stats.alltoalls += 1;
        let traffic = bytes_per as u64 * (np - 1);
        self.stats.bytes_sent += traffic;
        self.stats.bytes_recv += traffic;
        self.stats.msgs_sent += np - 1;
        self.stats.msgs_recv += np - 1;
        self.emit(EventKind::Alltoall {
            bytes_per_partner: bytes_per,
            completion,
        });
    }

    /// Non-blocking completion check for an [`Comm::alltoall_begin`]: takes
    /// this rank's share once the last arriver computed it. The clock does
    /// not move while parked (`entry` was saved at the begin), so the
    /// accounting equals the blocking path's byte-for-byte.
    pub fn poll_alltoall(&mut self) -> Option<Vec<Bytes>> {
        self.shared.check_aborts(self.rank, "in an alltoall");
        let pc = self
            .pending_coll
            .as_ref()
            .expect("poll_alltoall without alltoall_begin");
        debug_assert_eq!(pc.kind, CollectiveKind::Alltoall);
        let (completion, payloads) = self.shared.try_collective_take(pc.idx, self.rank)?;
        let pc = self.pending_coll.take().expect("checked above");
        self.absorb_alltoall(pc.entry, pc.bytes_per, completion);
        Some(payloads)
    }

    /// Blocking all-to-all exchange: `payload_per_dst[d]` goes to rank `d`
    /// (the self-slot is copied through without network cost). Returns one
    /// payload per source rank. All ranks must call in matching order.
    pub fn alltoall(&mut self, payload_per_dst: Vec<Bytes>) -> Vec<Bytes> {
        self.alltoall_begin(payload_per_dst);
        let pc = self.pending_coll.take().expect("just set");
        let (completion, payloads) = self.shared.collective_wait(pc.kind, pc.idx, self.rank);
        self.absorb_alltoall(pc.entry, pc.bytes_per, completion);
        payloads
    }

    /// Join a barrier (resumable counterpart of [`Comm::barrier`]).
    pub fn barrier_begin(&mut self) {
        assert!(
            self.pending_coll.is_none(),
            "collective already in flight on rank {}",
            self.rank
        );
        let entry = self.clock;
        let idx = self.collective_idx;
        self.collective_idx += 1;
        self.shared
            .collective_begin(CollectiveKind::Barrier, idx, self.rank, entry, Vec::new());
        self.pending_coll = Some(PendingColl {
            kind: CollectiveKind::Barrier,
            idx,
            entry,
            bytes_per: 0,
        });
    }

    fn absorb_barrier(&mut self, completion: SimTime) {
        self.stats.blocked += completion.saturating_sub(self.clock);
        self.clock = completion.max(self.clock);
        self.stats.barriers += 1;
        self.emit(EventKind::Barrier { completion });
    }

    /// Non-blocking completion check for a [`Comm::barrier_begin`].
    pub fn poll_barrier(&mut self) -> Option<()> {
        self.shared.check_aborts(self.rank, "in a barrier");
        let pc = self
            .pending_coll
            .as_ref()
            .expect("poll_barrier without barrier_begin");
        debug_assert_eq!(pc.kind, CollectiveKind::Barrier);
        let (completion, _) = self.shared.try_collective_take(pc.idx, self.rank)?;
        self.pending_coll = None;
        self.absorb_barrier(completion);
        Some(())
    }

    /// Barrier: all ranks synchronize to the latest entry time (+`o`).
    pub fn barrier(&mut self) {
        self.barrier_begin();
        let pc = self.pending_coll.take().expect("just set");
        let (completion, _) = self.shared.collective_wait(pc.kind, pc.idx, self.rank);
        self.absorb_barrier(completion);
    }

    /// Number of receives posted but not yet waited on.
    pub fn pending_recv_count(&self) -> usize {
        self.pending_recvs.len()
    }

    /// Number of sends not yet drained by `wait_all`.
    pub fn outstanding_send_count(&self) -> usize {
        self.outstanding_sends.len()
    }

    pub(crate) fn finish(&mut self) -> (RankStats, Vec<Event>) {
        assert!(
            self.pending_recvs.is_empty(),
            "rank {} finished with {} unmatched receives",
            self.rank,
            self.pending_recvs.len()
        );
        self.stats.finish = self.clock;
        (
            std::mem::take(&mut self.stats),
            self.trace.take().unwrap_or_default(),
        )
    }

    /// Read-only view of the running stats (tests).
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // A rank unwinding mid-communication leaves peers blocked on
        // messages or collectives that will never come; poison the cluster
        // so they abort immediately instead of hitting the deadlock
        // timeout.
        if std::thread::panicking() {
            self.shared.poison();
        }
    }
}
