//! # clustersim — a deterministic virtual-time cluster simulator
//!
//! The reproduction's stand-in for the paper's evaluation platform: a
//! cluster of workstations running MPICH over Ethernet/TCP or MPICH-GM over
//! Myrinet (with RDMA). Since the 2005 testbed is unavailable (repro band
//! 2/5), we simulate the *mechanism* that produces Figure 1's effect: an
//! RDMA NIC progresses transfers without host CPU involvement, a TCP stack
//! burns CPU on every byte.
//!
//! - One OS thread per simulated rank; each rank owns a virtual clock.
//! - Real payloads move between ranks, so the interpreter on top validates
//!   program *correctness* and *performance* in a single run.
//! - The timing model is LogGP extended with per-byte CPU involvement (β):
//!   see [`model::NetworkModel`]. Determinism is by construction: see
//!   `state.rs`.
//!
//! ```
//! use clustersim::{Cluster, NetworkModel};
//! use bytes::Bytes;
//!
//! let cluster = Cluster::new(2, NetworkModel::mpich_gm());
//! let out = cluster.run(|comm| {
//!     if comm.rank() == 0 {
//!         comm.isend(1, 0, Bytes::from(vec![7u8; 64]));
//!         comm.wait_all();
//!     } else {
//!         let id = comm.irecv(0, 0);
//!         assert_eq!(comm.wait_recv(id)[0], 7);
//!     }
//! }).unwrap();
//! assert!(out.report.makespan() > clustersim::SimTime::ZERO);
//! ```

pub mod cluster;
pub mod comm;
pub mod message;
pub mod model;
pub mod pool;
mod sched;
mod state;
pub mod stats;
pub mod time;
pub mod trace;

pub use cluster::{Cluster, RankMachine, RunOutput, SimError, Step};
pub use pool::PoolStats;
pub use comm::{Comm, RecvId};
pub use model::{HeteroProfile, NetModel, NetworkModel};
pub use stats::{RankStats, Report};
pub use time::SimTime;
pub use trace::{Event, EventKind, Trace};

// Re-export so dependents spell payloads consistently.
pub use bytes;
pub use bytes::Bytes;
