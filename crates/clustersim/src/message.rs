//! In-flight message representation.

use crate::time::SimTime;
use bytes::Bytes;

/// Mailbox key: messages match on exact (src, dst, tag), FIFO within a key
/// (MPI's non-overtaking rule for identical envelopes). Keys index the
/// per-pair mailbox cells directly — they are never hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgKey {
    pub src: usize,
    pub dst: usize,
    pub tag: i64,
}

/// A message that has left the sender's NIC.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Time the last byte clears the wire at the receiver side, *before*
    /// receiver-NIC serialization.
    pub ready_at: SimTime,
    pub payload: Bytes,
}

impl InFlight {
    pub fn nbytes(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_is_exact() {
        let a = MsgKey { src: 0, dst: 1, tag: 7 };
        let b = MsgKey { src: 0, dst: 1, tag: 7 };
        let c = MsgKey { src: 0, dst: 1, tag: 8 };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn inflight_size() {
        let m = InFlight {
            ready_at: SimTime(10),
            payload: Bytes::from(vec![0u8; 24]),
        };
        assert_eq!(m.nbytes(), 24);
    }
}
