//! Network performance models: LogGP extended with per-byte **CPU
//! involvement** (β), the knob that separates a TCP stack (MPICH over
//! Ethernet) from an RDMA-capable interconnect (MPICH-GM over Myrinet).
//!
//! Per message of `S` bytes:
//!
//! - the sender's CPU pays `o + β_s·S` (protocol + copy into the stack);
//! - the sender's NIC is busy for `S·G` (G = 1/bandwidth) and the wire adds
//!   latency `L`;
//! - the receiver's NIC serializes incoming messages at `S·G`;
//! - the receiver's CPU pays `o + β_r·S` when it *waits* for the message.
//!
//! With β ≈ 0 the NIC does all per-byte work and transfers overlap with
//! computation — the paper's "network co-processor … freeing the CPU to
//! perform useful computations". With β large, every byte consumes host CPU
//! that no restructuring can hide, which is why Figure 1's pre-push bar
//! improves only modestly under plain MPICH.
//!
//! The preset constants are order-of-magnitude values for 2005-era hardware
//! (Fast/Gigabit Ethernet vs Myrinet 2000); DESIGN.md §2 records why only
//! the *shape* of results depends on them.

use crate::time::SimTime;

/// A network + MPI-stack performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    pub name: &'static str,
    /// Wire latency `L` added after the NIC finishes pushing the message.
    pub latency: SimTime,
    /// NIC gap per byte, `G = 1/bandwidth`, in ns/byte.
    pub gap_ns_per_byte: f64,
    /// Fixed per-call CPU overhead `o` (send or receive posting).
    pub overhead: SimTime,
    /// Sender CPU cost per byte (copies, checksums, protocol) in ns/byte.
    pub cpu_send_ns_per_byte: f64,
    /// Receiver CPU cost per byte, paid at wait time, in ns/byte.
    pub cpu_recv_ns_per_byte: f64,
}

impl NetworkModel {
    /// MPICH over 100 Mbit-class Ethernet/TCP: high latency, low bandwidth,
    /// and — crucially — the host CPU touches every byte (β ≈ 8 ns/B ≈ one
    /// memcpy + stack traversal at ~125 MB/s aggregate).
    pub fn mpich() -> Self {
        NetworkModel {
            name: "MPICH",
            latency: SimTime::from_us(55),
            gap_ns_per_byte: 10.0, // ~100 MB/s
            overhead: SimTime::from_us(10),
            cpu_send_ns_per_byte: 8.0,
            cpu_recv_ns_per_byte: 8.0,
        }
    }

    /// MPICH-GM over Myrinet 2000: low latency, ~245 MB/s, and RDMA — the
    /// NIC progresses transfers with almost no host involvement.
    pub fn mpich_gm() -> Self {
        NetworkModel {
            name: "MPICH-GM",
            latency: SimTime::from_us(7),
            gap_ns_per_byte: 4.0, // ~250 MB/s
            overhead: SimTime::from_us(1),
            cpu_send_ns_per_byte: 0.05,
            cpu_recv_ns_per_byte: 0.05,
        }
    }

    /// An idealized zero-copy RDMA fabric (for ablations): the upper bound
    /// on what pre-pushing can deliver.
    pub fn rdma_ideal() -> Self {
        NetworkModel {
            name: "RDMA-ideal",
            latency: SimTime::from_us(2),
            gap_ns_per_byte: 1.0, // ~1 GB/s
            overhead: SimTime::from_ns(300),
            cpu_send_ns_per_byte: 0.0,
            cpu_recv_ns_per_byte: 0.0,
        }
    }

    /// `mpich()` with the per-byte CPU involvement scaled by `factor` —
    /// the model-sweep ablation interpolates between TCP-like and RDMA-like
    /// stacks with everything else held fixed.
    pub fn mpich_with_beta_scaled(factor: f64) -> Self {
        let mut m = Self::mpich();
        m.name = "MPICH-beta-sweep";
        m.cpu_send_ns_per_byte *= factor;
        m.cpu_recv_ns_per_byte *= factor;
        m
    }

    /// Sender CPU time for an `nbytes` message.
    pub fn send_cpu(&self, nbytes: usize) -> SimTime {
        self.overhead + SimTime::from_ns_f64(self.cpu_send_ns_per_byte * nbytes as f64)
    }

    /// Receiver CPU time for an `nbytes` message (paid at wait).
    pub fn recv_cpu(&self, nbytes: usize) -> SimTime {
        self.overhead + SimTime::from_ns_f64(self.cpu_recv_ns_per_byte * nbytes as f64)
    }

    /// NIC occupancy for an `nbytes` message.
    pub fn wire(&self, nbytes: usize) -> SimTime {
        SimTime::from_ns_f64(self.gap_ns_per_byte * nbytes as f64)
    }

    /// End-to-end unloaded transfer time of one message.
    pub fn unloaded_transfer(&self, nbytes: usize) -> SimTime {
        self.wire(nbytes) + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let tcp = NetworkModel::mpich();
        let gm = NetworkModel::mpich_gm();
        let rdma = NetworkModel::rdma_ideal();
        assert!(tcp.latency > gm.latency);
        assert!(gm.latency > rdma.latency);
        assert!(tcp.gap_ns_per_byte > gm.gap_ns_per_byte);
        assert!(tcp.cpu_send_ns_per_byte > 10.0 * gm.cpu_send_ns_per_byte);
        assert_eq!(rdma.cpu_send_ns_per_byte, 0.0);
    }

    #[test]
    fn cost_helpers() {
        let m = NetworkModel::mpich();
        // 1 MB: send CPU = 10us + 8 ns/B * 1e6 = 10us + 8ms.
        let s = m.send_cpu(1_000_000);
        assert_eq!(s.as_ns(), 10_000 + 8_000_000);
        // Wire time: 10 ns/B * 1e6 = 10 ms.
        assert_eq!(m.wire(1_000_000).as_ns(), 10_000_000);
        assert_eq!(
            m.unloaded_transfer(1000).as_ns(),
            10_000 + 55_000
        );
    }

    #[test]
    fn gm_send_cpu_nearly_free() {
        let m = NetworkModel::mpich_gm();
        // 1 MB costs ~1us + 50us of CPU — tiny next to the 4ms wire time.
        assert!(m.send_cpu(1_000_000) < SimTime::from_us(60));
        assert!(m.wire(1_000_000) > SimTime::from_ms(3));
    }

    #[test]
    fn beta_sweep_scales_only_cpu() {
        let m0 = NetworkModel::mpich_with_beta_scaled(0.0);
        assert_eq!(m0.cpu_send_ns_per_byte, 0.0);
        assert_eq!(m0.gap_ns_per_byte, NetworkModel::mpich().gap_ns_per_byte);
        let m2 = NetworkModel::mpich_with_beta_scaled(2.0);
        assert_eq!(m2.cpu_recv_ns_per_byte, 16.0);
    }
}
