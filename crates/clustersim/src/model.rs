//! Network performance models: LogGP extended with per-byte **CPU
//! involvement** (β), the knob that separates a TCP stack (MPICH over
//! Ethernet) from an RDMA-capable interconnect (MPICH-GM over Myrinet).
//!
//! Per message of `S` bytes:
//!
//! - the sender's CPU pays `o + β_s·S` (protocol + copy into the stack);
//! - the sender's NIC is busy for `S·G` (G = 1/bandwidth) and the wire adds
//!   latency `L`;
//! - the receiver's NIC serializes incoming messages at `S·G`;
//! - the receiver's CPU pays `o + β_r·S` when it *waits* for the message.
//!
//! With β ≈ 0 the NIC does all per-byte work and transfers overlap with
//! computation — the paper's "network co-processor … freeing the CPU to
//! perform useful computations". With β large, every byte consumes host CPU
//! that no restructuring can hide, which is why Figure 1's pre-push bar
//! improves only modestly under plain MPICH.
//!
//! Beyond the five base constants, a model belongs to a **family**
//! ([`NetModel`]) that layers extra structure on top:
//!
//! - [`NetModel::Uniform`] — the flat LogGP+β model above, byte-identical
//!   to the pre-family behavior;
//! - [`NetModel::Congested`] — a shared switch link of finite bandwidth
//!   behind the NICs. Each rank owns a deterministic *share* of the link:
//!   with `links` physical links and `np` ranks, `ceil(np/links)` ranks
//!   share one link, so a rank's share serializes bytes at
//!   `G · ceil(np/links) · load_factor` ns/B (fluid fair-share; the
//!   `load_factor` models additional background traffic). Messages pass
//!   through NIC *then* link share on send, and link share *then* NIC on
//!   receive — two serialization stages, per-rank timelines, so virtual
//!   times stay a pure function of program order (DESIGN.md §2);
//! - [`NetModel::Hetero`] — per-rank CPU/NIC speed factors from a named
//!   [`HeteroProfile`], applied at every charge site.
//!
//! The preset constants are order-of-magnitude values for 2005-era hardware
//! (Fast/Gigabit Ethernet vs Myrinet 2000); DESIGN.md §2 records why only
//! the *shape* of results depends on them.

use crate::time::SimTime;
use std::borrow::Cow;

/// Named per-rank speed profile for [`NetModel::Hetero`]: maps
/// `(rank, np)` to `(cpu_factor, nic_factor)` multipliers (> 1 = slower).
/// Profiles are closed and named so a profile id fully determines the
/// factors — the model fingerprint hashes the id, nothing more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeteroProfile {
    /// The upper half of the ranks (`rank ≥ ceil(np/2)`) runs 2× slower
    /// on both CPU and NIC — an old-and-new-hardware cluster.
    HalfSlow,
    /// The last rank (`np - 1`) is a straggler: 4× slower CPU, 2× slower
    /// NIC; everyone else is nominal.
    Straggler,
}

impl HeteroProfile {
    /// Every known profile, in id order (parse/help/proptest source).
    pub const ALL: [HeteroProfile; 2] = [HeteroProfile::HalfSlow, HeteroProfile::Straggler];

    /// Stable id used in `ModelSpec` strings (`hetero:<id>`).
    pub fn id(&self) -> &'static str {
        match self {
            HeteroProfile::HalfSlow => "half-slow",
            HeteroProfile::Straggler => "straggler",
        }
    }

    /// Inverse of [`HeteroProfile::id`].
    pub fn from_id(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.id() == s)
    }

    /// `(cpu_factor, nic_factor)` for one rank (both ≥ 1.0; 1.0 = nominal).
    pub fn factors(&self, rank: usize, np: usize) -> (f64, f64) {
        match self {
            HeteroProfile::HalfSlow => {
                if 2 * rank >= np {
                    (2.0, 2.0)
                } else {
                    (1.0, 1.0)
                }
            }
            HeteroProfile::Straggler => {
                if np > 1 && rank == np - 1 {
                    (4.0, 2.0)
                } else {
                    (1.0, 1.0)
                }
            }
        }
    }

    /// Worst-case `(cpu_factor, nic_factor)` over all ranks — what a
    /// conservative predictor should assume.
    pub fn max_factors(&self, np: usize) -> (f64, f64) {
        let mut cpu = 1.0f64;
        let mut nic = 1.0f64;
        for rank in 0..np {
            let (c, n) = self.factors(rank, np);
            cpu = cpu.max(c);
            nic = nic.max(n);
        }
        (cpu, nic)
    }
}

/// Model family: the structure a [`NetworkModel`] layers on top of its five
/// base constants. Enum dispatch — no `dyn` anywhere near the hot paths.
#[derive(Debug, Clone, PartialEq)]
pub enum NetModel {
    /// Flat LogGP+β: every rank and link identical, links unloaded.
    Uniform,
    /// A shared switch link of finite bandwidth behind the NICs; see the
    /// module docs for the deterministic per-rank-share formulation.
    Congested {
        /// Number of physical links ranks are spread across (≥ 1).
        links: u32,
        /// Background-load multiplier on the link's per-byte time (> 0;
        /// 1.0 = only this job's fair-share contention).
        load_factor: f64,
    },
    /// Per-rank CPU/NIC speed factors from a named profile.
    Hetero(HeteroProfile),
}

/// A network + MPI-stack performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    pub name: Cow<'static, str>,
    /// Wire latency `L` added after the NIC finishes pushing the message.
    pub latency: SimTime,
    /// NIC gap per byte, `G = 1/bandwidth`, in ns/byte.
    pub gap_ns_per_byte: f64,
    /// Fixed per-call CPU overhead `o` (send or receive posting).
    pub overhead: SimTime,
    /// Sender CPU cost per byte (copies, checksums, protocol) in ns/byte.
    pub cpu_send_ns_per_byte: f64,
    /// Receiver CPU cost per byte, paid at wait time, in ns/byte.
    pub cpu_recv_ns_per_byte: f64,
    /// Model family layered on the constants above.
    pub family: NetModel,
}

impl NetworkModel {
    /// MPICH over 100 Mbit-class Ethernet/TCP: high latency, low bandwidth,
    /// and — crucially — the host CPU touches every byte (β ≈ 8 ns/B ≈ one
    /// memcpy + stack traversal at ~125 MB/s aggregate).
    pub fn mpich() -> Self {
        NetworkModel {
            name: Cow::Borrowed("MPICH"),
            latency: SimTime::from_us(55),
            gap_ns_per_byte: 10.0, // ~100 MB/s
            overhead: SimTime::from_us(10),
            cpu_send_ns_per_byte: 8.0,
            cpu_recv_ns_per_byte: 8.0,
            family: NetModel::Uniform,
        }
    }

    /// MPICH-GM over Myrinet 2000: low latency, ~245 MB/s, and RDMA — the
    /// NIC progresses transfers with almost no host involvement.
    pub fn mpich_gm() -> Self {
        NetworkModel {
            name: Cow::Borrowed("MPICH-GM"),
            latency: SimTime::from_us(7),
            gap_ns_per_byte: 4.0, // ~250 MB/s
            overhead: SimTime::from_us(1),
            cpu_send_ns_per_byte: 0.05,
            cpu_recv_ns_per_byte: 0.05,
            family: NetModel::Uniform,
        }
    }

    /// An idealized zero-copy RDMA fabric (for ablations): the upper bound
    /// on what pre-pushing can deliver.
    pub fn rdma_ideal() -> Self {
        NetworkModel {
            name: Cow::Borrowed("RDMA-ideal"),
            latency: SimTime::from_us(2),
            gap_ns_per_byte: 1.0, // ~1 GB/s
            overhead: SimTime::from_ns(300),
            cpu_send_ns_per_byte: 0.0,
            cpu_recv_ns_per_byte: 0.0,
            family: NetModel::Uniform,
        }
    }

    /// `mpich()` with the per-byte CPU involvement scaled by `factor` —
    /// the model-sweep ablation interpolates between TCP-like and RDMA-like
    /// stacks with everything else held fixed.
    pub fn mpich_with_beta_scaled(factor: f64) -> Self {
        let mut m = Self::mpich();
        m.name = Cow::Owned(format!("MPICH-beta-sweep(x{factor})"));
        m.cpu_send_ns_per_byte *= factor;
        m.cpu_recv_ns_per_byte *= factor;
        m
    }

    /// `mpich_gm()` behind a congested shared link: `links` physical links
    /// serve all ranks, and `load_factor` scales the link's per-byte time
    /// for background traffic. The ROADMAP's "does prepush still win when
    /// the network is busy?" column.
    pub fn mpich_gm_congested(links: u32, load_factor: f64) -> Self {
        let mut m = Self::mpich_gm();
        m.name = Cow::Owned(format!("MPICH-GM-congested(links={links},load=x{load_factor})"));
        m.family = NetModel::Congested { links, load_factor };
        m
    }

    /// `mpich_gm()` on a heterogeneous cluster described by `profile`.
    pub fn mpich_gm_hetero(profile: HeteroProfile) -> Self {
        let mut m = Self::mpich_gm();
        m.name = Cow::Owned(format!("MPICH-GM-hetero({})", profile.id()));
        m.family = NetModel::Hetero(profile);
        m
    }

    /// Sender CPU time for an `nbytes` message.
    pub fn send_cpu(&self, nbytes: usize) -> SimTime {
        self.overhead + SimTime::from_ns_f64(self.cpu_send_ns_per_byte * nbytes as f64)
    }

    /// Receiver CPU time for an `nbytes` message (paid at wait).
    pub fn recv_cpu(&self, nbytes: usize) -> SimTime {
        self.overhead + SimTime::from_ns_f64(self.cpu_recv_ns_per_byte * nbytes as f64)
    }

    /// NIC occupancy for an `nbytes` message.
    pub fn wire(&self, nbytes: usize) -> SimTime {
        SimTime::from_ns_f64(self.gap_ns_per_byte * nbytes as f64)
    }

    /// End-to-end unloaded transfer time of one message.
    pub fn unloaded_transfer(&self, nbytes: usize) -> SimTime {
        self.wire(nbytes) + self.latency
    }

    /// `(cpu_factor, nic_factor)` for one rank — `(1.0, 1.0)` for every
    /// family except [`NetModel::Hetero`].
    pub fn rank_factors(&self, rank: usize, np: usize) -> (f64, f64) {
        match &self.family {
            NetModel::Hetero(p) => p.factors(rank, np),
            _ => (1.0, 1.0),
        }
    }

    /// Rank-aware [`NetworkModel::send_cpu`]. The non-hetero arm calls the
    /// uniform helper so existing families keep byte-identical arithmetic.
    pub fn send_cpu_at(&self, rank: usize, np: usize, nbytes: usize) -> SimTime {
        match &self.family {
            NetModel::Hetero(p) => {
                let (cpu, _) = p.factors(rank, np);
                scale(self.overhead, cpu)
                    + SimTime::from_ns_f64(self.cpu_send_ns_per_byte * cpu * nbytes as f64)
            }
            _ => self.send_cpu(nbytes),
        }
    }

    /// Rank-aware [`NetworkModel::recv_cpu`].
    pub fn recv_cpu_at(&self, rank: usize, np: usize, nbytes: usize) -> SimTime {
        match &self.family {
            NetModel::Hetero(p) => {
                let (cpu, _) = p.factors(rank, np);
                scale(self.overhead, cpu)
                    + SimTime::from_ns_f64(self.cpu_recv_ns_per_byte * cpu * nbytes as f64)
            }
            _ => self.recv_cpu(nbytes),
        }
    }

    /// Rank-aware fixed posting overhead.
    pub fn overhead_at(&self, rank: usize, np: usize) -> SimTime {
        match &self.family {
            NetModel::Hetero(p) => scale(self.overhead, p.factors(rank, np).0),
            _ => self.overhead,
        }
    }

    /// Rank-aware [`NetworkModel::wire`] (NIC occupancy).
    pub fn wire_at(&self, rank: usize, np: usize, nbytes: usize) -> SimTime {
        match &self.family {
            NetModel::Hetero(p) => {
                let (_, nic) = p.factors(rank, np);
                SimTime::from_ns_f64(self.gap_ns_per_byte * nic * nbytes as f64)
            }
            _ => self.wire(nbytes),
        }
    }

    /// Per-byte time of one rank's *share* of the contended link, or `None`
    /// for families without a shared-link stage.
    pub fn link_share_ns_per_byte(&self, np: usize) -> Option<f64> {
        match self.family {
            NetModel::Congested { links, load_factor } => {
                let sharing = np.div_ceil((links as usize).max(1)).max(1) as f64;
                Some(self.gap_ns_per_byte * sharing * load_factor)
            }
            _ => None,
        }
    }

    /// Link-share occupancy for an `nbytes` message (`None` when the family
    /// has no shared-link stage — the NIC booking then skips the stage
    /// entirely, keeping existing families' arithmetic untouched).
    pub fn link_wire(&self, np: usize, nbytes: usize) -> Option<SimTime> {
        self.link_share_ns_per_byte(np)
            .map(|rate| SimTime::from_ns_f64(rate * nbytes as f64))
    }

    /// Effective per-byte serialization rate one message sees end-to-end:
    /// the NIC gap, or the congested link share when that is the slower
    /// (bottleneck) stage. Equals `gap_ns_per_byte` for uniform models.
    pub fn effective_gap_ns_per_byte(&self, np: usize) -> f64 {
        match self.link_share_ns_per_byte(np) {
            Some(link) => self.gap_ns_per_byte.max(link),
            None => self.gap_ns_per_byte,
        }
    }

    /// Bottleneck-stage serialization time for `nbytes` — what collectives
    /// charge per pairwise transfer. The uniform arm is exactly
    /// [`NetworkModel::wire`].
    pub fn effective_wire(&self, np: usize, nbytes: usize) -> SimTime {
        SimTime::from_ns_f64(self.effective_gap_ns_per_byte(np) * nbytes as f64)
    }
}

/// Scale a `SimTime` by a speed factor (deterministic f64 round-trip, the
/// same arithmetic `from_ns_f64` applies to every per-byte cost).
fn scale(t: SimTime, factor: f64) -> SimTime {
    SimTime::from_ns_f64(t.as_ns() as f64 * factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let tcp = NetworkModel::mpich();
        let gm = NetworkModel::mpich_gm();
        let rdma = NetworkModel::rdma_ideal();
        assert!(tcp.latency > gm.latency);
        assert!(gm.latency > rdma.latency);
        assert!(tcp.gap_ns_per_byte > gm.gap_ns_per_byte);
        assert!(tcp.cpu_send_ns_per_byte > 10.0 * gm.cpu_send_ns_per_byte);
        assert_eq!(rdma.cpu_send_ns_per_byte, 0.0);
    }

    #[test]
    fn cost_helpers() {
        let m = NetworkModel::mpich();
        // 1 MB: send CPU = 10us + 8 ns/B * 1e6 = 10us + 8ms.
        let s = m.send_cpu(1_000_000);
        assert_eq!(s.as_ns(), 10_000 + 8_000_000);
        // Wire time: 10 ns/B * 1e6 = 10 ms.
        assert_eq!(m.wire(1_000_000).as_ns(), 10_000_000);
        assert_eq!(
            m.unloaded_transfer(1000).as_ns(),
            10_000 + 55_000
        );
    }

    #[test]
    fn gm_send_cpu_nearly_free() {
        let m = NetworkModel::mpich_gm();
        // 1 MB costs ~1us + 50us of CPU — tiny next to the 4ms wire time.
        assert!(m.send_cpu(1_000_000) < SimTime::from_us(60));
        assert!(m.wire(1_000_000) > SimTime::from_ms(3));
    }

    #[test]
    fn beta_sweep_scales_only_cpu() {
        let m0 = NetworkModel::mpich_with_beta_scaled(0.0);
        assert_eq!(m0.cpu_send_ns_per_byte, 0.0);
        assert_eq!(m0.gap_ns_per_byte, NetworkModel::mpich().gap_ns_per_byte);
        let m2 = NetworkModel::mpich_with_beta_scaled(2.0);
        assert_eq!(m2.cpu_recv_ns_per_byte, 16.0);
    }

    #[test]
    fn beta_sweep_names_carry_the_factor() {
        // Regression: every factor used to be labeled "MPICH-beta-sweep",
        // making multi-beta grids indistinguishable in reports.
        let a = NetworkModel::mpich_with_beta_scaled(0.5);
        let b = NetworkModel::mpich_with_beta_scaled(2.0);
        assert_ne!(a.name, b.name);
        assert!(a.name.contains("0.5"), "{}", a.name);
        assert!(b.name.contains('2'), "{}", b.name);
    }

    #[test]
    fn uniform_rank_aware_helpers_match_uniform_helpers_exactly() {
        // The byte-identity invariant for existing models hinges on the
        // `_at` arms delegating to the uniform helpers for every rank.
        for m in [
            NetworkModel::mpich(),
            NetworkModel::mpich_gm(),
            NetworkModel::rdma_ideal(),
            NetworkModel::mpich_with_beta_scaled(0.25),
        ] {
            for rank in 0..8 {
                for nbytes in [0usize, 17, 4096, 1_000_000] {
                    assert_eq!(m.send_cpu_at(rank, 8, nbytes), m.send_cpu(nbytes));
                    assert_eq!(m.recv_cpu_at(rank, 8, nbytes), m.recv_cpu(nbytes));
                    assert_eq!(m.wire_at(rank, 8, nbytes), m.wire(nbytes));
                    assert_eq!(m.overhead_at(rank, 8), m.overhead);
                    assert_eq!(m.effective_wire(8, nbytes), m.wire(nbytes));
                }
            }
            assert_eq!(m.link_wire(8, 4096), None);
        }
    }

    #[test]
    fn congested_link_share_is_fair_share_times_load() {
        let m = NetworkModel::mpich_gm_congested(2, 1.5);
        // 8 ranks over 2 links: 4 ranks/link, share rate = 4*4*1.5 = 24 ns/B.
        assert_eq!(m.link_share_ns_per_byte(8), Some(24.0));
        // 3 ranks over 2 links: ceil(3/2)=2 sharing, 4*2*1.5 = 12 ns/B.
        assert_eq!(m.link_share_ns_per_byte(3), Some(12.0));
        // The link is the bottleneck stage (24 > the 4 ns/B NIC gap).
        assert_eq!(m.effective_gap_ns_per_byte(8), 24.0);
        // Base NIC constants are untouched.
        assert_eq!(m.gap_ns_per_byte, NetworkModel::mpich_gm().gap_ns_per_byte);
        assert!(m.name.contains("links=2"), "{}", m.name);
    }

    #[test]
    fn hetero_profiles_slow_the_right_ranks() {
        let m = NetworkModel::mpich_gm_hetero(HeteroProfile::HalfSlow);
        assert_eq!(m.rank_factors(0, 4), (1.0, 1.0));
        assert_eq!(m.rank_factors(2, 4), (2.0, 2.0));
        assert_eq!(m.send_cpu_at(2, 4, 1000), scale(m.send_cpu(1000), 2.0));
        assert_eq!(m.wire_at(3, 4, 1000), scale(m.wire(1000), 2.0));
        // Odd np: "upper half" starts at ceil(np/2), so np=3 slows rank 2 only.
        assert_eq!(HeteroProfile::HalfSlow.factors(1, 3), (1.0, 1.0));
        assert_eq!(HeteroProfile::HalfSlow.factors(2, 3), (2.0, 2.0));

        let s = NetworkModel::mpich_gm_hetero(HeteroProfile::Straggler);
        assert_eq!(s.rank_factors(3, 4), (4.0, 2.0));
        assert_eq!(s.rank_factors(0, 4), (1.0, 1.0));
        // np = 1 has no straggler (there is no "last other rank").
        assert_eq!(HeteroProfile::Straggler.factors(0, 1), (1.0, 1.0));
        assert_eq!(HeteroProfile::Straggler.max_factors(8), (4.0, 2.0));
    }

    #[test]
    fn hetero_profile_ids_roundtrip() {
        for p in HeteroProfile::ALL {
            assert_eq!(HeteroProfile::from_id(p.id()), Some(p));
        }
        assert_eq!(HeteroProfile::from_id("slowpokes"), None);
    }
}
