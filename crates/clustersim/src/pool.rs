//! A process-wide, persistent worker-thread pool for simulated ranks.
//!
//! Historically every [`crate::Cluster::run`] spawned one fresh OS thread
//! per rank and a parallel sweep at np=32 meant hundreds of short-lived
//! threads. This pool keeps workers alive across scenarios and bounds how
//! many rank threads are *admitted* at once, so thread count scales with
//! the hardware instead of with the grid.
//!
//! ## Admission (tickets)
//!
//! Simulated ranks block on each other (message waits, collectives), so
//! every rank of a scenario must be runnable *simultaneously* — a fixed
//! pool smaller than `np` would deadlock. Admission therefore works on
//! whole scenarios: [`scope_ranks`] atomically acquires one ticket per
//! extra rank before dispatching any of them. The ticket capacity defaults
//! to `2 × available cores`; a scenario larger than the whole capacity is
//! admitted *alone* (it waits for the pool to drain, then temporarily
//! overshoots), so np=64 works on any machine while total live rank
//! threads stay bounded by `max(2 × cores, largest admitted np)`.
//!
//! ## Scoped borrowing
//!
//! Tasks may borrow from the caller's stack (the cluster closure, result
//! slots). Soundness is the same contract as `std::thread::scope`: the
//! submitting call *always* waits for every submitted task to finish
//! before returning — including when the caller-run task panics — so the
//! lifetime-erased closures never outlive their borrows (see
//! `LatchWaitGuard`).
//!
//! Orchestration helpers (the sweep executor's per-worker loops) use
//! [`scope_helpers`], which shares the worker threads but takes no
//! tickets: helpers *hold* a scenario while its ranks need tickets, so
//! ticketing them could deadlock admission.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock a pool mutex, recovering from poisoning. Pool bookkeeping is plain
/// counters and queues whose invariants hold between statements, so a
/// panic on some other thread while it held the lock cannot leave torn
/// state — propagating the poison would instead convert one failed
/// scenario into cascading panics across every unrelated sweep row.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poison recovery as [`plock`].
fn pwait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased task plus its completion latch.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    /// Workers parked waiting for work.
    idle: usize,
    /// Workers alive (parked or running).
    live: usize,
    /// Most workers ever alive at once.
    high_water: usize,
    /// Tasks ever executed on pool workers.
    tasks_run: u64,
}

#[derive(Default)]
struct TicketState {
    outstanding: usize,
    /// Most tickets ever outstanding at once.
    high_water: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
    tickets: Mutex<TicketState>,
    tickets_free: Condvar,
    capacity: AtomicUsize,
}

/// Observable pool counters (tests, perf reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (parked or running).
    pub workers_live: usize,
    /// High-water mark of live workers.
    pub workers_high_water: usize,
    /// Rank tickets currently outstanding.
    pub tickets_outstanding: usize,
    /// High-water mark of outstanding tickets.
    pub tickets_high_water: usize,
    /// Tasks executed on pool workers since process start.
    pub tasks_run: u64,
}

fn default_capacity() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get() * 2)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState::default()),
        work: Condvar::new(),
        tickets: Mutex::new(TicketState::default()),
        tickets_free: Condvar::new(),
        capacity: AtomicUsize::new(default_capacity()),
    })
}

/// Current ticket capacity (the soft bound on concurrent rank threads).
pub fn capacity() -> usize {
    pool().capacity.load(Ordering::Relaxed)
}

/// Override the ticket capacity (testing/tuning hook). Values below 1 are
/// clamped to 1. Scenario admission — not worker spawning — is what this
/// throttles, so changing it never changes any virtual time, only how many
/// scenarios' ranks may interleave.
pub fn set_capacity(n: usize) {
    let p = pool();
    // Store and notify under the tickets mutex: an `acquire` waiter sits
    // between its capacity load and `wait()` while holding this lock, so
    // an unsynchronized notify could be lost and a capacity *increase*
    // would not unblock an already-parked scenario until the next ticket
    // release.
    let _guard = plock(&p.tickets);
    p.capacity.store(n.max(1), Ordering::Relaxed);
    p.tickets_free.notify_all();
}

/// Snapshot the pool counters.
pub fn stats() -> PoolStats {
    let p = pool();
    let st = plock(&p.state);
    let tk = plock(&p.tickets);
    PoolStats {
        workers_live: st.live,
        workers_high_water: st.high_water,
        tickets_outstanding: tk.outstanding,
        tickets_high_water: tk.high_water,
        tasks_run: st.tasks_run,
    }
}

/// Completion latch: the scoped caller blocks until every dispatched task
/// ran (or unwound).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        let mut left = plock(&self.remaining);
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = plock(&self.remaining);
        while *left > 0 {
            left = pwait(&self.done, left);
        }
    }
}

/// Waits for the latch on drop, so borrowed tasks are joined even when the
/// caller-run portion panics (the `std::thread::scope` guarantee).
struct LatchWaitGuard<'a>(&'a Latch);

impl Drop for LatchWaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// RAII ticket hold. Dropping releases — including during unwinding, and
/// even when a panic elsewhere poisoned the tickets mutex — so a failed
/// scenario can never leak admission capacity.
pub(crate) struct Tickets(usize);

impl Tickets {
    fn acquire(n: usize) -> Tickets {
        if n == 0 {
            return Tickets(0);
        }
        let p = pool();
        let mut tk = plock(&p.tickets);
        loop {
            let cap = p.capacity.load(Ordering::Relaxed);
            // Normal admission within capacity; an oversize scenario
            // (n > cap) is admitted alone once the pool drains.
            if tk.outstanding + n <= cap || tk.outstanding == 0 {
                tk.outstanding += n;
                tk.high_water = tk.high_water.max(tk.outstanding);
                return Tickets(n);
            }
            tk = pwait(&p.tickets_free, tk);
        }
    }

    /// Take as many tickets as current headroom allows, up to `max`,
    /// without ever blocking — possibly zero. Resumable runs use this to
    /// size their helper-driver set opportunistically: the calling thread
    /// always drives, so zero granted tickets still means progress.
    pub(crate) fn try_acquire_up_to(max: usize) -> Tickets {
        if max == 0 {
            return Tickets(0);
        }
        let p = pool();
        let mut tk = plock(&p.tickets);
        let cap = p.capacity.load(Ordering::Relaxed);
        let n = cap.saturating_sub(tk.outstanding).min(max);
        tk.outstanding += n;
        tk.high_water = tk.high_water.max(tk.outstanding);
        Tickets(n)
    }

    /// How many tickets this hold actually acquired.
    pub(crate) fn granted(&self) -> usize {
        self.0
    }
}

impl Drop for Tickets {
    fn drop(&mut self) {
        if self.0 == 0 {
            return;
        }
        let p = pool();
        let mut tk = plock(&p.tickets);
        tk.outstanding -= self.0;
        drop(tk);
        p.tickets_free.notify_all();
    }
}

fn worker_loop() {
    let p = pool();
    let mut st = plock(&p.state);
    loop {
        if let Some(job) = st.queue.pop_front() {
            st.tasks_run += 1;
            drop(st);
            let Job { run, latch } = job;
            // A rank task catches its own panics (the cluster converts
            // them to SimError); this extra net only guards pool
            // bookkeeping so a worker never dies and a scope never hangs.
            let _ = catch_unwind(AssertUnwindSafe(run));
            latch.complete_one();
            st = plock(&p.state);
        } else {
            st.idle += 1;
            st = pwait(&p.work, st);
            st.idle -= 1;
        }
    }
}

/// Enqueue jobs, growing the worker set so every queued job has a worker.
fn submit(jobs: Vec<Job>) {
    let p = pool();
    let mut st = plock(&p.state);
    for job in jobs {
        st.queue.push_back(job);
    }
    // Spawn enough workers that queued work never waits on a busy pool:
    // admission (tickets) is the throttle, workers are just vehicles.
    let needed = st.queue.len().saturating_sub(st.idle);
    for _ in 0..needed {
        st.live += 1;
        st.high_water = st.high_water.max(st.live);
        std::thread::Builder::new()
            .name("clustersim-rank".into())
            .spawn(worker_loop)
            .expect("spawn pool worker");
    }
    drop(st);
    p.work.notify_all();
}

/// Erase a task's borrow lifetime. Sound only because every call path
/// waits on the latch before returning (see `LatchWaitGuard`).
fn erase<'env>(task: Box<dyn FnOnce() + Send + 'env>) -> Box<dyn FnOnce() + Send + 'static> {
    // SAFETY: the returned closure is dispatched to a pool worker and the
    // submitting scope blocks (even through unwinding) until the worker
    // reports completion via the latch, so no borrow in `task` outlives
    // the caller's frame.
    unsafe {
        std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
            task,
        )
    }
}

fn scope_impl<'env>(mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>, ticketed: bool) {
    match tasks.len() {
        0 => return,
        1 => return (tasks.pop().expect("len checked"))(),
        _ => {}
    }
    let first = tasks.remove(0);
    let extra = tasks.len();
    // Acquire before dispatch: all-or-nothing, so two scenarios can never
    // each hold half their ranks and wait forever for the rest.
    let _tickets = if ticketed { Tickets::acquire(extra) } else { Tickets(0) };
    let latch = Arc::new(Latch::new(extra));
    let guard = LatchWaitGuard(&latch);
    submit(
        tasks
            .into_iter()
            .map(|t| Job {
                run: erase(t),
                latch: Arc::clone(&latch),
            })
            .collect(),
    );
    // The caller is a live thread already — it runs the first task itself
    // instead of idling (a sweep worker thus *is* its scenario's rank 0).
    first();
    drop(guard); // joins the pool-run tasks
    // _tickets released here, after every rank finished.
}

/// Run rank tasks: the first on the calling thread, the rest on pool
/// workers, gated by ticket admission. Blocks until all complete.
pub fn scope_ranks<'env>(tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    scope_impl(tasks, true);
}

/// Run orchestration tasks (sweep worker loops) on the same pool without
/// consuming rank tickets. Blocks until all complete.
pub fn scope_helpers<'env>(tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    scope_impl(tasks, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_task_runs_on_caller() {
        let here = std::thread::current().id();
        let mut seen = None;
        // Written through a &mut borrow — proves the scope joins before
        // returning.
        scope_ranks(vec![
            Box::new(|| seen = Some(std::thread::current().id())) as _,
        ]);
        assert_eq!(seen, Some(here));
    }

    #[test]
    fn borrowed_results_are_visible_after_scope() {
        let results: Vec<Mutex<u64>> = (0..8).map(|_| Mutex::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8u64)
            .map(|i| {
                let results = &results;
                Box::new(move || *results[i as usize].lock().unwrap() = i * i) as _
            })
            .collect();
        scope_ranks(tasks);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.lock().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn workers_are_reused_across_scopes() {
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                .map(|_| {
                    let count = Arc::clone(&count);
                    Box::new(move || {
                        count.fetch_add(1, Ordering::SeqCst);
                    }) as _
                })
                .collect();
            scope_ranks(tasks);
        }
        assert_eq!(count.load(Ordering::SeqCst), 12);
        let s = stats();
        assert!(s.workers_live >= 1);
        assert!(s.tasks_run >= 8, "pool tasks actually ran on workers");
    }

    #[test]
    fn panicking_task_does_not_hang_or_kill_workers() {
        let before = stats().workers_live;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("task panic must stay contained")),
            Box::new(|| {}),
        ];
        scope_ranks(tasks); // must return, not hang
        assert!(stats().workers_live >= before);
    }

    #[test]
    fn oversize_scenarios_are_admitted() {
        // Far larger than any default capacity on CI machines.
        let n = capacity() * 3 + 2;
        let counter = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        scope_ranks(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), n as u64);
        // No global tickets_outstanding == 0 assertion here: other tests
        // in this binary legitimately hold tickets concurrently. The
        // serialized end-to-end check lives in tests/core_scaling.rs.
    }

    /// Serializes the tests that mutate the global ticket capacity.
    fn cap_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        plock(&LOCK)
    }

    #[test]
    fn raising_capacity_unblocks_parked_admission() {
        let _g = cap_lock();
        let orig = capacity();
        let cap = capacity();
        // Saturate admission, so the next acquire must park.
        let hold = Tickets::acquire(cap);
        let unblocked = Arc::new(AtomicU64::new(0));
        let waiter = {
            let unblocked = Arc::clone(&unblocked);
            std::thread::spawn(move || {
                let _t = Tickets::acquire(1);
                unblocked.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Give the waiter time to park, then raise the cap. Without the
        // notify-under-the-tickets-mutex in `set_capacity`, the waiter
        // would stay parked until some ticket release happens to nudge it
        // — and none is coming: `hold` is alive until after the join.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(unblocked.load(Ordering::SeqCst), 0, "waiter parked");
        set_capacity(cap + 2);
        waiter.join().expect("waiter thread");
        assert_eq!(unblocked.load(Ordering::SeqCst), 1);
        drop(hold);
        set_capacity(orig);
    }

    #[test]
    fn try_acquire_up_to_never_blocks() {
        let _g = cap_lock();
        let orig = capacity();
        // Plenty of headroom even with concurrent small scopes running.
        set_capacity(orig + 64);
        let t = Tickets::try_acquire_up_to(3);
        assert_eq!(t.granted(), 3);
        // Zero request → zero grant, no waiting.
        assert_eq!(Tickets::try_acquire_up_to(0).granted(), 0);
        // Shrink so there is no headroom at all: the call must return
        // immediately with nothing rather than park.
        set_capacity(1);
        let starved = Tickets::try_acquire_up_to(5);
        assert_eq!(starved.granted(), 0);
        drop(starved);
        drop(t);
        set_capacity(orig);
    }
}
