//! The resumable-rank scheduler: a runnable queue over rank indices.
//!
//! Thread-per-rank execution parks a whole OS thread on a condvar whenever
//! a rank blocks. Here a rank is a *state machine* (see
//! [`crate::cluster::RankMachine`]): when its poll cannot progress, the
//! driving worker parks the rank's *index* and goes on to run someone else.
//! `M` workers therefore drive any `np`.
//!
//! ## Lost-wakeup freedom
//!
//! The race to defeat: a worker polls rank R (not ready), and a deposit for
//! R lands *between* that poll and the worker parking R — the wake would
//! find R `Running` and be dropped, leaving R parked forever. So `wake` on
//! a `Running` rank sets its `wake_pending` bit instead, and `park`
//! re-queues the rank when the bit is set. Every wake is thus either
//! delivered (Parked → Queued) or latched (Running → re-queued at park).
//!
//! ## Exact deadlock detection
//!
//! All mailbox deposits and collective arrivals happen *inside* a rank's
//! step, and a stepping rank is counted in `running`. So when `park`
//! observes `queue empty ∧ running == 0 ∧ done < np`, no message can be in
//! flight anywhere: the simulated program has deadlocked, provably — no
//! 30-second wall-clock timeout, no false positives.
//!
//! ## Determinism (why any of this is safe)
//!
//! The scheduler decides only *when on the host* a rank executes, never
//! what it computes: virtual times are a pure function of per-rank program
//! order and the message/cost data (DESIGN.md §2–§3). Queue order, worker
//! count, and wake interleavings are free to vary without changing a byte
//! of simulator output.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RState {
    Queued,
    Running { wake_pending: bool },
    Parked,
    Done,
}

struct Inner {
    queue: VecDeque<usize>,
    state: Vec<RState>,
    /// Ranks currently inside a `step` on some worker.
    running: usize,
    done: usize,
    /// Latched once, so only one parker reports the deadlock.
    deadlocked: bool,
}

/// Outcome of parking a rank that returned `Blocked`.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ParkOutcome {
    /// Parked; some future wake will requeue it.
    Parked,
    /// A wake raced the step; the rank went straight back on the queue.
    Requeued,
    /// This park quiesced the whole cluster: simulated deadlock.
    Deadlock,
}

pub(crate) struct RankSched {
    inner: Mutex<Inner>,
    /// Signals workers blocked in `next` (work available, or all done).
    work: Condvar,
}

impl RankSched {
    pub fn new(np: usize) -> RankSched {
        RankSched {
            inner: Mutex::new(Inner {
                queue: (0..np).collect(),
                state: vec![RState::Queued; np],
                running: 0,
                done: 0,
                deadlocked: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Claim the next runnable rank; blocks while the queue is empty but
    /// ranks are still live. Returns `None` when every rank is done — the
    /// worker's signal to exit.
    pub fn next(&self) -> Option<usize> {
        let mut g = self.inner.lock();
        loop {
            if let Some(rank) = g.queue.pop_front() {
                debug_assert_eq!(g.state[rank], RState::Queued);
                g.state[rank] = RState::Running {
                    wake_pending: false,
                };
                g.running += 1;
                return Some(rank);
            }
            if g.done == g.state.len() {
                return None;
            }
            self.work.wait(&mut g);
        }
    }

    /// A state change may let `rank` progress: requeue it if parked, latch
    /// the wake if it's mid-step. Spurious wakes (already queued/done) are
    /// harmless — a resumed rank that still can't progress just parks again.
    pub fn wake(&self, rank: usize) {
        let mut g = self.inner.lock();
        match g.state[rank] {
            RState::Parked => {
                g.state[rank] = RState::Queued;
                g.queue.push_back(rank);
                self.work.notify_one();
            }
            RState::Running { .. } => {
                g.state[rank] = RState::Running { wake_pending: true };
            }
            RState::Queued | RState::Done => {}
        }
    }

    /// Wake every non-done rank (collective completion, poison, deadlock).
    pub fn wake_all(&self) {
        let mut g = self.inner.lock();
        for rank in 0..g.state.len() {
            match g.state[rank] {
                RState::Parked => {
                    g.state[rank] = RState::Queued;
                    g.queue.push_back(rank);
                }
                RState::Running { .. } => {
                    g.state[rank] = RState::Running { wake_pending: true };
                }
                RState::Queued | RState::Done => {}
            }
        }
        self.work.notify_all();
    }

    /// The worker finished a step that returned `Blocked`.
    pub fn park(&self, rank: usize) -> ParkOutcome {
        let mut g = self.inner.lock();
        g.running -= 1;
        match g.state[rank] {
            RState::Running { wake_pending: true } => {
                g.state[rank] = RState::Queued;
                g.queue.push_back(rank);
                self.work.notify_one();
                ParkOutcome::Requeued
            }
            RState::Running { wake_pending: false } => {
                g.state[rank] = RState::Parked;
                if g.queue.is_empty()
                    && g.running == 0
                    && g.done < g.state.len()
                    && !g.deadlocked
                {
                    g.deadlocked = true;
                    ParkOutcome::Deadlock
                } else {
                    ParkOutcome::Parked
                }
            }
            other => unreachable!("park of rank {rank} in state {other:?}"),
        }
    }

    /// The worker finished a step that returned `Done` (or the rank died).
    /// Returns true when this completion quiesced the cluster with live
    /// ranks still parked — the same provable deadlock `park` detects,
    /// reached via a rank *exiting* while a peer waits on a message it
    /// will now never send (park alone can't see it: the parker may have
    /// parked long before the exiting rank finished its step).
    #[must_use]
    pub fn done(&self, rank: usize) -> bool {
        let mut g = self.inner.lock();
        g.running -= 1;
        g.state[rank] = RState::Done;
        g.done += 1;
        if g.done == g.state.len() {
            // Release every worker blocked in `next`.
            self.work.notify_all();
            return false;
        }
        if g.queue.is_empty() && g.running == 0 && !g.deadlocked {
            g.deadlocked = true;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_done_termination() {
        let s = RankSched::new(3);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(1));
        assert!(!s.done(0));
        assert!(!s.done(1));
        assert_eq!(s.next(), Some(2));
        assert!(!s.done(2));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn wake_while_running_latches() {
        let s = RankSched::new(2);
        assert_eq!(s.next(), Some(0));
        s.wake(0); // deposit raced the step
        assert_eq!(s.park(0), ParkOutcome::Requeued);
        assert_eq!(s.next(), Some(1));
        assert!(!s.done(1));
        // Rank 0 is queued again, not lost.
        assert_eq!(s.next(), Some(0));
        assert!(!s.done(0));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn wake_parked_requeues() {
        let s = RankSched::new(2);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.park(0), ParkOutcome::Parked);
        s.wake(0);
        assert!(!s.done(1));
        assert_eq!(s.next(), Some(0));
        assert!(!s.done(0));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn quiescence_is_deadlock() {
        let s = RankSched::new(2);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(1));
        assert!(!s.done(0));
        // Last live rank parks with nothing queued and nothing running.
        assert_eq!(s.park(1), ParkOutcome::Deadlock);
    }

    #[test]
    fn exit_while_peer_parked_is_deadlock() {
        let s = RankSched::new(2);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(1));
        // Rank 0 blocks waiting on a message only rank 1 could send...
        assert_eq!(s.park(0), ParkOutcome::Parked);
        // ...and rank 1 exits instead: quiescence via `done`, not `park`.
        assert!(s.done(1));
    }

    #[test]
    fn no_false_deadlock_while_peer_runs() {
        let s = RankSched::new(2);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(1));
        // Rank 1 still mid-step: its deposit may be coming.
        assert_eq!(s.park(0), ParkOutcome::Parked);
    }
}
