//! Shared cluster state: mailboxes, NIC timelines, and collective slots.
//!
//! Determinism argument (DESIGN.md §2): every timestamp is a pure function
//! of per-rank program order —
//!
//! - `send_free[r]` is only read/written under its lock by rank `r`'s
//!   own `isend`s, which occur in `r`'s program order (plus collective
//!   completions, which are synchronization points every rank agrees on);
//! - `recv_free[r]` is only touched when rank `r` *matches* messages,
//!   which happens in `r`'s program order, and multi-message waits sort by
//!   `(ready_at, src)` before serializing;
//! - collectives synchronize on a per-call-index slot, so their inputs are
//!   a complete, order-independent set.
//!
//! Wall-clock thread scheduling therefore never changes any virtual time.
//! This argument is *independent of lock granularity*: the sharded backend
//! below splits the historical single `Mutex<Inner>` into per-pair mailbox
//! cells, per-rank NIC cells, and per-rank wakeup condvars (so a send to
//! rank 3 never wakes rank 7), while the single-lock backend preserves the
//! original structure as a differential-testing reference. Both compute the
//! identical timestamps; only contention and wakeup fan-out differ.
//!
//! ## Sharded waiting protocol (lost-wakeup freedom)
//!
//! Each rank owns a wakeup cell `(epoch: Mutex<u64>, cond: Condvar)`. A
//! receiver snapshots the epoch, scans its mailboxes, and — only if empty —
//! re-locks the epoch and blocks *iff the epoch is unchanged*. A depositor
//! pushes the message first, then bumps the destination's epoch under its
//! lock and signals. Any deposit racing the scan either lands before the
//! scan (found) or bumps the epoch (no block). Messages are only ever
//! *removed* by their destination rank, so a satisfied scan can never be
//! invalidated before the pop.

use crate::message::{InFlight, MsgKey};
use crate::model::NetworkModel;
use crate::time::SimTime;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Wall-clock guard against deadlocked simulated programs (mismatched
/// send/recv, missing collective participation). Generous: simulations are
/// CPU-bound and finish in milliseconds. Only the blocking (thread-per-
/// rank) paths need it — the resumable scheduler detects deadlock exactly,
/// by quiescence, with no timer (see `sched.rs`).
pub(crate) const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// What a state-change notification is about, for the resumable scheduler:
/// a deposit concerns exactly one destination rank; collective completion,
/// poisoning, and deadlock concern everyone still parked.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WakeEvent {
    One(usize),
    All,
}

/// Callback the resumable cluster installs to requeue parked ranks when
/// shared state changes. Unset (and free) in thread-per-rank mode.
pub(crate) type Waker = Arc<dyn Fn(WakeEvent) + Send + Sync>;

/// Which collective a slot belongs to — calling different collectives at
/// the same call index is a program error we detect instead of deadlocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollectiveKind {
    Alltoall,
    Barrier,
}

/// One rank's contribution to / share of a collective: its entry (or
/// completion) time and one payload per partner rank.
pub(crate) type RankShare = Option<(SimTime, Vec<Bytes>)>;

pub(crate) struct CollectiveSlot {
    pub kind: CollectiveKind,
    /// Per-rank contribution: (entry clock, payload-per-destination).
    pub inputs: Vec<RankShare>,
    pub arrived: usize,
    /// Filled by the last arriver.
    pub outputs: Option<Vec<RankShare>>,
    pub taken: usize,
}

/// One (src, dst) mailbox: FIFO queues per tag (MPI's non-overtaking rule
/// for identical envelopes). Tag counts per pair are tiny, so a linear
/// scan beats hashing — this retires the old `HashMap<MsgKey, _>` path.
#[derive(Default)]
struct Channel {
    queues: Vec<(i64, VecDeque<InFlight>)>,
}

impl Channel {
    fn push(&mut self, tag: i64, msg: InFlight) {
        match self.queues.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, q)) => q.push_back(msg),
            None => self.queues.push((tag, VecDeque::from([msg]))),
        }
    }

    fn pop(&mut self, tag: i64) -> Option<InFlight> {
        self.queues
            .iter_mut()
            .find(|(t, _)| *t == tag)
            .and_then(|(_, q)| q.pop_front())
    }

    fn available(&self, tag: i64) -> usize {
        self.queues
            .iter()
            .find(|(t, _)| *t == tag)
            .map_or(0, |(_, q)| q.len())
    }
}

/// One rank's NIC timelines — plus, for congested-family models, the
/// timelines of this rank's deterministic *share* of the contended link
/// (see `model.rs`: per-rank shares, not a cross-rank resource, so virtual
/// times stay a pure function of program order). The link fields are never
/// read or written for families without a link stage
/// (`NetworkModel::link_wire` returns `None`), which keeps the existing
/// families' arithmetic byte-identical.
#[derive(Default, Clone, Copy)]
struct Nic {
    send_free: SimTime,
    recv_free: SimTime,
    link_send_free: SimTime,
    link_recv_free: SimTime,
}

/// Per-rank wakeup cell: epoch counter + condvar (see module docs).
struct WaitCell {
    epoch: Mutex<u64>,
    cond: Condvar,
}

/// The scalable backend: state sharded so the common operations touch only
/// the cells they semantically own.
struct Sharded {
    /// `np * np` mailbox cells, indexed `src * np + dst`. A cell is locked
    /// only by its sender (deposit) and its receiver (match).
    channels: Vec<Mutex<Channel>>,
    /// Per-rank NIC timelines.
    nics: Vec<Mutex<Nic>>,
    /// Per-rank wakeup cells: a deposit to rank `d` wakes only rank `d`.
    waits: Vec<WaitCell>,
    /// Collective rendezvous is global by nature; it keeps its own lock so
    /// point-to-point traffic never contends with it.
    collectives: Mutex<HashMap<u64, CollectiveSlot>>,
    coll_cond: Condvar,
}

/// The historical single-lock backend, kept as the differential-testing
/// reference: same data structures, one global mutex, one condvar that
/// every deposit broadcasts on (the thundering herd the sharded backend
/// eliminates).
struct SingleLock {
    inner: Mutex<SingleInner>,
    cond: Condvar,
}

struct SingleInner {
    channels: Vec<Channel>,
    nics: Vec<Nic>,
    collectives: HashMap<u64, CollectiveSlot>,
}

enum Topology {
    Sharded(Sharded),
    SingleLock(SingleLock),
}

pub(crate) struct Shared {
    pub model: NetworkModel,
    pub np: usize,
    topo: Topology,
    /// Set when any rank panics, so peers blocked in waits fail fast
    /// instead of riding out the deadlock timeout.
    poisoned: AtomicBool,
    /// Set by the resumable scheduler when every live rank is parked on a
    /// poll that cannot progress (simulated deadlock, detected exactly).
    deadlocked: AtomicBool,
    /// Resumable-mode requeue hook; a no-op when unset.
    waker: OnceLock<Waker>,
}

impl Shared {
    pub fn new(np: usize, model: NetworkModel) -> Self {
        Shared {
            model,
            np,
            topo: Topology::Sharded(Sharded {
                channels: (0..np * np).map(|_| Mutex::new(Channel::default())).collect(),
                nics: (0..np).map(|_| Mutex::new(Nic::default())).collect(),
                waits: (0..np)
                    .map(|_| WaitCell {
                        epoch: Mutex::new(0),
                        cond: Condvar::new(),
                    })
                    .collect(),
                collectives: Mutex::new(HashMap::new()),
                coll_cond: Condvar::new(),
            }),
            poisoned: AtomicBool::new(false),
            deadlocked: AtomicBool::new(false),
            waker: OnceLock::new(),
        }
    }

    /// The single-global-lock reference build path (differential tests).
    pub fn new_single_lock(np: usize, model: NetworkModel) -> Self {
        Shared {
            model,
            np,
            topo: Topology::SingleLock(SingleLock {
                inner: Mutex::new(SingleInner {
                    channels: (0..np * np).map(|_| Channel::default()).collect(),
                    nics: vec![Nic::default(); np],
                    collectives: HashMap::new(),
                }),
                cond: Condvar::new(),
            }),
            poisoned: AtomicBool::new(false),
            deadlocked: AtomicBool::new(false),
            waker: OnceLock::new(),
        }
    }

    /// Install the resumable scheduler's requeue hook (once per run).
    pub fn set_waker(&self, w: Waker) {
        let _ = self.waker.set(w);
    }

    fn wake(&self, ev: WakeEvent) {
        if let Some(w) = self.waker.get() {
            w(ev);
        }
    }

    /// Mark the cluster failed (called while a rank unwinds) and wake
    /// every waiter so it can abort.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        match &self.topo {
            Topology::Sharded(s) => {
                for w in &s.waits {
                    *w.epoch.lock() += 1;
                    w.cond.notify_all();
                }
                // Notify under the collectives lock: a waiter sits between
                // its poisoned check and `wait_for` while holding it, so an
                // unsynchronized notify could be lost and the waiter would
                // ride out the full deadlock timeout.
                let _guard = s.collectives.lock();
                s.coll_cond.notify_all();
            }
            Topology::SingleLock(s) => {
                let _guard = s.inner.lock();
                s.cond.notify_all();
            }
        }
        self.wake(WakeEvent::All);
    }

    /// Resumable-mode deadlock: every live rank is parked and nothing can
    /// run. Flag it and requeue everyone, so each rank's next poll aborts
    /// with a per-rank diagnostic instead of hanging.
    pub fn mark_deadlocked(&self) {
        self.deadlocked.store(true, Ordering::SeqCst);
        self.wake(WakeEvent::All);
    }

    fn check_poisoned(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("aborted: another rank failed");
        }
    }

    /// Poll-path abort check: peers' panics and exact deadlock detection
    /// both surface here, at the same points the blocking paths check
    /// `check_poisoned` or time out.
    pub fn check_aborts(&self, rank: usize, what: &str) {
        self.check_poisoned();
        if self.deadlocked.load(Ordering::SeqCst) {
            panic!("simulated deadlock: rank {rank} is parked {what} and every other rank is parked too");
        }
    }

    fn cell(&self, s: &Sharded, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.np && dst < self.np && s.channels.len() == self.np * self.np);
        src * self.np + dst
    }

    /// Deposit a message already timed by the sender. Wakes only the
    /// destination rank.
    pub fn deposit(&self, key: MsgKey, msg: InFlight) {
        match &self.topo {
            Topology::Sharded(s) => {
                let idx = self.cell(s, key.src, key.dst);
                s.channels[idx].lock().push(key.tag, msg);
                let w = &s.waits[key.dst];
                *w.epoch.lock() += 1;
                w.cond.notify_one();
            }
            Topology::SingleLock(s) => {
                let mut inner = s.inner.lock();
                inner.channels[key.src * self.np + key.dst].push(key.tag, msg);
                drop(inner);
                s.cond.notify_all();
            }
        }
        self.wake(WakeEvent::One(key.dst));
    }

    /// Sender-side NIC booking: returns (depart, done) and advances the
    /// sender NIC timeline. `cpu_done` is the sender clock after CPU costs.
    /// Under a congested-family model the message then also occupies the
    /// sender's link share (NIC → link pipeline), so `done` — the moment
    /// the bytes have left the sender and its buffer is reusable — includes
    /// the link stage. This is the *shared* booking function: both engines
    /// (blocking calls and the `poll_*` halves) and both lock backends
    /// funnel through it, so the congestion arithmetic is identical by
    /// construction.
    pub fn book_send_nic(&self, rank: usize, cpu_done: SimTime, nbytes: usize) -> (SimTime, SimTime) {
        let wire = self.model.wire_at(rank, self.np, nbytes);
        let link = self.model.link_wire(self.np, nbytes);
        let book = |nic: &mut Nic| {
            let depart = nic.send_free.max(cpu_done);
            let mut done = depart + wire;
            nic.send_free = done;
            if let Some(lw) = link {
                let link_depart = nic.link_send_free.max(done);
                done = link_depart + lw;
                nic.link_send_free = done;
            }
            (depart, done)
        };
        match &self.topo {
            Topology::Sharded(s) => book(&mut s.nics[rank].lock()),
            Topology::SingleLock(s) => book(&mut s.inner.lock().nics[rank]),
        }
    }

    /// Receiver NIC serialization: a message *finishes* arriving no earlier
    /// than `ready_at`, and no earlier than one wire-time after the
    /// previous arrival finished (back-to-back messages from one sender hit
    /// exactly this bound, so single streams pay the wire only once).
    /// Congested-family models add a link-share drain stage *before* the
    /// NIC (link → NIC pipeline, mirroring the send side); like the send
    /// side, this function is shared by both engines and both backends.
    fn serialize_at_receiver(&self, nic: &mut Nic, dst: usize, msg: &InFlight) -> SimTime {
        let n = msg.nbytes();
        let mut floor = msg.ready_at;
        if let Some(lw) = self.model.link_wire(self.np, n) {
            floor = floor.max(nic.link_recv_free + lw);
            nic.link_recv_free = floor;
        }
        let drain = nic.recv_free + self.model.wire_at(dst, self.np, n);
        let arrival = floor.max(drain);
        nic.recv_free = arrival;
        arrival
    }

    /// Block until a message for `key` exists, pop it, and serialize it
    /// through the receiver NIC. Returns (arrival, payload).
    pub fn match_one(&self, key: MsgKey) -> (SimTime, Bytes) {
        match &self.topo {
            Topology::Sharded(s) => {
                let idx = self.cell(s, key.src, key.dst);
                let w = &s.waits[key.dst];
                loop {
                    self.check_poisoned();
                    let seen = *w.epoch.lock();
                    if let Some(msg) = s.channels[idx].lock().pop(key.tag) {
                        let arrival =
                            self.serialize_at_receiver(&mut s.nics[key.dst].lock(), key.dst, &msg);
                        return (arrival, msg.payload);
                    }
                    let mut epoch = w.epoch.lock();
                    if *epoch == seen
                        && w.cond.wait_for(&mut epoch, DEADLOCK_TIMEOUT).timed_out()
                    {
                        panic!(
                            "simulated deadlock: rank {} waited {:?} for a message from rank {} tag {} that never arrived",
                            key.dst, DEADLOCK_TIMEOUT, key.src, key.tag
                        );
                    }
                }
            }
            Topology::SingleLock(s) => {
                let mut inner = s.inner.lock();
                loop {
                    self.check_poisoned();
                    if let Some(msg) =
                        inner.channels[key.src * self.np + key.dst].pop(key.tag)
                    {
                        let arrival =
                            self.serialize_at_receiver(&mut inner.nics[key.dst], key.dst, &msg);
                        return (arrival, msg.payload);
                    }
                    if s.cond.wait_for(&mut inner, DEADLOCK_TIMEOUT).timed_out() {
                        panic!(
                            "simulated deadlock: rank {} waited {:?} for a message from rank {} tag {} that never arrived",
                            key.dst, DEADLOCK_TIMEOUT, key.src, key.tag
                        );
                    }
                }
            }
        }
    }

    /// How many of each distinct key `keys` requests (multiset need).
    /// Linear scan — wait lists are small and `MsgKey` no longer hashes.
    fn key_needs(keys: &[MsgKey]) -> Vec<(MsgKey, usize)> {
        let mut needs: Vec<(MsgKey, usize)> = Vec::with_capacity(keys.len());
        for k in keys {
            match needs.iter_mut().find(|(nk, _)| nk == k) {
                Some((_, n)) => *n += 1,
                None => needs.push((*k, 1)),
            }
        }
        needs
    }

    /// Block until *all* keys have a message, then match them in
    /// deterministic `(ready_at, src, tag)` order through the receiver NIC.
    /// Returns arrivals/payloads in the order of `keys`.
    pub fn match_all(&self, dst: usize, keys: &[MsgKey]) -> Vec<(SimTime, Bytes)> {
        debug_assert!(keys.iter().all(|k| k.dst == dst));
        let needs = Self::key_needs(keys);

        // Phase 1: wait until every key's need is met. Messages are only
        // removed by their destination (us), so a satisfied observation
        // stays satisfied.
        match &self.topo {
            Topology::Sharded(s) => {
                let w = &s.waits[dst];
                loop {
                    self.check_poisoned();
                    let seen = *w.epoch.lock();
                    let satisfied = needs.iter().all(|(k, need)| {
                        s.channels[self.cell(s, k.src, k.dst)]
                            .lock()
                            .available(k.tag)
                            >= *need
                    });
                    if satisfied {
                        break;
                    }
                    let mut epoch = w.epoch.lock();
                    if *epoch == seen
                        && w.cond.wait_for(&mut epoch, DEADLOCK_TIMEOUT).timed_out()
                    {
                        panic!(
                            "simulated deadlock: rank {dst} waited {:?} for {} posted receives",
                            DEADLOCK_TIMEOUT,
                            keys.len()
                        );
                    }
                }
                // Phase 2: pop in posted order, then serialize in
                // deterministic (ready_at, src, tag) order.
                let popped: Vec<InFlight> = keys
                    .iter()
                    .map(|k| {
                        s.channels[self.cell(s, k.src, k.dst)]
                            .lock()
                            .pop(k.tag)
                            .expect("availability checked above")
                    })
                    .collect();
                let mut nic = s.nics[dst].lock();
                self.finish_match_all(keys, popped, &mut nic)
            }
            Topology::SingleLock(s) => {
                let mut inner = s.inner.lock();
                loop {
                    self.check_poisoned();
                    let satisfied = needs.iter().all(|(k, need)| {
                        inner.channels[k.src * self.np + k.dst].available(k.tag) >= *need
                    });
                    if satisfied {
                        break;
                    }
                    if s.cond.wait_for(&mut inner, DEADLOCK_TIMEOUT).timed_out() {
                        panic!(
                            "simulated deadlock: rank {dst} waited {:?} for {} posted receives",
                            DEADLOCK_TIMEOUT,
                            keys.len()
                        );
                    }
                }
                let popped: Vec<InFlight> = keys
                    .iter()
                    .map(|k| {
                        inner.channels[k.src * self.np + k.dst]
                            .pop(k.tag)
                            .expect("availability checked above")
                    })
                    .collect();
                let inner = &mut *inner;
                self.finish_match_all(keys, popped, &mut inner.nics[dst])
            }
        }
    }

    /// Serialize already-popped messages through the receiver NIC in
    /// `(ready_at, src, tag)` order; return (arrival, payload) in the
    /// posted order of `keys` (which pairs positionally with `popped`).
    fn finish_match_all(
        &self,
        keys: &[MsgKey],
        popped: Vec<InFlight>,
        nic: &mut Nic,
    ) -> Vec<(SimTime, Bytes)> {
        let mut order: Vec<usize> = (0..popped.len()).collect();
        order.sort_by_key(|&j| (popped[j].ready_at, keys[j].src, keys[j].tag));
        let mut arrivals = vec![SimTime::ZERO; popped.len()];
        for &j in &order {
            arrivals[j] = self.serialize_at_receiver(nic, keys[j].dst, &popped[j]);
        }
        popped
            .into_iter()
            .zip(arrivals)
            .map(|(m, arr)| (arr, m.payload))
            .collect()
    }

    /// Non-blocking [`Shared::match_all`]: if every key's need is already
    /// met, pop and serialize exactly as the blocking path would (same
    /// deterministic `(ready_at, src, tag)` order, so the arrivals are
    /// byte-identical); otherwise return `None` without touching anything.
    /// Messages are only removed by their destination — the caller — so a
    /// satisfied availability check cannot be invalidated before the pops.
    pub fn try_match_all(&self, dst: usize, keys: &[MsgKey]) -> Option<Vec<(SimTime, Bytes)>> {
        debug_assert!(keys.iter().all(|k| k.dst == dst));
        let needs = Self::key_needs(keys);
        match &self.topo {
            Topology::Sharded(s) => {
                let satisfied = needs.iter().all(|(k, need)| {
                    s.channels[self.cell(s, k.src, k.dst)]
                        .lock()
                        .available(k.tag)
                        >= *need
                });
                if !satisfied {
                    return None;
                }
                let popped: Vec<InFlight> = keys
                    .iter()
                    .map(|k| {
                        s.channels[self.cell(s, k.src, k.dst)]
                            .lock()
                            .pop(k.tag)
                            .expect("availability checked above")
                    })
                    .collect();
                let mut nic = s.nics[dst].lock();
                Some(self.finish_match_all(keys, popped, &mut nic))
            }
            Topology::SingleLock(s) => {
                let mut inner = s.inner.lock();
                let satisfied = needs.iter().all(|(k, need)| {
                    inner.channels[k.src * self.np + k.dst].available(k.tag) >= *need
                });
                if !satisfied {
                    return None;
                }
                let popped: Vec<InFlight> = keys
                    .iter()
                    .map(|k| {
                        inner.channels[k.src * self.np + k.dst]
                            .pop(k.tag)
                            .expect("availability checked above")
                    })
                    .collect();
                let inner = &mut *inner;
                Some(self.finish_match_all(keys, popped, &mut inner.nics[dst]))
            }
        }
    }

    /// Whether a collective slot for `call_idx` has been registered by any
    /// rank (test rendezvous hook — lets the mismatch test wait
    /// deterministically instead of sleeping).
    #[cfg(test)]
    pub(crate) fn collective_registered(&self, call_idx: u64) -> bool {
        match &self.topo {
            Topology::Sharded(s) => s.collectives.lock().contains_key(&call_idx),
            Topology::SingleLock(s) => s.inner.lock().collectives.contains_key(&call_idx),
        }
    }

    /// Register `rank`'s contribution to a collective. The last arriver
    /// computes the completion time, redistributes payloads, applies the
    /// alltoall NIC occupation, and wakes everyone — all under the
    /// collectives lock, so any rank that later observes the outputs (via
    /// `take_output` under the same lock) also observes the NIC updates.
    /// `call_idx` is the rank's collective sequence number; `entry` its
    /// clock at the call; `payload_per_dst` one payload per destination
    /// rank (empty vec for barriers).
    pub fn collective_begin(
        &self,
        kind: CollectiveKind,
        call_idx: u64,
        rank: usize,
        entry: SimTime,
        payload_per_dst: Vec<Bytes>,
    ) {
        let np = self.np;
        match &self.topo {
            Topology::Sharded(s) => {
                let mut colls = s.collectives.lock();
                let arrived_all =
                    Self::join_slot(&mut colls, kind, call_idx, rank, entry, payload_per_dst, np);
                if arrived_all {
                    let completion = {
                        let slot = colls.get_mut(&call_idx).expect("slot exists");
                        compute_collective(&self.model, np, kind, slot)
                    };
                    if kind == CollectiveKind::Alltoall {
                        // The exchange occupies every NIC until completion.
                        // Safe to touch peers' cells here: every rank is
                        // parked inside this same collective. Lock order is
                        // collectives -> nic, and no path acquires them in
                        // the opposite order.
                        for nic in &s.nics {
                            let mut nic = nic.lock();
                            nic.send_free = nic.send_free.max(completion);
                            nic.recv_free = nic.recv_free.max(completion);
                            nic.link_send_free = nic.link_send_free.max(completion);
                            nic.link_recv_free = nic.link_recv_free.max(completion);
                        }
                    }
                    s.coll_cond.notify_all();
                    drop(colls);
                    self.wake(WakeEvent::All);
                }
            }
            Topology::SingleLock(s) => {
                let mut inner = s.inner.lock();
                let arrived_all = Self::join_slot(
                    &mut inner.collectives,
                    kind,
                    call_idx,
                    rank,
                    entry,
                    payload_per_dst,
                    np,
                );
                if arrived_all {
                    let completion = {
                        let slot = inner.collectives.get_mut(&call_idx).expect("slot exists");
                        compute_collective(&self.model, np, kind, slot)
                    };
                    if kind == CollectiveKind::Alltoall {
                        for nic in &mut inner.nics {
                            nic.send_free = nic.send_free.max(completion);
                            nic.recv_free = nic.recv_free.max(completion);
                            nic.link_send_free = nic.link_send_free.max(completion);
                            nic.link_recv_free = nic.link_recv_free.max(completion);
                        }
                    }
                    s.cond.notify_all();
                    drop(inner);
                    self.wake(WakeEvent::All);
                }
            }
        }
    }

    /// Non-blocking collective completion check: take `rank`'s share if the
    /// last arriver has computed it. The values are whatever that single
    /// computation produced, so polling and blocking agree byte-for-byte.
    pub fn try_collective_take(&self, call_idx: u64, rank: usize) -> Option<(SimTime, Vec<Bytes>)> {
        match &self.topo {
            Topology::Sharded(s) => {
                Self::take_output(&mut s.collectives.lock(), call_idx, rank, self.np)
            }
            Topology::SingleLock(s) => {
                Self::take_output(&mut s.inner.lock().collectives, call_idx, rank, self.np)
            }
        }
    }

    /// Blocking collective rendezvous in one call: join, then wait for the
    /// last arriver. Production paths compose `collective_begin` +
    /// `collective_wait` (Comm owns the in-between state); tests use this.
    #[cfg(test)]
    pub fn collective(
        &self,
        kind: CollectiveKind,
        call_idx: u64,
        rank: usize,
        entry: SimTime,
        payload_per_dst: Vec<Bytes>,
    ) -> (SimTime, Vec<Bytes>) {
        self.collective_begin(kind, call_idx, rank, entry, payload_per_dst);
        self.collective_wait(kind, call_idx, rank)
    }

    /// Block until the collective joined at `call_idx` completes and take
    /// this rank's share (thread-per-rank mode).
    pub fn collective_wait(
        &self,
        kind: CollectiveKind,
        call_idx: u64,
        rank: usize,
    ) -> (SimTime, Vec<Bytes>) {
        let np = self.np;
        match &self.topo {
            Topology::Sharded(s) => {
                let mut colls = s.collectives.lock();
                loop {
                    self.check_poisoned();
                    if let Some(out) = Self::take_output(&mut colls, call_idx, rank, np) {
                        return out;
                    }
                    if s.coll_cond
                        .wait_for(&mut colls, DEADLOCK_TIMEOUT)
                        .timed_out()
                    {
                        panic!(
                            "simulated deadlock: rank {rank} waited {:?} in collective {call_idx} ({kind:?})",
                            DEADLOCK_TIMEOUT
                        );
                    }
                }
            }
            Topology::SingleLock(s) => {
                let mut inner = s.inner.lock();
                loop {
                    self.check_poisoned();
                    if let Some(out) =
                        Self::take_output(&mut inner.collectives, call_idx, rank, np)
                    {
                        return out;
                    }
                    if s.cond.wait_for(&mut inner, DEADLOCK_TIMEOUT).timed_out() {
                        panic!(
                            "simulated deadlock: rank {rank} waited {:?} in collective {call_idx} ({kind:?})",
                            DEADLOCK_TIMEOUT
                        );
                    }
                }
            }
        }
    }

    /// Register `rank`'s contribution; true when it was the last arriver.
    #[allow(clippy::too_many_arguments)]
    fn join_slot(
        collectives: &mut HashMap<u64, CollectiveSlot>,
        kind: CollectiveKind,
        call_idx: u64,
        rank: usize,
        entry: SimTime,
        payload_per_dst: Vec<Bytes>,
        np: usize,
    ) -> bool {
        let slot = collectives.entry(call_idx).or_insert_with(|| CollectiveSlot {
            kind,
            inputs: vec![None; np],
            arrived: 0,
            outputs: None,
            taken: 0,
        });
        assert_eq!(
            slot.kind, kind,
            "collective mismatch at call {call_idx}: rank {rank} called {kind:?}, others {:?}",
            slot.kind
        );
        assert!(
            slot.inputs[rank].is_none(),
            "rank {rank} joined collective {call_idx} twice"
        );
        slot.inputs[rank] = Some((entry, payload_per_dst));
        slot.arrived += 1;
        slot.arrived == np
    }

    /// Take `rank`'s share of a completed collective, if ready.
    fn take_output(
        collectives: &mut HashMap<u64, CollectiveSlot>,
        call_idx: u64,
        rank: usize,
        np: usize,
    ) -> Option<(SimTime, Vec<Bytes>)> {
        let slot = collectives.get_mut(&call_idx).expect("slot exists");
        let outputs = slot.outputs.as_mut()?;
        let (completion, payloads) = outputs[rank]
            .take()
            .expect("each rank takes its output once");
        slot.taken += 1;
        if slot.taken == np {
            collectives.remove(&call_idx);
        }
        Some((completion, payloads))
    }
}

/// Last arriver computes completion time and redistributes payloads.
///
/// Timing (see `model.rs` docs): all ranks synchronize at
/// `start = max(entryᵢ)`; each rank then performs `NP-1` paired
/// send+receive exchanges, fully serialized on its CPU *and* NIC (a
/// blocking alltoall exposes every cost — this is exactly the baseline the
/// pre-push transformation beats), plus one wire latency:
///
/// ```text
/// completion = start + (NP-1)·max over ranks r of
///                  (send_cpu_at(r,S) + recv_cpu_at(r,S) + bottleneck_wire(r,S)) + L
/// ```
///
/// where `bottleneck_wire` is the slower of the rank's NIC and (for
/// congested families) its link share. For uniform models every rank's
/// term is identical and the formula reduces exactly to the historical
/// `(NP-1)·(send_cpu(S) + recv_cpu(S) + wire(S))`. The slowest rank bounds
/// a synchronizing exchange, hence the max — the heterogeneous column's
/// whole point.
fn compute_collective(
    model: &NetworkModel,
    np: usize,
    kind: CollectiveKind,
    slot: &mut CollectiveSlot,
) -> SimTime {
    let start = slot
        .inputs
        .iter()
        .map(|i| i.as_ref().expect("all arrived").0)
        .fold(SimTime::ZERO, SimTime::max);

    let completion = match kind {
        CollectiveKind::Barrier => {
            let overhead = (0..np)
                .map(|r| model.overhead_at(r, np))
                .fold(SimTime::ZERO, SimTime::max);
            start + overhead
        }
        CollectiveKind::Alltoall => {
            // Per-partner payload size (uniform by MPI_ALLTOALL semantics;
            // use the max for robustness).
            let s = slot
                .inputs
                .iter()
                .flat_map(|i| i.as_ref().expect("all arrived").1.iter())
                .map(Bytes::len)
                .max()
                .unwrap_or(0);
            let pairs = (np - 1) as u64;
            let per_pair = (0..np)
                .map(|r| {
                    let wire = model.effective_wire(np, s).max(model.wire_at(r, np, s));
                    model.send_cpu_at(r, np, s) + model.recv_cpu_at(r, np, s) + wire
                })
                .fold(SimTime::ZERO, SimTime::max);
            start + SimTime(per_pair.as_ns() * pairs) + model.latency
        }
    };

    // Redistribute: output[rank][src] = input[src][rank]. `Bytes` clones
    // are Arc bumps of one shared buffer, not copies.
    let mut outputs: Vec<RankShare> = Vec::with_capacity(np);
    for rank in 0..np {
        let payloads: Vec<Bytes> = match kind {
            CollectiveKind::Barrier => Vec::new(),
            CollectiveKind::Alltoall => (0..np)
                .map(|src| {
                    slot.inputs[src]
                        .as_ref()
                        .expect("all arrived")
                        .1
                        .get(rank)
                        .cloned()
                        .unwrap_or_default()
                })
                .collect(),
        };
        outputs.push(Some((completion, payloads)));
    }
    slot.outputs = Some(outputs);
    completion
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends(np: usize) -> [Shared; 2] {
        [
            Shared::new(np, NetworkModel::mpich_gm()),
            Shared::new_single_lock(np, NetworkModel::mpich_gm()),
        ]
    }

    #[test]
    fn deposit_and_match_one() {
        for s in backends(2) {
            let key = MsgKey { src: 0, dst: 1, tag: 5 };
            s.deposit(
                key,
                InFlight {
                    ready_at: SimTime(1000),
                    payload: Bytes::from(vec![1, 2, 3]),
                },
            );
            let (arrival, payload) = s.match_one(key);
            // wire(3B) ≈ 12ns under GM; arrival = max(1000, 0 + 12) = 1000.
            assert_eq!(arrival, SimTime(1000));
            assert_eq!(payload.as_ref(), &[1, 2, 3]);
        }
    }

    #[test]
    fn receiver_nic_serializes_incast() {
        for s in backends(3) {
            let n = 1000usize; // wire = 4000ns under GM
            for src in [0usize, 1] {
                s.deposit(
                    MsgKey { src, dst: 2, tag: 1 },
                    InFlight {
                        ready_at: SimTime(10_000),
                        payload: Bytes::from(vec![0u8; n]),
                    },
                );
            }
            let out = s.match_all(
                2,
                &[
                    MsgKey { src: 0, dst: 2, tag: 1 },
                    MsgKey { src: 1, dst: 2, tag: 1 },
                ],
            );
            // First (by src tiebreak) arrives at max(10_000, 0+4000)=10_000;
            // second at max(10_000, 10_000+4000)=14_000.
            assert_eq!(out[0].0, SimTime(10_000));
            assert_eq!(out[1].0, SimTime(14_000));
        }
    }

    #[test]
    fn back_to_back_single_stream_not_double_charged() {
        for s in backends(2) {
            let n = 1000usize; // wire 4000ns
            // Sender NIC spaced these at 4000ns already.
            for (i, ready) in [(0u8, 14_000u64), (1, 18_000)] {
                s.deposit(
                    MsgKey { src: 0, dst: 1, tag: i as i64 },
                    InFlight {
                        ready_at: SimTime(ready),
                        payload: Bytes::from(vec![i; n]),
                    },
                );
            }
            let (a1, _) = s.match_one(MsgKey { src: 0, dst: 1, tag: 0 });
            let (a2, _) = s.match_one(MsgKey { src: 0, dst: 1, tag: 1 });
            assert_eq!(a1, SimTime(14_000));
            assert_eq!(a2, SimTime(18_000)); // no extra receiver penalty
        }
    }

    #[test]
    fn fifo_within_key() {
        for s in backends(2) {
            let key = MsgKey { src: 0, dst: 1, tag: 0 };
            for v in [10u8, 20] {
                s.deposit(
                    key,
                    InFlight {
                        ready_at: SimTime(v as u64),
                        payload: Bytes::from(vec![v]),
                    },
                );
            }
            assert_eq!(s.match_one(key).1.as_ref(), &[10]);
            assert_eq!(s.match_one(key).1.as_ref(), &[20]);
        }
    }

    #[test]
    fn book_send_nic_serializes() {
        for s in backends(2) {
            let (d1, f1) = s.book_send_nic(0, SimTime(100), 1000);
            assert_eq!(d1, SimTime(100));
            assert_eq!(f1, SimTime(4100));
            // Second send posted earlier in CPU time still queues behind.
            let (d2, f2) = s.book_send_nic(0, SimTime(50), 500);
            assert_eq!(d2, SimTime(4100));
            assert_eq!(f2, SimTime(6100));
        }
    }

    #[test]
    fn collective_barrier_synchronizes_clocks() {
        for shared in backends(3) {
            let s = std::sync::Arc::new(shared);
            let entries = [SimTime(100), SimTime(5000), SimTime(300)];
            let mut handles = Vec::new();
            for (r, e) in entries.into_iter().enumerate() {
                let s = s.clone();
                handles.push(std::thread::spawn(move || {
                    s.collective(CollectiveKind::Barrier, 0, r, e, Vec::new())
                        .0
                }));
            }
            let done: Vec<SimTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let expect = SimTime(5000) + NetworkModel::mpich_gm().overhead;
            assert!(done.iter().all(|&t| t == expect));
        }
    }

    #[test]
    fn collective_alltoall_redistributes() {
        for shared in backends(2) {
            let s = std::sync::Arc::new(shared);
            let mk = |r: usize| -> Vec<Bytes> {
                vec![
                    Bytes::from(vec![(10 * r) as u8]),
                    Bytes::from(vec![(10 * r + 1) as u8]),
                ]
            };
            let mut handles = Vec::new();
            for r in 0..2 {
                let s = s.clone();
                let payload = mk(r);
                handles.push(std::thread::spawn(move || {
                    s.collective(CollectiveKind::Alltoall, 0, r, SimTime(0), payload)
                        .1
                }));
            }
            let outs: Vec<Vec<Bytes>> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            // rank 0 receives input[src][0]: [0], [10]
            assert_eq!(outs[0][0].as_ref(), &[0]);
            assert_eq!(outs[0][1].as_ref(), &[10]);
            // rank 1 receives input[src][1]: [1], [11]
            assert_eq!(outs[1][0].as_ref(), &[1]);
            assert_eq!(outs[1][1].as_ref(), &[11]);
        }
    }

    #[test]
    #[should_panic(expected = "collective mismatch")]
    fn collective_kind_mismatch_detected() {
        let s = std::sync::Arc::new(Shared::new(2, NetworkModel::mpich_gm()));
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            s2.collective(CollectiveKind::Alltoall, 0, 1, SimTime(0), vec![Bytes::new(); 2])
        });
        // Deterministic rendezvous: wait until the other thread registered
        // the slot (no wall-clock sleep), then join with the wrong kind.
        while !s.collective_registered(0) {
            std::thread::yield_now();
        }
        let _ = s.collective(CollectiveKind::Barrier, 0, 0, SimTime(0), Vec::new());
        let _ = h.join();
    }

    /// The sharded and single-lock backends book identical timestamps for
    /// an interleaved point-to-point pattern.
    #[test]
    fn backends_agree_on_timestamps() {
        let run = |s: Shared| -> Vec<SimTime> {
            let mut out = Vec::new();
            let (_, f1) = s.book_send_nic(0, SimTime(100), 1000);
            s.deposit(
                MsgKey { src: 0, dst: 1, tag: 0 },
                InFlight { ready_at: f1, payload: Bytes::from(vec![1u8; 1000]) },
            );
            let (_, f2) = s.book_send_nic(0, SimTime(200), 500);
            s.deposit(
                MsgKey { src: 0, dst: 1, tag: 1 },
                InFlight { ready_at: f2, payload: Bytes::from(vec![2u8; 500]) },
            );
            out.push(s.match_one(MsgKey { src: 0, dst: 1, tag: 0 }).0);
            out.push(s.match_one(MsgKey { src: 0, dst: 1, tag: 1 }).0);
            out
        };
        let [a, b] = backends(2);
        assert_eq!(run(a), run(b));
    }
}
