//! Shared cluster state: mailboxes, NIC timelines, and collective slots.
//!
//! Determinism argument (DESIGN.md §2): every timestamp is a pure function
//! of per-rank program order —
//!
//! - `send_nic_free[r]` is only read/written under the lock by rank `r`'s
//!   own `isend`s, which occur in `r`'s program order;
//! - `recv_nic_free[r]` is only touched when rank `r` *matches* messages,
//!   which happens in `r`'s program order, and multi-message waits sort by
//!   `(ready_at, src)` before serializing;
//! - collectives synchronize on a per-call-index slot, so their inputs are
//!   a complete, order-independent set.
//!
//! Wall-clock thread scheduling therefore never changes any virtual time.

use crate::message::{InFlight, MsgKey};
use crate::model::NetworkModel;
use crate::time::SimTime;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Wall-clock guard against deadlocked simulated programs (mismatched
/// send/recv, missing collective participation). Generous: simulations are
/// CPU-bound and finish in milliseconds.
pub(crate) const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Which collective a slot belongs to — calling different collectives at
/// the same call index is a program error we detect instead of deadlocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollectiveKind {
    Alltoall,
    Barrier,
}

/// One rank's contribution to / share of a collective: its entry (or
/// completion) time and one payload per partner rank.
pub(crate) type RankShare = Option<(SimTime, Vec<Bytes>)>;

pub(crate) struct CollectiveSlot {
    pub kind: CollectiveKind,
    /// Per-rank contribution: (entry clock, payload-per-destination).
    pub inputs: Vec<RankShare>,
    pub arrived: usize,
    /// Filled by the last arriver.
    pub outputs: Option<Vec<RankShare>>,
    pub taken: usize,
}

pub(crate) struct Inner {
    pub mailboxes: HashMap<MsgKey, VecDeque<InFlight>>,
    pub send_nic_free: Vec<SimTime>,
    pub recv_nic_free: Vec<SimTime>,
    /// Keyed by per-rank collective call index (all ranks must agree).
    pub collectives: HashMap<u64, CollectiveSlot>,
}

pub(crate) struct Shared {
    pub model: NetworkModel,
    pub np: usize,
    pub inner: Mutex<Inner>,
    pub cond: Condvar,
    /// Set when any rank panics, so peers blocked in waits fail fast
    /// instead of riding out the deadlock timeout.
    poisoned: AtomicBool,
}

impl Shared {
    pub fn new(np: usize, model: NetworkModel) -> Self {
        Shared {
            model,
            np,
            inner: Mutex::new(Inner {
                mailboxes: HashMap::new(),
                send_nic_free: vec![SimTime::ZERO; np],
                recv_nic_free: vec![SimTime::ZERO; np],
                collectives: HashMap::new(),
            }),
            cond: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the cluster failed (called while a rank unwinds) and wake
    /// every waiter so it can abort.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        self.cond.notify_all();
    }

    fn check_poisoned(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("aborted: another rank failed");
        }
    }

    /// Deposit a message already timed by the sender.
    pub fn deposit(&self, key: MsgKey, msg: InFlight) {
        let mut inner = self.inner.lock();
        inner.mailboxes.entry(key).or_default().push_back(msg);
        drop(inner);
        self.cond.notify_all();
    }

    /// Sender-side NIC booking: returns (depart, nic_done) and advances the
    /// sender NIC timeline. `cpu_done` is the sender clock after CPU costs.
    pub fn book_send_nic(&self, rank: usize, cpu_done: SimTime, nbytes: usize) -> (SimTime, SimTime) {
        let mut inner = self.inner.lock();
        let depart = inner.send_nic_free[rank].max(cpu_done);
        let done = depart + self.model.wire(nbytes);
        inner.send_nic_free[rank] = done;
        (depart, done)
    }

    /// Block until a message for `key` exists, pop it, and serialize it
    /// through the receiver NIC. Returns (arrival, payload).
    pub fn match_one(&self, key: MsgKey) -> (SimTime, Bytes) {
        let mut inner = self.inner.lock();
        loop {
            self.check_poisoned();
            if let Some(q) = inner.mailboxes.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    let arrival = self.serialize_at_receiver(&mut inner, key.dst, &msg);
                    return (arrival, msg.payload);
                }
            }
            if self
                .cond
                .wait_for(&mut inner, DEADLOCK_TIMEOUT)
                .timed_out()
            {
                panic!(
                    "simulated deadlock: rank {} waited {:?} for a message from rank {} tag {} that never arrived",
                    key.dst, DEADLOCK_TIMEOUT, key.src, key.tag
                );
            }
        }
    }

    /// Block until *all* keys have a message, then match them in
    /// deterministic `(ready_at, src, tag)` order through the receiver NIC.
    /// Returns arrivals/payloads in the order of `keys`.
    pub fn match_all(&self, dst: usize, keys: &[MsgKey]) -> Vec<(SimTime, Bytes)> {
        let mut inner = self.inner.lock();
        loop {
            self.check_poisoned();
            let mut have = 0usize;
            let mut counts: HashMap<MsgKey, usize> = HashMap::new();
            for k in keys {
                debug_assert_eq!(k.dst, dst);
                let need = counts.entry(*k).or_insert(0);
                *need += 1;
                let avail = inner.mailboxes.get(k).map_or(0, VecDeque::len);
                if avail >= *need {
                    have += 1;
                }
            }
            if have == keys.len() {
                break;
            }
            if self
                .cond
                .wait_for(&mut inner, DEADLOCK_TIMEOUT)
                .timed_out()
            {
                panic!(
                    "simulated deadlock: rank {dst} waited {:?} for {} posted receives",
                    DEADLOCK_TIMEOUT,
                    keys.len()
                );
            }
        }

        // Pop in posted order, remembering each message's queue position.
        let mut popped: Vec<(usize, MsgKey, InFlight)> = Vec::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            let q = inner.mailboxes.get_mut(k).expect("checked above");
            let msg = q.pop_front().expect("checked above");
            popped.push((i, *k, msg));
        }
        // Serialize through the receiver NIC in (ready_at, src, tag) order.
        let mut order: Vec<usize> = (0..popped.len()).collect();
        order.sort_by_key(|&j| {
            let (_, k, ref m) = popped[j];
            (m.ready_at, k.src, k.tag)
        });
        let mut arrivals = vec![SimTime::ZERO; popped.len()];
        for &j in &order {
            let (_, _, ref m) = popped[j];
            let arrival = self.serialize_at_receiver(&mut inner, dst, m);
            arrivals[j] = arrival;
        }
        drop(inner);

        // `popped` was pushed in ascending posted order (the enumerate
        // above) and never reordered — `order` indexes it instead — so it
        // already pairs positionally with `arrivals`.
        let mut out: Vec<(SimTime, Bytes)> = Vec::with_capacity(keys.len());
        for ((_, _, m), arr) in popped.into_iter().zip(arrivals) {
            out.push((arr, m.payload));
        }
        out
    }

    /// Receiver NIC serialization: a message *finishes* arriving no earlier
    /// than `ready_at`, and no earlier than one wire-time after the
    /// previous arrival finished (back-to-back messages from one sender hit
    /// exactly this bound, so single streams pay the wire only once).
    fn serialize_at_receiver(&self, inner: &mut Inner, dst: usize, msg: &InFlight) -> SimTime {
        let drain = inner.recv_nic_free[dst] + self.model.wire(msg.nbytes());
        let arrival = msg.ready_at.max(drain);
        inner.recv_nic_free[dst] = arrival;
        arrival
    }

    /// Collective rendezvous. `call_idx` is the rank's collective sequence
    /// number; `entry` its clock at the call; `payload_per_dst` one payload
    /// per destination rank (empty vec for barriers).
    ///
    /// Returns `(completion, payload_per_src)`.
    pub fn collective(
        &self,
        kind: CollectiveKind,
        call_idx: u64,
        rank: usize,
        entry: SimTime,
        payload_per_dst: Vec<Bytes>,
    ) -> (SimTime, Vec<Bytes>) {
        let np = self.np;
        let mut inner = self.inner.lock();
        let arrived_all = {
            let slot = inner
                .collectives
                .entry(call_idx)
                .or_insert_with(|| CollectiveSlot {
                    kind,
                    inputs: vec![None; np],
                    arrived: 0,
                    outputs: None,
                    taken: 0,
                });
            assert_eq!(
                slot.kind, kind,
                "collective mismatch at call {call_idx}: rank {rank} called {kind:?}, others {:?}",
                slot.kind
            );
            assert!(
                slot.inputs[rank].is_none(),
                "rank {rank} joined collective {call_idx} twice"
            );
            slot.inputs[rank] = Some((entry, payload_per_dst));
            slot.arrived += 1;
            slot.arrived == np
        };

        if arrived_all {
            let completion = {
                let slot = inner.collectives.get_mut(&call_idx).expect("slot exists");
                compute_collective(&self.model, np, kind, slot)
            };
            if kind == CollectiveKind::Alltoall {
                // The exchange occupies every NIC until completion.
                for r in 0..np {
                    inner.send_nic_free[r] = inner.send_nic_free[r].max(completion);
                    inner.recv_nic_free[r] = inner.recv_nic_free[r].max(completion);
                }
            }
            self.cond.notify_all();
        }

        // Wait for outputs.
        loop {
            self.check_poisoned();
            {
                let slot = inner.collectives.get_mut(&call_idx).expect("slot exists");
                if let Some(outputs) = &mut slot.outputs {
                    let (completion, payloads) = outputs[rank]
                        .take()
                        .expect("each rank takes its output once");
                    slot.taken += 1;
                    if slot.taken == np {
                        inner.collectives.remove(&call_idx);
                    }
                    return (completion, payloads);
                }
            }
            if self
                .cond
                .wait_for(&mut inner, DEADLOCK_TIMEOUT)
                .timed_out()
            {
                panic!(
                    "simulated deadlock: rank {rank} waited {:?} in collective {call_idx} ({kind:?})",
                    DEADLOCK_TIMEOUT
                );
            }
        }
    }
}

/// Last arriver computes completion time and redistributes payloads.
///
/// Timing (see `model.rs` docs): all ranks synchronize at
/// `start = max(entryᵢ)`; each rank then performs `NP-1` paired
/// send+receive exchanges, fully serialized on its CPU *and* NIC (a
/// blocking alltoall exposes every cost — this is exactly the baseline the
/// pre-push transformation beats), plus one wire latency:
///
/// ```text
/// completion = start + (NP-1)·(send_cpu(S) + recv_cpu(S) + wire(S)) + L
/// ```
fn compute_collective(
    model: &NetworkModel,
    np: usize,
    kind: CollectiveKind,
    slot: &mut CollectiveSlot,
) -> SimTime {
    let start = slot
        .inputs
        .iter()
        .map(|i| i.as_ref().expect("all arrived").0)
        .fold(SimTime::ZERO, SimTime::max);

    let completion = match kind {
        CollectiveKind::Barrier => start + model.overhead,
        CollectiveKind::Alltoall => {
            // Per-partner payload size (uniform by MPI_ALLTOALL semantics;
            // use the max for robustness).
            let s = slot
                .inputs
                .iter()
                .flat_map(|i| i.as_ref().expect("all arrived").1.iter())
                .map(Bytes::len)
                .max()
                .unwrap_or(0);
            let pairs = (np - 1) as u64;
            let per_pair = model.send_cpu(s) + model.recv_cpu(s) + model.wire(s);
            start + SimTime(per_pair.as_ns() * pairs) + model.latency
        }
    };

    // Redistribute: output[rank][src] = input[src][rank].
    let mut outputs: Vec<RankShare> = Vec::with_capacity(np);
    for rank in 0..np {
        let payloads: Vec<Bytes> = match kind {
            CollectiveKind::Barrier => Vec::new(),
            CollectiveKind::Alltoall => (0..np)
                .map(|src| {
                    slot.inputs[src]
                        .as_ref()
                        .expect("all arrived")
                        .1
                        .get(rank)
                        .cloned()
                        .unwrap_or_default()
                })
                .collect(),
        };
        outputs.push(Some((completion, payloads)));
    }
    slot.outputs = Some(outputs);
    completion
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(np: usize) -> Shared {
        Shared::new(np, NetworkModel::mpich_gm())
    }

    #[test]
    fn deposit_and_match_one() {
        let s = shared(2);
        let key = MsgKey { src: 0, dst: 1, tag: 5 };
        s.deposit(
            key,
            InFlight {
                ready_at: SimTime(1000),
                payload: Bytes::from(vec![1, 2, 3]),
            },
        );
        let (arrival, payload) = s.match_one(key);
        // wire(3B) ≈ 12ns under GM; arrival = max(1000, 0 + 12) = 1000.
        assert_eq!(arrival, SimTime(1000));
        assert_eq!(payload.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn receiver_nic_serializes_incast() {
        let s = shared(3);
        let n = 1000usize; // wire = 4000ns under GM
        for src in [0usize, 1] {
            s.deposit(
                MsgKey { src, dst: 2, tag: 1 },
                InFlight {
                    ready_at: SimTime(10_000),
                    payload: Bytes::from(vec![0u8; n]),
                },
            );
        }
        let out = s.match_all(
            2,
            &[
                MsgKey { src: 0, dst: 2, tag: 1 },
                MsgKey { src: 1, dst: 2, tag: 1 },
            ],
        );
        // First (by src tiebreak) arrives at max(10_000, 0+4000)=10_000;
        // second at max(10_000, 10_000+4000)=14_000.
        assert_eq!(out[0].0, SimTime(10_000));
        assert_eq!(out[1].0, SimTime(14_000));
    }

    #[test]
    fn back_to_back_single_stream_not_double_charged() {
        let s = shared(2);
        let n = 1000usize; // wire 4000ns
        // Sender NIC spaced these at 4000ns already.
        for (i, ready) in [(0u8, 14_000u64), (1, 18_000)] {
            s.deposit(
                MsgKey { src: 0, dst: 1, tag: i as i64 },
                InFlight {
                    ready_at: SimTime(ready),
                    payload: Bytes::from(vec![i; n]),
                },
            );
        }
        let (a1, _) = s.match_one(MsgKey { src: 0, dst: 1, tag: 0 });
        let (a2, _) = s.match_one(MsgKey { src: 0, dst: 1, tag: 1 });
        assert_eq!(a1, SimTime(14_000));
        assert_eq!(a2, SimTime(18_000)); // no extra receiver penalty
    }

    #[test]
    fn fifo_within_key() {
        let s = shared(2);
        let key = MsgKey { src: 0, dst: 1, tag: 0 };
        for v in [10u8, 20] {
            s.deposit(
                key,
                InFlight {
                    ready_at: SimTime(v as u64),
                    payload: Bytes::from(vec![v]),
                },
            );
        }
        assert_eq!(s.match_one(key).1.as_ref(), &[10]);
        assert_eq!(s.match_one(key).1.as_ref(), &[20]);
    }

    #[test]
    fn book_send_nic_serializes() {
        let s = shared(2);
        let (d1, f1) = s.book_send_nic(0, SimTime(100), 1000);
        assert_eq!(d1, SimTime(100));
        assert_eq!(f1, SimTime(4100));
        // Second send posted earlier in CPU time still queues behind.
        let (d2, f2) = s.book_send_nic(0, SimTime(50), 500);
        assert_eq!(d2, SimTime(4100));
        assert_eq!(f2, SimTime(6100));
    }

    #[test]
    fn collective_barrier_synchronizes_clocks() {
        let s = std::sync::Arc::new(shared(3));
        let entries = [SimTime(100), SimTime(5000), SimTime(300)];
        let mut handles = Vec::new();
        for (r, e) in entries.into_iter().enumerate() {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                s.collective(CollectiveKind::Barrier, 0, r, e, Vec::new())
                    .0
            }));
        }
        let done: Vec<SimTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let expect = SimTime(5000) + NetworkModel::mpich_gm().overhead;
        assert!(done.iter().all(|&t| t == expect));
    }

    #[test]
    fn collective_alltoall_redistributes() {
        let s = std::sync::Arc::new(shared(2));
        let mk = |r: usize| -> Vec<Bytes> {
            vec![
                Bytes::from(vec![(10 * r) as u8]),
                Bytes::from(vec![(10 * r + 1) as u8]),
            ]
        };
        let mut handles = Vec::new();
        for r in 0..2 {
            let s = s.clone();
            let payload = mk(r);
            handles.push(std::thread::spawn(move || {
                s.collective(CollectiveKind::Alltoall, 0, r, SimTime(0), payload)
                    .1
            }));
        }
        let outs: Vec<Vec<Bytes>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // rank 0 receives input[src][0]: [0], [10]
        assert_eq!(outs[0][0].as_ref(), &[0]);
        assert_eq!(outs[0][1].as_ref(), &[10]);
        // rank 1 receives input[src][1]: [1], [11]
        assert_eq!(outs[1][0].as_ref(), &[1]);
        assert_eq!(outs[1][1].as_ref(), &[11]);
    }

    #[test]
    #[should_panic(expected = "collective mismatch")]
    fn collective_kind_mismatch_detected() {
        let s = std::sync::Arc::new(shared(2));
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            s2.collective(CollectiveKind::Alltoall, 0, 1, SimTime(0), vec![Bytes::new(); 2])
        });
        // Give the other thread time to register the slot, then mismatch.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let _ = s.collective(CollectiveKind::Barrier, 0, 0, SimTime(0), Vec::new());
        let _ = h.join();
    }
}
