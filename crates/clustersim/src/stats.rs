//! Per-rank and whole-run statistics: where virtual time went.
//!
//! The split into `compute / comm_cpu / blocked` is exactly the paper's
//! story: pre-pushing converts *blocked* time (waiting for a blocking
//! alltoall) into overlap, but cannot remove *comm_cpu* time (per-byte host
//! costs) — which is why the win is large on MPICH-GM and modest on MPICH.

use crate::time::SimTime;

/// Where one rank's virtual time went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankStats {
    pub rank: usize,
    /// Final virtual clock (the rank's finish time).
    pub finish: SimTime,
    /// Time spent in application computation (`Comm::advance`).
    pub compute: SimTime,
    /// CPU time inside communication calls (overheads + per-byte costs).
    pub comm_cpu: SimTime,
    /// Time the clock jumped forward waiting for data/synchronization.
    pub blocked: SimTime,
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
    pub alltoalls: u64,
    pub barriers: u64,
}

impl RankStats {
    /// Communication cost visible on the critical path of this rank.
    pub fn exposed_comm(&self) -> SimTime {
        self.comm_cpu + self.blocked
    }

    /// Fraction of the rank's time spent computing (0..=1).
    pub fn compute_fraction(&self) -> f64 {
        if self.finish == SimTime::ZERO {
            return 0.0;
        }
        self.compute.as_ns() as f64 / self.finish.as_ns() as f64
    }
}

/// Aggregated run report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub per_rank: Vec<RankStats>,
}

impl Report {
    /// Wall time of the simulated run: the slowest rank's finish.
    pub fn makespan(&self) -> SimTime {
        self.per_rank
            .iter()
            .map(|r| r.finish)
            .fold(SimTime::ZERO, SimTime::max)
    }

    pub fn total_bytes_sent(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes_sent).sum()
    }

    pub fn total_msgs_sent(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Maximum exposed communication across ranks (the overlap headline:
    /// pre-pushing should drive this toward zero on RDMA models).
    pub fn max_exposed_comm(&self) -> SimTime {
        self.per_rank
            .iter()
            .map(RankStats::exposed_comm)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Mean compute fraction across ranks.
    pub fn mean_compute_fraction(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.per_rank
            .iter()
            .map(RankStats::compute_fraction)
            .sum::<f64>()
            / self.per_rank.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(finish: u64, compute: u64, comm: u64, blocked: u64) -> RankStats {
        RankStats {
            finish: SimTime(finish),
            compute: SimTime(compute),
            comm_cpu: SimTime(comm),
            blocked: SimTime(blocked),
            ..Default::default()
        }
    }

    #[test]
    fn exposed_comm_sums_cpu_and_blocked() {
        let r = rs(100, 50, 20, 30);
        assert_eq!(r.exposed_comm(), SimTime(50));
        assert!((r.compute_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let report = Report {
            per_rank: vec![rs(100, 80, 10, 10), rs(140, 80, 20, 40)],
        };
        assert_eq!(report.makespan(), SimTime(140));
        assert_eq!(report.max_exposed_comm(), SimTime(60));
        let f = report.mean_compute_fraction();
        assert!((f - (0.8 + 80.0 / 140.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = Report::default();
        assert_eq!(r.makespan(), SimTime::ZERO);
        assert_eq!(r.mean_compute_fraction(), 0.0);
    }

    #[test]
    fn zero_finish_compute_fraction() {
        assert_eq!(rs(0, 0, 0, 0).compute_fraction(), 0.0);
    }
}
