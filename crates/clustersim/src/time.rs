//! Virtual simulation time: integer nanoseconds.
//!
//! All model arithmetic happens in `f64` nanoseconds and is rounded once at
//! the boundary, so accumulated per-byte costs stay deterministic across
//! platforms (no FMA/optimization-order hazards: each conversion rounds the
//! same way everywhere).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Round a fractional nanosecond quantity. Negative inputs clamp to 0.
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            SimTime(0)
        } else {
            SimTime(ns.round() as u64)
        }
    }

    pub fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    pub fn as_ns(self) -> u64 {
        self.0
    }

    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_us(5).as_ns(), 5_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_ns_f64(2.6).as_ns(), 3);
        assert_eq!(SimTime::from_ns_f64(-5.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a + b, SimTime(140));
        assert_eq!(a - b, SimTime(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime(140));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime(500).to_string(), "500ns");
        assert_eq!(SimTime(1_500).to_string(), "1.500us");
        assert_eq!(SimTime(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimTime(3_000_000_000).to_string(), "3.000s");
    }
}
