//! Optional event traces for debugging and for tests that assert *how*
//! time was spent (e.g. "the pre-push variant's sends were posted while
//! computation was still running").

use crate::time::SimTime;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// `advance` by this many nanoseconds.
    Compute { ns: u64 },
    SendPosted {
        dst: usize,
        tag: i64,
        nbytes: usize,
        nic_done: SimTime,
        ready_at: SimTime,
    },
    RecvPosted { src: usize, tag: i64 },
    RecvMatched {
        src: usize,
        tag: i64,
        nbytes: usize,
        arrival: SimTime,
    },
    SendsDrained { until: SimTime },
    Alltoall {
        bytes_per_partner: usize,
        completion: SimTime,
    },
    Barrier { completion: SimTime },
}

/// One traced event: `t` is the rank's clock *after* the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub rank: usize,
    pub t: SimTime,
    pub kind: EventKind,
}

/// A full-run trace, merged across ranks in time order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub events: Vec<Event>,
}

impl Trace {
    pub fn merged(mut per_rank: Vec<Vec<Event>>) -> Trace {
        let mut events: Vec<Event> = per_rank.drain(..).flatten().collect();
        events.sort_by_key(|e| (e.t, e.rank));
        Trace { events }
    }

    pub fn for_rank(&self, rank: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sorts_by_time_then_rank() {
        let t = Trace::merged(vec![
            vec![Event {
                rank: 1,
                t: SimTime(10),
                kind: EventKind::Compute { ns: 10 },
            }],
            vec![
                Event {
                    rank: 0,
                    t: SimTime(10),
                    kind: EventKind::Compute { ns: 10 },
                },
                Event {
                    rank: 0,
                    t: SimTime(5),
                    kind: EventKind::Compute { ns: 5 },
                },
            ],
        ]);
        assert_eq!(t.events[0].t, SimTime(5));
        assert_eq!(t.events[1].rank, 0);
        assert_eq!(t.events[2].rank, 1);
        assert_eq!(t.for_rank(0).count(), 2);
        assert_eq!(t.count(|e| matches!(e.kind, EventKind::Compute { .. })), 3);
    }
}
