//! Simulator properties over randomized communication patterns:
//!
//! - **determinism**: identical runs produce identical virtual times;
//! - **clock monotonicity**: every rank's trace is non-decreasing in time;
//! - **causality**: a message is never matched before its send completes
//!   plus wire latency;
//! - **payload integrity**: bytes arrive exactly as sent.

use clustersim::{Bytes, Cluster, EventKind, NetworkModel, SimTime};
use proptest::prelude::*;

/// A randomized but deadlock-free pattern: `rounds` of ring exchanges with
/// varying sizes and compute gaps, then one alltoall, on `np` ranks.
#[derive(Debug, Clone)]
struct Pattern {
    np: usize,
    rounds: usize,
    sizes: Vec<usize>,
    gaps: Vec<u64>,
}

fn pattern() -> impl Strategy<Value = Pattern> {
    (
        2usize..6,
        1usize..5,
        prop::collection::vec(1usize..2000, 1..6),
        prop::collection::vec(0u64..100_000, 1..6),
    )
        .prop_map(|(np, rounds, sizes, gaps)| Pattern {
            np,
            rounds,
            sizes,
            gaps,
        })
}

fn run(p: &Pattern, traced: bool) -> clustersim::RunOutput<SimTime> {
    run_on(p, traced, false)
}

fn run_on(p: &Pattern, traced: bool, single_lock: bool) -> clustersim::RunOutput<SimTime> {
    let mut cluster = Cluster::new(p.np, NetworkModel::mpich_gm());
    if traced {
        cluster = cluster.traced();
    }
    if single_lock {
        cluster = cluster.single_lock_reference();
    }
    let p = p.clone();
    cluster
        .run(move |comm| {
            let me = comm.rank();
            let np = comm.np();
            for r in 0..p.rounds {
                let size = p.sizes[r % p.sizes.len()];
                let gap = p.gaps[r % p.gaps.len()];
                let to = (me + 1) % np;
                let from = (np + me - 1) % np;
                let payload: Vec<u8> =
                    (0..size).map(|i| (me + r + i) as u8).collect();
                comm.isend(to, r as i64, Bytes::from(payload));
                let id = comm.irecv(from, r as i64);
                comm.advance(gap as f64);
                let got = comm.wait_recv(id);
                // Payload integrity.
                assert_eq!(got.len(), size);
                for (i, b) in got.iter().enumerate() {
                    assert_eq!(*b, (from + r + i) as u8, "corrupted byte");
                }
            }
            comm.wait_all();
            let payloads: Vec<Bytes> = (0..np)
                .map(|d| Bytes::from(vec![(me * np + d) as u8; 16]))
                .collect();
            let got = comm.alltoall(payloads);
            for (s, b) in got.iter().enumerate() {
                assert_eq!(b[0], (s * np + me) as u8);
            }
            comm.now()
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn deterministic_under_thread_scheduling(p in pattern()) {
        let a = run(&p, false);
        let b = run(&p, false);
        prop_assert_eq!(&a.results, &b.results);
        let fa: Vec<_> = a.report.per_rank.iter().map(|r| r.finish).collect();
        let fb: Vec<_> = b.report.per_rank.iter().map(|r| r.finish).collect();
        prop_assert_eq!(fa, fb);
    }

    /// The sharded state backend books element-wise identical virtual
    /// times, stats, and payload routings to the single-global-lock
    /// reference build path — lock granularity is invisible to results.
    #[test]
    fn sharded_state_matches_single_lock_reference(p in pattern()) {
        let sharded = run_on(&p, false, false);
        let reference = run_on(&p, false, true);
        prop_assert_eq!(&sharded.results, &reference.results);
        for (a, b) in sharded
            .report
            .per_rank
            .iter()
            .zip(&reference.report.per_rank)
        {
            prop_assert_eq!(a.finish, b.finish);
            prop_assert_eq!(a.compute, b.compute);
            prop_assert_eq!(a.comm_cpu, b.comm_cpu);
            prop_assert_eq!(a.blocked, b.blocked);
            prop_assert_eq!(a.bytes_sent, b.bytes_sent);
            prop_assert_eq!(a.bytes_recv, b.bytes_recv);
            prop_assert_eq!(a.msgs_sent, b.msgs_sent);
            prop_assert_eq!(a.msgs_recv, b.msgs_recv);
        }
        prop_assert_eq!(sharded.report.makespan(), reference.report.makespan());
    }

    #[test]
    fn per_rank_clocks_are_monotone(p in pattern()) {
        let out = run(&p, true);
        let trace = out.trace.expect("traced");
        for rank in 0..p.np {
            let mut last = SimTime::ZERO;
            for e in trace.for_rank(rank) {
                prop_assert!(
                    e.t >= last,
                    "rank {} time went backwards: {} after {}",
                    rank,
                    e.t,
                    last
                );
                last = e.t;
            }
        }
    }

    #[test]
    fn messages_respect_latency(p in pattern()) {
        let out = run(&p, true);
        let trace = out.trace.expect("traced");
        let l = NetworkModel::mpich_gm().latency;
        // Every matched receive arrives no earlier than *some* matching
        // send's ready time; with FIFO tags per round, pair them exactly.
        for e in &trace.events {
            if let EventKind::RecvMatched { src, tag, arrival, .. } = e.kind {
                // Find the matching send (same round/tag from src to e.rank).
                let send_ready = trace
                    .events
                    .iter()
                    .find_map(|s| match s.kind {
                        EventKind::SendPosted { dst, tag: t, ready_at, .. }
                            if s.rank == src && dst == e.rank && t == tag =>
                        {
                            Some(ready_at)
                        }
                        _ => None,
                    })
                    .expect("send exists for every matched recv");
                prop_assert!(
                    arrival >= send_ready,
                    "arrival {} before ready {}",
                    arrival,
                    send_ready
                );
                prop_assert!(send_ready >= l, "ready time below one latency");
            }
        }
    }

    #[test]
    fn stats_account_for_all_time(p in pattern()) {
        let out = run(&p, false);
        for r in &out.report.per_rank {
            let accounted = r.compute + r.comm_cpu + r.blocked;
            // Everything the clock advanced must be attributed to one of
            // the three buckets (exact: the simulator only moves clocks
            // through advance/comm paths).
            prop_assert_eq!(
                accounted,
                r.finish,
                "rank {} books {} of {}",
                r.rank,
                accounted,
                r.finish
            );
        }
    }
}
