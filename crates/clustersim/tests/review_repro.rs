//! Review reproducer: rank 0 waits for a message rank 1 never sends;
//! rank 1 just finishes. Does the resumable engine detect the deadlock?

use clustersim::{Cluster, Comm, NetworkModel, RankMachine, Step};

struct WaiterOrQuitter {
    rank: usize,
    posted: bool,
}

impl RankMachine for WaiterOrQuitter {
    type Out = ();
    fn step(&mut self, comm: &mut Comm) -> Step<()> {
        if self.rank == 0 {
            if !self.posted {
                self.posted = true;
                comm.irecv(1, 7);
            }
            match comm.poll_wait_all_recvs() {
                Some(_) => Step::Done(()),
                None => Step::Blocked,
            }
        } else {
            // Rank 1 exits without sending.
            Step::Done(())
        }
    }
}

#[test]
fn rank_exit_while_peer_parked_is_reported() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let cluster = Cluster::new(2, NetworkModel::mpich_gm());
        let out = cluster.run_resumable(Some(1), |comm| WaiterOrQuitter {
            rank: comm.rank(),
            posted: false,
        });
        tx.send(out.is_err()).unwrap();
    });
    match rx.recv_timeout(std::time::Duration::from_secs(5)) {
        Ok(errored) => assert!(errored, "expected a deadlock error"),
        Err(_) => panic!("HANG: run_resumable never returned"),
    }
}
