//! The Compuniformer as a command-line tool: read a mini-Fortran file,
//! transform it, print the result (and the semi-automatic report to
//! stderr).
//!
//! ```text
//! compuniformer [options] <input.f90>
//!
//! options:
//!   -k <K>            fixed tile size (default: heuristic)
//!   -D <name>=<int>   bind a symbol in the analysis context (repeatable);
//!                     e.g. -D np=8 -D nx=4096
//!   --assume-safe     answer every user query "yes" (semi-automatic mode
//!                     after the user has inspected the code)
//!   --opaque <proc>   treat <proc> as source-unavailable (repeatable)
//!   --report-only     print only the report, not the transformed source
//! ```
//!
//! Exit codes: 0 transformed, 1 nothing applied, 2 usage/parse error.

use compuniformer::{transform, Options, TransformError, UserOracle};
use depan::Context;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut args = std::env::args().skip(1);
    let mut input: Option<String> = None;
    let mut opts = Options::default();
    let mut context = Context::new();
    let mut report_only = false;

    while let Some(a) = args.next() {
        match a.as_str() {
            "-k" => match args.next().and_then(|v| v.parse::<i64>().ok()) {
                Some(k) if k >= 1 => opts.tile_size = Some(k),
                _ => return usage("-k needs a positive integer"),
            },
            "-D" => {
                let Some(binding) = args.next() else {
                    return usage("-D needs name=value");
                };
                let Some((name, value)) = binding.split_once('=') else {
                    return usage("-D needs name=value");
                };
                let Ok(v) = value.parse::<i64>() else {
                    return usage("-D value must be an integer");
                };
                context.set(name, v);
            }
            "--assume-safe" => opts.oracle = UserOracle::AssumeSafe,
            "--opaque" => match args.next() {
                Some(p) => opts.opaque_procedures.push(p),
                None => return usage("--opaque needs a procedure name"),
            },
            "--report-only" => report_only = true,
            "-h" | "--help" => return usage(""),
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => return usage(&format!("unknown option `{other}`")),
        }
    }
    opts.context = context;

    let Some(path) = input else {
        return usage("missing input file");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            return 2;
        }
    };

    let program = match fir::parse_validated(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: `{path}` does not parse/validate:\n{}", e.render(&src));
            return 2;
        }
    };

    match transform(&program, &opts) {
        Ok(out) => {
            eprintln!("{}", out.report.summary().trim_end());
            if !report_only {
                print!("{}", fir::unparse(&out.program));
            }
            0
        }
        Err(TransformError::Invalid(e)) => {
            eprintln!("error: validation failed:\n{e}");
            2
        }
        Err(e @ TransformError::NothingApplied(_)) => {
            eprintln!("{e}");
            1
        }
    }
}

fn usage(err: &str) -> i32 {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: compuniformer [-k K] [-D name=int]... [--assume-safe] \
         [--opaque proc]... [--report-only] <input.f90>"
    );
    2
}
