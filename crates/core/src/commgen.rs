//! Communication code generation (paper §3.5, Fig. 4) and fresh-name
//! management for the inserted scalars and loop variables.

use fir::ast::{Expr, SecDim, Stmt};
use fir::builder as b;
use std::collections::HashSet;

/// Allocates identifiers that cannot collide with any name already used in
/// the program. Generated names carry a `cc_` prefix ("communication-
/// computation"), with numeric suffixes on collision.
pub struct NameGen {
    taken: HashSet<String>,
    /// Names handed out, in order — the transformation declares these as
    /// integer scalars.
    pub issued: Vec<String>,
}

impl NameGen {
    pub fn new(program: &fir::ast::Program) -> Self {
        let mut taken = HashSet::new();
        for p in program.all_procedures() {
            taken.insert(p.name.clone());
            for d in &p.decls {
                taken.insert(d.name.clone());
            }
            for q in &p.params {
                taken.insert(q.name.clone());
            }
            collect_names(&p.body, &mut taken);
        }
        NameGen {
            taken,
            issued: Vec::new(),
        }
    }

    /// Fresh name based on `hint` (e.g. `fresh("to")` → `cc_to`).
    pub fn fresh(&mut self, hint: &str) -> String {
        let base = format!("cc_{hint}");
        let mut name = base.clone();
        let mut n = 1;
        while self.taken.contains(&name) {
            name = format!("{base}{n}");
            n += 1;
        }
        self.taken.insert(name.clone());
        self.issued.push(name.clone());
        name
    }

    /// Declarations for every issued name (all integer scalars).
    pub fn decls(&self) -> Vec<fir::ast::Decl> {
        self.issued.iter().map(|n| b::decl_int(n)).collect()
    }
}

fn collect_names(stmts: &[Stmt], out: &mut HashSet<String>) {
    struct V<'a>(&'a mut HashSet<String>);
    impl fir::visit::Visitor for V<'_> {
        fn visit_stmt(&mut self, s: &Stmt) {
            match s {
                Stmt::Assign { target, .. } => {
                    self.0.insert(target.name.clone());
                }
                Stmt::Do { var, .. } => {
                    self.0.insert(var.clone());
                }
                Stmt::Call { name, .. } => {
                    self.0.insert(name.clone());
                }
                _ => {}
            }
            fir::visit::walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            match e {
                Expr::Var(n, _) => {
                    self.0.insert(n.clone());
                }
                Expr::ArrayRef { name, .. } | Expr::Call { name, .. } => {
                    self.0.insert(name.clone());
                }
                _ => {}
            }
            fir::visit::walk_expr(self, e);
        }
    }
    fir::visit::walk_stmts(&mut V(out), stmts);
}

/// Names used by the generated exchange code for one opportunity.
pub struct ExchangeNames {
    pub j: String,
    pub to: String,
    pub from: String,
    pub copy_i: String,
}

impl ExchangeNames {
    pub fn fresh(gen: &mut NameGen) -> Self {
        ExchangeNames {
            j: gen.fresh("j"),
            to: gen.fresh("to"),
            from: gen.fresh("from"),
            copy_i: gen.fresh("i"),
        }
    }
}

/// The Figure-4 skewed all-peers exchange for a rank-2 send array
/// `as(d1, node)` whose tile finalized `as(lo:hi, :)`:
///
/// ```text
/// do j = 1, np - 1
///   to = mod(mynum + j, np)
///   call mpi_isend(as(lo:hi, to + send_node_base), len, to, tag)
///   from = mod(np + mynum - j, np)
///   call mpi_irecv(ar(lo:hi, from + recv_node_base), len, from, tag)
/// end do
/// ```
///
/// `send_node_base` / `recv_node_base` are the declared lower bounds of the
/// node dimension (peer `p` owns node index `base + p`).
#[allow(clippy::too_many_arguments)]
pub fn fig4_all_peers(
    names: &ExchangeNames,
    send_array: &str,
    recv_array: &str,
    d1_lo: Expr,
    d1_hi: Expr,
    len: Expr,
    send_node_base: Expr,
    recv_node_base: Expr,
    tag: i64,
) -> Stmt {
    let to = b::var(&names.to);
    let from = b::var(&names.from);
    let body = vec![
        b::sassign(
            &names.to,
            b::modulo(b::add(b::var("mynum"), b::var(&names.j)), b::var("np")),
        ),
        b::call(
            "mpi_isend",
            vec![
                b::section(
                    send_array,
                    vec![
                        b::range(d1_lo.clone(), d1_hi.clone()),
                        b::at(b::add(to.clone(), send_node_base)),
                    ],
                ),
                b::arg(len.clone()),
                b::arg(to),
                b::arg(b::int(tag)),
            ],
        ),
        b::sassign(
            &names.from,
            b::modulo(
                b::sub(b::add(b::var("np"), b::var("mynum")), b::var(&names.j)),
                b::var("np"),
            ),
        ),
        b::call(
            "mpi_irecv",
            vec![
                b::section(
                    recv_array,
                    vec![
                        b::range(d1_lo, d1_hi),
                        b::at(b::add(from.clone(), recv_node_base)),
                    ],
                ),
                b::arg(len),
                b::arg(from),
                b::arg(b::int(tag)),
            ],
        ),
    ];
    b::do_loop(&names.j, b::int(1), b::sub(b::var("np"), b::int(1)), body)
}

/// Self-partition copy for the all-peers strategy:
/// `do i = lo, hi: ar(i, mynum + recv_base) = as(i, mynum + send_base)`.
pub fn self_copy_rank2(
    names: &ExchangeNames,
    send_array: &str,
    recv_array: &str,
    d1_lo: Expr,
    d1_hi: Expr,
    send_node_base: Expr,
    recv_node_base: Expr,
) -> Stmt {
    let i = b::var(&names.copy_i);
    b::do_loop(
        &names.copy_i,
        d1_lo,
        d1_hi,
        vec![b::assign(
            recv_array,
            vec![i.clone(), b::add(b::var("mynum"), recv_node_base)],
            b::aref(
                send_array,
                vec![i, b::add(b::var("mynum"), send_node_base)],
            ),
        )],
    )
}

/// Names for the owner (subset-send) strategy's temporaries.
pub struct OwnerNames {
    pub a: String,
    pub bb: String,
    pub len: String,
    pub to: String,
    pub off: String,
    pub j: String,
    pub from: String,
    pub copy_i: String,
}

impl OwnerNames {
    pub fn fresh(gen: &mut NameGen) -> Self {
        OwnerNames {
            a: gen.fresh("a"),
            bb: gen.fresh("b"),
            len: gen.fresh("len"),
            to: gen.fresh("to"),
            off: gen.fresh("off"),
            j: gen.fresh("j"),
            from: gen.fresh("from"),
            copy_i: gen.fresh("i"),
        }
    }
}

/// The owner (subset-send) exchange for a rank-1 send array, used when the
/// node loop is the tiled loop itself and interchange is impossible (paper
/// §3.5: "all of the nodes send to a subset of the nodes during each
/// tile"). The tile finalized `as(f_lo:f_hi)`; the partition owner receives
/// everyone's block slice:
///
/// ```text
/// a = f_lo; b = f_hi; len = b - a + 1
/// to = (a - send_base) / sz          ! 0-based owning rank
/// off = a - send_base - to * sz      ! 0-based offset within the block
/// if (to == mynum) then
///   do j = 1, np - 1
///     from = mod(np + mynum - j, np)
///     call mpi_irecv(ar(from * sz + off + recv_base : … + len - 1), len, from, tag)
///   end do
///   do i = a, b
///     ar(i - send_base + recv_base) = as(i)
///   end do
/// else
///   call mpi_isend(as(a:b), len, to, tag)
/// end if
/// ```
#[allow(clippy::too_many_arguments)]
pub fn owner_subset_exchange(
    names: &OwnerNames,
    send_array: &str,
    recv_array: &str,
    f_lo: Expr,
    f_hi: Expr,
    sz: Expr,
    send_base: Expr,
    recv_base: Expr,
    tag: i64,
) -> Vec<Stmt> {
    let a = b::var(&names.a);
    let bb = b::var(&names.bb);
    let len = b::var(&names.len);
    let to = b::var(&names.to);
    let off = b::var(&names.off);
    let from = b::var(&names.from);
    let i = b::var(&names.copy_i);

    let recv_start = b::add(
        b::add(b::mul(from.clone(), sz.clone()), off.clone()),
        recv_base.clone(),
    );
    let recv_end = b::sub(b::add(recv_start.clone(), len.clone()), b::int(1));

    vec![
        b::sassign(&names.a, f_lo),
        b::sassign(&names.bb, f_hi),
        b::sassign(&names.len, b::add(b::sub(bb.clone(), a.clone()), b::int(1))),
        b::sassign(
            &names.to,
            b::div(b::sub(a.clone(), send_base.clone()), sz.clone()),
        ),
        b::sassign(
            &names.off,
            b::sub(
                b::sub(a.clone(), send_base.clone()),
                b::mul(to.clone(), sz),
            ),
        ),
        b::if_then_else(
            b::eq(to.clone(), b::var("mynum")),
            vec![
                b::do_loop(
                    &names.j,
                    b::int(1),
                    b::sub(b::var("np"), b::int(1)),
                    vec![
                        b::sassign(
                            &names.from,
                            b::modulo(
                                b::sub(
                                    b::add(b::var("np"), b::var("mynum")),
                                    b::var(&names.j),
                                ),
                                b::var("np"),
                            ),
                        ),
                        b::call(
                            "mpi_irecv",
                            vec![
                                b::section(
                                    recv_array,
                                    vec![b::range(recv_start, recv_end)],
                                ),
                                b::arg(len.clone()),
                                b::arg(from),
                                b::arg(b::int(tag)),
                            ],
                        ),
                    ],
                ),
                b::do_loop(
                    &names.copy_i,
                    a.clone(),
                    bb,
                    vec![b::assign(
                        recv_array,
                        vec![b::add(b::sub(i.clone(), send_base), recv_base)],
                        b::aref(send_array, vec![i]),
                    )],
                ),
            ],
            vec![b::call(
                "mpi_isend",
                vec![
                    b::section(send_array, vec![b::range(a, b::var(&names.bb))]),
                    b::arg(len),
                    b::arg(to),
                    b::arg(b::int(tag)),
                ],
            )],
        ),
    ]
}

/// `call mpi_waitall_recv()` — §3.6 step 2.
pub fn wait_prev_recvs() -> Stmt {
    b::call("mpi_waitall_recv", vec![])
}

/// `call mpi_waitall()` — §3.6 step 4 (plus send drain).
pub fn wait_all() -> Stmt {
    b::call("mpi_waitall", vec![])
}

/// Build the tiled loop structure: the original loop `do v = lo, hi` is
/// split into `do vt = lo, hi, k` with an inner `do v = vt, min(vt+k-1, hi)`
/// around `body`, followed by `per_tile` statements (wait/comm/self-copy).
#[allow(clippy::too_many_arguments)]
pub fn tiled_loop(
    tile_var: &str,
    orig_var: &str,
    lo: Expr,
    hi: Expr,
    k: i64,
    body: Vec<Stmt>,
    per_tile: Vec<Stmt>,
) -> Stmt {
    let vt = b::var(tile_var);
    let inner_hi = b::call_fn(
        "min",
        vec![b::sub(b::add(vt.clone(), b::int(k)), b::int(1)), hi.clone()],
    );
    let inner = b::do_loop(orig_var, vt, inner_hi, body);
    let mut tile_body = vec![inner];
    tile_body.extend(per_tile);
    b::do_loop_step(tile_var, lo, hi, b::int(k), tile_body)
}

/// Tile bound expressions matching [`tiled_loop`]'s inner loop: the tile
/// covers `[vt, min(vt + k - 1, hi)]`.
pub fn tile_bounds(tile_var: &str, hi: &Expr, k: i64) -> (Expr, Expr) {
    let vt = b::var(tile_var);
    let end = b::call_fn(
        "min",
        vec![
            b::sub(b::add(vt.clone(), b::int(k)), b::int(1)),
            hi.clone(),
        ],
    );
    (vt, end)
}

/// Rewrite every reference to array `from` into `to` inside `stmts`
/// (targets, reads, sections) — used to re-point the deleted copy loop at
/// `Ar` for the indirect pattern's self-copy.
pub fn rename_array(stmts: &mut [Stmt], from: &str, to: &str) {
    struct R<'a> {
        from: &'a str,
        to: &'a str,
    }
    impl fir::visit::Mutator for R<'_> {
        fn mutate_stmt(&mut self, s: &mut Stmt) {
            match s {
                Stmt::Assign { target, .. } if target.name == self.from => {
                    target.name = self.to.to_string();
                }
                Stmt::Call { args, .. } => {
                    for a in args {
                        if let fir::ast::Arg::Section(sec) = a {
                            if sec.name == self.from {
                                sec.name = self.to.to_string();
                            }
                        }
                        if let fir::ast::Arg::Expr(Expr::Var(n, _)) = a {
                            if n == self.from {
                                *n = self.to.to_string();
                            }
                        }
                    }
                }
                _ => {}
            }
            fir::visit::walk_stmt_mut(self, s);
        }
        fn mutate_expr(&mut self, e: &mut Expr) {
            if let Expr::ArrayRef { name, .. } = e {
                if name == self.from {
                    *name = self.to.to_string();
                }
            }
            fir::visit::walk_expr_mut(self, e);
        }
    }
    fir::visit::walk_stmts_mut(&mut R { from, to }, stmts);
}

/// Replace, in `stmts`, array references `name(i)` (rank 1) with
/// `name(i, slot)` — the indirect pattern's buffer expansion (§3.4).
pub fn add_slot_dimension(stmts: &mut [Stmt], name: &str, slot: &Expr) {
    struct A<'a> {
        name: &'a str,
        slot: &'a Expr,
    }
    impl fir::visit::Mutator for A<'_> {
        fn mutate_stmt(&mut self, s: &mut Stmt) {
            match s {
                Stmt::Assign { target, .. }
                    if target.name == self.name && target.indices.len() == 1 =>
                {
                    target.indices.push(self.slot.clone());
                }
                Stmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            fir::ast::Arg::Expr(Expr::Var(n, sp)) if n == self.name => {
                                // Whole-array pass becomes a full-column
                                // section at the slot.
                                *a = fir::ast::Arg::Section(fir::ast::Section {
                                    name: self.name.to_string(),
                                    dims: vec![
                                        SecDim::Range(None, None),
                                        SecDim::Index(self.slot.clone()),
                                    ],
                                    span: *sp,
                                });
                            }
                            fir::ast::Arg::Section(sec)
                                if sec.name == self.name && sec.dims.len() == 1 =>
                            {
                                sec.dims.push(SecDim::Index(self.slot.clone()));
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
            fir::visit::walk_stmt_mut(self, s);
        }
        fn mutate_expr(&mut self, e: &mut Expr) {
            if let Expr::ArrayRef { name, indices, .. } = e {
                if name == self.name && indices.len() == 1 {
                    indices.push(self.slot.clone());
                }
            }
            fir::visit::walk_expr_mut(self, e);
        }
    }
    fir::visit::walk_stmts_mut(&mut A { name, slot }, stmts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::{parse_stmts, unparse_stmt, unparse_stmts};

    fn gen() -> NameGen {
        let p = fir::parse("program m\n  integer :: cc_to\nend program").unwrap();
        NameGen::new(&p)
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let mut g = gen();
        assert_eq!(g.fresh("to"), "cc_to1"); // cc_to is declared
        assert_eq!(g.fresh("to"), "cc_to2");
        assert_eq!(g.fresh("j"), "cc_j");
        assert_eq!(g.decls().len(), 3);
    }

    #[test]
    fn namegen_sees_body_identifiers() {
        let p = fir::parse(
            "program m\n  real :: a(4)\n  do cc_j = 1, 4\n    a(cc_j) = cc_x + 1\n  end do\nend program",
        )
        .unwrap();
        let mut g = NameGen::new(&p);
        assert_eq!(g.fresh("j"), "cc_j1");
        assert_eq!(g.fresh("x"), "cc_x1");
    }

    #[test]
    fn fig4_matches_paper_shape() {
        let p = fir::parse("program m\nend program").unwrap();
        let mut g = NameGen::new(&p);
        let names = ExchangeNames::fresh(&mut g);
        use fir::builder as b;
        let s = fig4_all_peers(
            &names,
            "as",
            "ar",
            b::var("t0"),
            b::var("t1"),
            b::var("len"),
            b::int(1),
            b::int(1),
            7,
        );
        let printed = unparse_stmt(&s);
        assert!(printed.contains("do cc_j = 1, np - 1"));
        assert!(printed.contains("cc_to = mod(mynum + cc_j, np)"));
        assert!(printed.contains("call mpi_isend(as(t0:t1, cc_to + 1), len, cc_to, 7)"));
        assert!(printed.contains("cc_from = mod(np + mynum - cc_j, np)"));
        assert!(printed.contains("call mpi_irecv(ar(t0:t1, cc_from + 1), len, cc_from, 7)"));
        // And it reparses.
        assert!(parse_stmts(&printed).is_ok());
    }

    #[test]
    fn owner_exchange_reparses_and_names_owner() {
        let mut g = gen();
        let names = OwnerNames::fresh(&mut g);
        use fir::builder as b;
        let stmts = owner_subset_exchange(
            &names,
            "as",
            "ar",
            b::var("t0"),
            b::var("t1"),
            b::int(16),
            b::int(1),
            b::int(1),
            3,
        );
        let printed = unparse_stmts(&stmts);
        assert!(printed.contains("cc_to1 = (cc_a - 1) / 16"));
        assert!(printed.contains("if (cc_to1 == mynum) then"));
        assert!(printed.contains("call mpi_isend(as(cc_a:cc_b), cc_len, cc_to1, 3)"));
        assert!(parse_stmts(&printed).is_ok());
    }

    #[test]
    fn tiled_loop_shape() {
        let body = parse_stmts("as(ix) = ix").unwrap();
        let s = tiled_loop(
            "cc_t",
            "ix",
            fir::builder::int(1),
            fir::builder::var("nx"),
            8,
            body,
            vec![wait_prev_recvs()],
        );
        let printed = unparse_stmt(&s);
        assert!(printed.contains("do cc_t = 1, nx, 8"));
        assert!(printed.contains("do ix = cc_t, min(cc_t + 8 - 1, nx)"));
        assert!(printed.contains("call mpi_waitall_recv()"));
    }

    #[test]
    fn rename_array_hits_targets_reads_and_sections() {
        let mut stmts = parse_stmts(
            "as(i) = at(i)\ncall mpi_isend(as(1:4), 4, 0, 0)\nx = as(2) + 1",
        )
        .unwrap();
        rename_array(&mut stmts, "as", "ar");
        let printed = unparse_stmts(&stmts);
        assert!(printed.contains("ar(i) = at(i)"));
        assert!(printed.contains("mpi_isend(ar(1:4)"));
        assert!(printed.contains("x = ar(2) + 1"));
    }

    #[test]
    fn add_slot_dimension_rewrites_refs_and_args() {
        let mut stmts = parse_stmts(
            "at(i) = 0\ncall p(x, at)\ncall q(at(1:4))\ny = at(3)",
        )
        .unwrap();
        let slot = fir::builder::var("cc_s");
        add_slot_dimension(&mut stmts, "at", &slot);
        let printed = unparse_stmts(&stmts);
        assert!(printed.contains("at(i, cc_s) = 0"));
        assert!(printed.contains("call p(x, at(:, cc_s))"));
        assert!(printed.contains("call q(at(1:4, cc_s))"));
        assert!(printed.contains("y = at(3, cc_s)"));
    }
}
