//! Tile-size (K) selection heuristic.
//!
//! The paper (§2) deliberately leaves choosing K to its companion work
//! (Danalis et al. [3]) while noting that "determining the optimal tile
//! size … is best performed by an automated system, since the value may
//! change as applications migrate across platforms". This module implements
//! that automated choice from first principles:
//!
//! - **too small a K**: per-tile fixed costs (NP-1 message overheads `o`)
//!   swamp the computation of the tile;
//! - **too large a K**: the final tile's transfer has no computation left
//!   to hide behind, and the exposed tail grows with K.
//!
//! We pick the smallest K whose per-tile computation exceeds the per-tile
//! communication *CPU* cost by a safety factor, clamped to the partition
//! size. The ablation harness (`harness -- ablation-k`) sweeps K around
//! this choice to show the U-shaped curve.

/// A network model's **capability view**: what the K-selection heuristic
/// and profitability predictors are allowed to assume about the model they
/// optimize for. The driver derives one from each `NetworkModel` family —
/// effective per-byte CPU, effective bandwidth *under assumed contention*
/// (for congested models the bottleneck stage's rate, for heterogeneous
/// clusters the worst rank's) — instead of the predictor reading four raw
/// constants and silently mispredicting families it was never calibrated
/// on.
///
/// `conservative` is the fallback for families the predictor cannot reason
/// about: feasible sites are *declined* (reported unprofitable) rather
/// than risking a known regression, unless the caller forces application
/// with an explicit tile size or `apply_even_if_unprofitable`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelCaps {
    /// Per-message fixed CPU overhead `o` (ns). `None` = Myrinet-like.
    pub overhead_ns: Option<f64>,
    /// Effective per-byte CPU cost β (ns/B, send side).
    pub cpu_ns_per_byte: Option<f64>,
    /// Effective per-byte serialization (1/bandwidth, ns/B) of the
    /// *bottleneck* stage under the model's assumed contention.
    pub wire_ns_per_byte: Option<f64>,
    /// Wire latency `L` (ns).
    pub latency_ns: Option<f64>,
    /// Decline feasible sites instead of predicting for them.
    pub conservative: bool,
}

impl ModelCaps {
    /// The historical predictor defaults (Myrinet-like constants), used
    /// when a caller supplies no model at all.
    pub fn overhead(&self) -> f64 {
        self.overhead_ns.unwrap_or(1_000.0)
    }

    pub fn cpu_per_byte(&self) -> f64 {
        self.cpu_ns_per_byte.unwrap_or(0.05)
    }

    pub fn wire_per_byte(&self) -> f64 {
        self.wire_ns_per_byte.unwrap_or(4.0)
    }

    pub fn latency(&self) -> f64 {
        self.latency_ns.unwrap_or(7_000.0)
    }

    /// The note a conservative decline carries into the transform report.
    pub fn conservative_note(&self) -> String {
        "model family outside the predictor's calibration — declining \
         conservatively (force with an explicit tile size or \
         apply_even_if_unprofitable)"
            .to_string()
    }
}

/// Inputs the heuristic needs. All costs in nanoseconds.
#[derive(Debug, Clone)]
pub struct KselectInput {
    /// Estimated computation cost of one iteration of the tiled loop.
    pub ns_per_iteration: f64,
    /// Bytes shipped per iteration of the tiled loop (to all peers).
    pub bytes_per_iteration: f64,
    /// Per-message fixed CPU overhead `o` of the network model.
    pub overhead_ns: f64,
    /// Per-byte CPU cost (send side) of the network model.
    pub cpu_ns_per_byte: f64,
    /// NIC gap per byte (1/bandwidth) of the network model.
    pub wire_ns_per_byte: f64,
    /// Messages posted per tile (NP-1 for the all-peers strategy, 1 for
    /// the owner strategy).
    pub messages_per_tile: f64,
    /// Total iterations of the tiled loop.
    pub trip_count: i64,
    /// If the strategy requires tiles not to straddle partitions, the
    /// partition size in iterations (K must divide it).
    pub align_to: Option<i64>,
}

/// Keep total per-tile fixed overheads below this fraction of computation.
const MAX_OVERHEAD_FRACTION: f64 = 0.02;

/// Choose a tile size by minimizing the two exposed costs:
///
/// ```text
/// cost(K) ≈ (trip/K)·fixed          — message overheads, shrink with K
///         + K·bytes_per_iter·wire   — the last tile's unhidden tail,
///                                     grows with K
/// ⇒  K* = sqrt(trip·fixed / (bytes_per_iter·wire))
/// ```
///
/// then clamping so overheads stay below [`MAX_OVERHEAD_FRACTION`] of the
/// computation, and rounding to a divisor of `align_to` when the strategy
/// needs partition-aligned tiles.
pub fn choose_k(input: &KselectInput) -> i64 {
    let trip = input.trip_count.max(1);
    let fixed = (input.messages_per_tile * 2.0 * input.overhead_ns).max(1.0);
    let tail_rate = (input.bytes_per_iteration * input.wire_ns_per_byte).max(1e-6);

    let k_sqrt = ((trip as f64 * fixed) / tail_rate).sqrt();

    // Overhead floor: (trip/K)·fixed ≤ f·trip·ns_per_iteration — but never
    // so large that fewer than 4 tiles remain (a single tile would mean no
    // overlap at all, defeating the transformation).
    let k_floor = if input.ns_per_iteration > 0.0 {
        (fixed / (MAX_OVERHEAD_FRACTION * input.ns_per_iteration))
            .min((trip as f64 / 4.0).max(1.0))
    } else {
        1.0
    };

    let mut k = k_sqrt.max(k_floor).ceil() as i64;
    k = k.clamp(1, trip);

    if let Some(align) = input.align_to {
        let align = align.max(1);
        // Round to the nearest divisor of `align` that is >= k, falling
        // back to `align` itself.
        let mut best = align;
        let mut d = 1;
        while d * d <= align {
            if align % d == 0 {
                for cand in [d, align / d] {
                    if cand >= k && cand < best {
                        best = cand;
                    }
                }
            }
            d += 1;
        }
        k = best;
    }
    k.max(1)
}

/// Inputs for the profitability predictor: one transformed comm site,
/// per execution of the original `MPI_ALLTOALL`.
#[derive(Debug, Clone)]
pub struct ProfitInput {
    /// Per-partner payload bytes of the original alltoall.
    pub partner_bytes: f64,
    /// Rank count.
    pub np: f64,
    /// Iterations of the tiled loop.
    pub trip_count: i64,
    /// Chosen tile size K.
    pub tile_size: i64,
    /// Messages posted per tile (NP-1 all-peers, 1 owner-sends).
    pub messages_per_tile: f64,
    /// Owner-sends strategy: every rank targets the tile's single owner,
    /// concentrating the receive burst (the §3.5 congestion shape).
    pub owner_strategy: bool,
    /// Estimated computation of one tiled-loop iteration (ns).
    pub ns_per_iteration: f64,
    /// Per-message fixed CPU overhead `o` (ns).
    pub overhead_ns: f64,
    /// Per-byte CPU involvement β (ns/B, send side).
    pub cpu_ns_per_byte: f64,
    /// NIC gap per byte (ns/B).
    pub wire_ns_per_byte: f64,
    /// Wire latency `L` (ns).
    pub latency_ns: f64,
}

/// Below this per-partner payload, the tiled owner-sends exchange never
/// recoups its per-message fixed costs on *any* preset stack: the direct
/// workload's small scale (128 B/partner) measures 0.85x on RDMA-ideal,
/// 0.63x on MPICH-GM, and 0.52x on MPICH even at np = 2.
const MIN_OWNER_PARTNER_BYTES: f64 = 1024.0;

/// A stack whose per-byte CPU involvement is at or below this is
/// *zero-copy* (the `rdma-ideal` preset): the waiting CPU never touches
/// payload bytes, so the generic incast-exposure charge below — which
/// bills `(G+β)·bytes` to the owner's CPU — does not apply.
const ZERO_COPY_BETA_NS_PER_BYTE: f64 = 0.01;

/// On a zero-copy stack, owner pre-push wins only by *pipelining* the
/// owner's receive-link serialization across tiles, which needs many
/// simultaneous senders: measured on `rdma-ideal`, np = 8 (7 senders)
/// gains at Medium+ while np ≤ 4 loses 1–6% at every size.
const ZERO_COPY_MIN_INCAST_PAIRS: f64 = 6.0;

/// Predict whether pre-pushing this site would *slow the program down*,
/// returning the human-readable reason when it would.
///
/// Two failure modes, both measured against what the original blocking
/// exchange costs per call — `(NP-1)·(2o + 2β·S + G·S) + L`:
///
/// 1. **Fixed-overhead blowup**: the tiled variant replaces `NP-1`
///    message overheads with `ntiles·M` of them. If those alone exceed
///    the whole original exchange, no amount of overlap wins.
///
/// 2. **Owner-sends incast exposure** (§3.5 congestion): with the owner
///    strategy every rank finishes tile `t` in near-lockstep and targets
///    its single owner, which must absorb `NP-1` messages — fixed cost,
///    per-byte CPU *and* receiver-NIC serialization — before its next
///    wait returns. The only computation that burst can hide behind is
///    one tile's worth (`K` iterations). When
///
///    ```text
///    (NP-1)·(o + (G+β)·8K)  >  K·ns_per_iteration
///    ```
///
///    the burst is exposed and grows with NP — exactly how the `direct`
///    workload collapses to 0.37x at standard/np=8/MPICH while staying
///    profitable on RDMA-class stacks (β ≈ 0, small `o`).
///
/// The skewed all-peers exchange (Fig. 4) staggers its targets by
/// construction, so mode 2 does not apply to it.
///
/// Two further owner-strategy calibrations (measured, see the constants):
/// tiny per-partner payloads ([`MIN_OWNER_PARTNER_BYTES`]) always decline,
/// and on zero-copy stacks ([`ZERO_COPY_BETA_NS_PER_BYTE`]) mode 2 is
/// replaced by a sender-count test ([`ZERO_COPY_MIN_INCAST_PAIRS`]) —
/// with β ≈ 0 the incast burst lands on the NIC, not the waiting CPU, so
/// charging it against one tile's computation wrongly declined the
/// standard/np=8 `rdma-ideal` case (which measures 1.04x).
pub fn predict_slowdown(input: &ProfitInput) -> Option<String> {
    let k = input.tile_size.max(1);
    let ntiles = ((input.trip_count.max(1) + k - 1) / k) as f64;
    let pairs = (input.np - 1.0).max(1.0);
    let beta = input.cpu_ns_per_byte;
    let gap = input.wire_ns_per_byte;

    let orig_comm = pairs
        * (2.0 * input.overhead_ns + 2.0 * beta * input.partner_bytes
            + gap * input.partner_bytes)
        + input.latency_ns;
    let added_overhead = ntiles * input.messages_per_tile * 2.0 * input.overhead_ns;
    if added_overhead > orig_comm {
        return Some(format!(
            "predicted slowdown: {ntiles:.0} tiles x {:.0} message(s) cost {:.1} us of \
             fixed overhead vs {:.1} us for the original exchange",
            input.messages_per_tile,
            added_overhead / 1e3,
            orig_comm / 1e3,
        ));
    }

    if input.owner_strategy {
        if input.partner_bytes < MIN_OWNER_PARTNER_BYTES {
            return Some(format!(
                "predicted slowdown: {:.0} B per partner is below the {:.0} B floor \
                 where per-message fixed costs dominate any overlap win",
                input.partner_bytes, MIN_OWNER_PARTNER_BYTES,
            ));
        }
        if beta <= ZERO_COPY_BETA_NS_PER_BYTE {
            // Zero-copy stack: payload bytes never touch the waiting CPU,
            // so the incast-exposure charge below is miscalibrated here.
            // The owner win comes from pipelining the receive link across
            // tiles, which needs enough simultaneous senders.
            if pairs < ZERO_COPY_MIN_INCAST_PAIRS {
                return Some(format!(
                    "predicted slowdown: only {pairs:.0} sender(s) per owner on a \
                     zero-copy stack (β ≈ 0) — fewer than the {:.0} needed to \
                     pipeline the owner's receive link",
                    ZERO_COPY_MIN_INCAST_PAIRS,
                ));
            }
            return None;
        }
        let tile_msg_bytes = 8.0 * k as f64;
        let burst = pairs * (input.overhead_ns + (gap + beta) * tile_msg_bytes);
        let hide = k as f64 * input.ns_per_iteration;
        if burst > hide {
            return Some(format!(
                "predicted slowdown: owner incast of {:.1} us per tile ((NP-1) = \
                 {pairs:.0} messages) exceeds the {:.1} us of computation one \
                 K = {k} tile can hide it behind",
                burst / 1e3,
                hide / 1e3,
            ));
        }
    }
    None
}

/// Inputs for the §3.5 per-column fallback's profitability predictor: the
/// node loop is outermost and cannot be interchanged, so every iteration
/// of ℓ ships one full `partner_bytes` column to that iteration's single
/// owner — all ranks in lockstep, the worst-case incast shape, with only
/// one iteration's computation to hide each burst behind.
#[derive(Debug, Clone)]
pub struct ColumnInput {
    /// Bytes of one column (the alltoall's per-partner payload).
    pub partner_bytes: f64,
    /// Rank count.
    pub np: f64,
    /// Estimated computation of one iteration of ℓ (the whole inner
    /// nest), in ns — the only cover for one column burst.
    pub ns_per_iteration: f64,
    /// Per-message fixed CPU overhead `o` (ns).
    pub overhead_ns: f64,
    /// Per-byte CPU involvement β (ns/B, send side).
    pub cpu_ns_per_byte: f64,
    /// NIC gap per byte (ns/B).
    pub wire_ns_per_byte: f64,
}

/// On a zero-copy stack the per-column exchange only wins once the column
/// is big enough that pipelining the owner's receive link across
/// iterations beats the blocking alltoall: measured on `rdma-ideal` at
/// np = 8 (7 senders), 8 KiB columns still lose 0.95x while 32 KiB
/// columns win 1.01x.
const ZERO_COPY_COLUMN_MIN_BYTES: f64 = 16384.0;

/// Predict whether the §3.5 per-column owner fallback would slow the
/// program down, returning the reason when it would.
///
/// Unlike the tiled owner strategy ([`predict_slowdown`]), the fallback
/// has no tile-size freedom: every ℓ iteration ships one whole column to
/// one owner, so the incast burst `(NP-1)·(o + (G+β)·S)` must hide behind
/// a single iteration's computation. Measured over the full registry ×
/// {2,4,8} ranks × all three preset stacks, the fallback loses in 26 of
/// 27 cases (0.21x–0.98x); the one win — `rdma-ideal` at standard scale
/// with np = 8, 1.01x — is what the zero-copy branch keeps:
///
/// 1. columns under [`MIN_OWNER_PARTNER_BYTES`] never recoup the
///    per-message fixed costs (small sizes, every stack);
/// 2. on zero-copy stacks (β ≈ 0) the burst lands on the NIC, not the
///    waiting CPU — the fallback wins only with enough simultaneous
///    senders ([`ZERO_COPY_MIN_INCAST_PAIRS`]) *and* columns big enough
///    ([`ZERO_COPY_COLUMN_MIN_BYTES`]) to pipeline the receive link;
/// 3. otherwise, decline when the incast burst exceeds one iteration's
///    computation.
pub fn predict_column_slowdown(input: &ColumnInput) -> Option<String> {
    let pairs = (input.np - 1.0).max(1.0);
    let beta = input.cpu_ns_per_byte;
    if input.partner_bytes < MIN_OWNER_PARTNER_BYTES {
        return Some(format!(
            "predicted slowdown: {:.0} B per column is below the {:.0} B floor \
             where per-message fixed costs dominate any overlap win",
            input.partner_bytes, MIN_OWNER_PARTNER_BYTES,
        ));
    }
    if beta <= ZERO_COPY_BETA_NS_PER_BYTE {
        if pairs < ZERO_COPY_MIN_INCAST_PAIRS {
            return Some(format!(
                "predicted slowdown: only {pairs:.0} sender(s) per owner on a \
                 zero-copy stack (β ≈ 0) — fewer than the {:.0} needed to \
                 pipeline the owner's receive link",
                ZERO_COPY_MIN_INCAST_PAIRS,
            ));
        }
        if input.partner_bytes < ZERO_COPY_COLUMN_MIN_BYTES {
            return Some(format!(
                "predicted slowdown: {:.0} B columns are below the {:.0} B \
                 zero-copy threshold where pipelining the owner's receive \
                 link starts to pay",
                input.partner_bytes, ZERO_COPY_COLUMN_MIN_BYTES,
            ));
        }
        return None;
    }
    let burst = pairs * (input.overhead_ns + (input.wire_ns_per_byte + beta) * input.partner_bytes);
    if burst > input.ns_per_iteration {
        return Some(format!(
            "predicted slowdown: per-column owner incast of {:.1} us ((NP-1) = \
             {pairs:.0} full columns) exceeds the {:.1} us of computation one \
             node-loop iteration can hide it behind",
            burst / 1e3,
            input.ns_per_iteration / 1e3,
        ));
    }
    None
}

/// Statically estimate the interpreter cost of one iteration of a loop
/// body: expression nodes × `ns_per_op` + statements × `ns_per_stmt`.
/// Nested loops multiply by their literal trip counts when known (symbolic
/// trips assume 16 — recorded by the caller as an assumption).
pub fn estimate_iteration_ns(
    body: &[fir::ast::Stmt],
    ns_per_op: f64,
    ns_per_stmt: f64,
) -> f64 {
    fn expr_nodes(e: &fir::ast::Expr) -> f64 {
        use fir::ast::Expr::*;
        match e {
            IntLit(..) | RealLit(..) | Var(..) => 1.0,
            ArrayRef { indices, .. } => 1.0 + indices.iter().map(expr_nodes).sum::<f64>(),
            Call { args, .. } => 1.0 + args.iter().map(expr_nodes).sum::<f64>(),
            Unary { operand, .. } => 1.0 + expr_nodes(operand),
            Binary { lhs, rhs, .. } => 1.0 + expr_nodes(lhs) + expr_nodes(rhs),
        }
    }
    fn stmts_cost(stmts: &[fir::ast::Stmt], op: f64, st: f64) -> f64 {
        let mut acc = 0.0;
        for s in stmts {
            acc += st;
            match s {
                fir::ast::Stmt::Assign { target, value, .. } => {
                    acc += expr_nodes(value) * op;
                    acc += target.indices.iter().map(expr_nodes).sum::<f64>() * op;
                }
                fir::ast::Stmt::Do {
                    lower,
                    upper,
                    step,
                    body,
                    ..
                } => {
                    let trip = match (lower.as_int(), upper.as_int()) {
                        (Some(lo), Some(hi)) => {
                            let stp = step.as_ref().and_then(|e| e.as_int()).unwrap_or(1);
                            if stp > 0 && hi >= lo {
                                ((hi - lo) / stp + 1) as f64
                            } else {
                                1.0
                            }
                        }
                        _ => 16.0, // symbolic trip: assume a modest inner loop
                    };
                    acc += (expr_nodes(lower) + expr_nodes(upper)) * op;
                    acc += trip * (stmts_cost(body, op, st) + st);
                }
                fir::ast::Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    acc += expr_nodes(cond) * op;
                    acc += stmts_cost(then_body, op, st)
                        .max(stmts_cost(else_body, op, st));
                }
                fir::ast::Stmt::Call { args, .. } => {
                    for a in args {
                        if let fir::ast::Arg::Expr(e) = a {
                            acc += expr_nodes(e) * op;
                        }
                    }
                    // Callee cost unknown; charge a flat call estimate.
                    acc += 50.0;
                }
            }
        }
        acc
    }
    stmts_cost(body, ns_per_op, ns_per_stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> KselectInput {
        KselectInput {
            ns_per_iteration: 100.0,
            bytes_per_iteration: 8.0,
            overhead_ns: 1_000.0,
            cpu_ns_per_byte: 0.05,
            wire_ns_per_byte: 4.0,
            messages_per_tile: 7.0,
            trip_count: 1024,
            align_to: None,
        }
    }

    #[test]
    fn k_grows_with_overhead() {
        let cheap = choose_k(&KselectInput {
            overhead_ns: 100.0,
            ..base()
        });
        let pricey = choose_k(&KselectInput {
            overhead_ns: 10_000.0,
            ..base()
        });
        assert!(pricey > cheap, "{pricey} vs {cheap}");
    }

    #[test]
    fn k_shrinks_with_heavier_compute() {
        let light = choose_k(&base());
        let heavy = choose_k(&KselectInput {
            ns_per_iteration: 10_000.0,
            ..base()
        });
        assert!(heavy <= light, "{heavy} vs {light}");
    }

    #[test]
    fn k_clamped_to_trip_count() {
        let k = choose_k(&KselectInput {
            overhead_ns: 1e12,
            trip_count: 64,
            ..base()
        });
        assert_eq!(k, 64);
    }

    #[test]
    fn alignment_rounds_to_divisor() {
        let k = choose_k(&KselectInput {
            align_to: Some(48),
            overhead_ns: 2_000.0,
            ..base()
        });
        assert_eq!(48 % k, 0, "k = {k} must divide 48");
        assert!(k >= 1);
    }

    #[test]
    fn cpu_bound_model_degrades_gracefully() {
        // TCP-like: 8 ns/B CPU on 8 B/iter = 64 ns vs 100 ns compute.
        let k = choose_k(&KselectInput {
            cpu_ns_per_byte: 8.0,
            ..base()
        });
        assert!(k >= 1);
    }

    fn profit_base() -> ProfitInput {
        // direct/standard/np=8-like figures under MPICH: o = 10 us,
        // G = 10 ns/B, beta = 8 ns/B, S = 16 KiB, K = 2048 aligned tiles.
        ProfitInput {
            partner_bytes: 16384.0,
            np: 8.0,
            trip_count: 16384,
            tile_size: 2048,
            messages_per_tile: 1.0,
            owner_strategy: true,
            ns_per_iteration: 48.0,
            overhead_ns: 10_000.0,
            cpu_ns_per_byte: 8.0,
            wire_ns_per_byte: 10.0,
            latency_ns: 55_000.0,
        }
    }

    #[test]
    fn owner_incast_on_tcp_predicts_slowdown() {
        let reason = predict_slowdown(&profit_base()).expect("0.37x case must decline");
        assert!(reason.contains("incast"), "{reason}");
    }

    #[test]
    fn owner_with_enough_compute_stays_profitable() {
        // np = 2 with heavy per-iteration compute: one partner's burst
        // hides easily (the measured 1.02x case on MPICH-GM).
        let keep = ProfitInput {
            np: 2.0,
            ns_per_iteration: 60.0,
            overhead_ns: 1_000.0,
            cpu_ns_per_byte: 0.05,
            wire_ns_per_byte: 4.0,
            latency_ns: 7_000.0,
            tile_size: 1024,
            trip_count: 2048,
            partner_bytes: 8192.0,
            ..profit_base()
        };
        assert_eq!(predict_slowdown(&keep), None);
    }

    #[test]
    fn all_peers_ignores_incast_but_catches_overhead_blowup() {
        // The skewed Fig. 4 exchange never triggers the incast branch...
        let all_peers = ProfitInput {
            owner_strategy: false,
            messages_per_tile: 7.0,
            ns_per_iteration: 0.0,
            ..profit_base()
        };
        assert_eq!(predict_slowdown(&all_peers), None);
        // ...but pathological tiling (K = 1 => trip x (NP-1) messages)
        // still declines on fixed overheads alone.
        let tiny_tiles = ProfitInput {
            tile_size: 1,
            ..all_peers
        };
        let reason = predict_slowdown(&tiny_tiles).expect("overhead blowup");
        assert!(reason.contains("fixed overhead"), "{reason}");
    }

    #[test]
    fn rdma_class_models_keep_the_owner_strategy_at_np2() {
        let gm = ProfitInput {
            np: 2.0,
            overhead_ns: 1_000.0,
            cpu_ns_per_byte: 0.05,
            wire_ns_per_byte: 4.0,
            latency_ns: 7_000.0,
            ns_per_iteration: 48.0,
            tile_size: 2048,
            ..profit_base()
        };
        assert_eq!(predict_slowdown(&gm), None);
        // Same stack at np = 8: seven simultaneous senders per owner
        // overwhelm one tile's compute — decline (measured 0.94x).
        let gm_np8 = ProfitInput { np: 8.0, ..gm };
        assert!(predict_slowdown(&gm_np8).is_some());
    }

    /// `direct` figures on the zero-copy `rdma-ideal` preset (o = 300 ns,
    /// G = 1 ns/B, β = 0, L = 2 us), per size class.
    fn rdma_owner(np: f64, partner_bytes: f64, trip: i64, k: i64, per_iter: f64) -> ProfitInput {
        ProfitInput {
            partner_bytes,
            np,
            trip_count: trip,
            tile_size: k,
            messages_per_tile: 1.0,
            owner_strategy: true,
            ns_per_iteration: per_iter,
            overhead_ns: 300.0,
            cpu_ns_per_byte: 0.0,
            wire_ns_per_byte: 1.0,
            latency_ns: 2_000.0,
        }
    }

    #[test]
    fn tiny_payload_owner_declines_on_every_stack() {
        // direct/small: 128 B per partner — measured 0.85x (rdma-ideal),
        // 0.63x (MPICH-GM), 0.52x (MPICH) even at np = 2. The payload
        // floor declines all three.
        for (o, beta, gap, lat) in [
            (10_000.0, 8.0, 10.0, 55_000.0), // MPICH
            (1_000.0, 0.05, 4.0, 7_000.0),   // MPICH-GM
            (300.0, 0.0, 1.0, 2_000.0),      // RDMA-ideal
        ] {
            let p = ProfitInput {
                partner_bytes: 128.0,
                np: 2.0,
                trip_count: 32,
                tile_size: 16,
                ns_per_iteration: 103.0,
                overhead_ns: o,
                cpu_ns_per_byte: beta,
                wire_ns_per_byte: gap,
                latency_ns: lat,
                ..profit_base()
            };
            let reason = predict_slowdown(&p).expect("tiny payloads must decline");
            assert!(reason.contains("floor"), "{reason}");
        }
    }

    #[test]
    fn zero_copy_few_senders_declines_medium_and_standard() {
        // rdma-ideal owner cases below the sender-count threshold, all
        // measured slower when forced: medium np=2 (0.94x), np=4 (0.99x),
        // standard np=2 (0.95x).
        for p in [
            rdma_owner(2.0, 8192.0, 2048, 1024, 59.0),
            rdma_owner(4.0, 8192.0, 4096, 1024, 59.0),
            rdma_owner(2.0, 16384.0, 4096, 1024, 48.0),
        ] {
            let reason = predict_slowdown(&p).expect("few zero-copy senders must decline");
            assert!(reason.contains("zero-copy"), "{reason}");
        }
    }

    #[test]
    fn zero_copy_many_senders_accepts_medium_and_standard_np8() {
        // The wrong-decline half of the calibration gap: rdma-ideal np=8
        // owner cases measure 1.02x (medium) and 1.04x (standard) — 7
        // senders pipeline the owner's receive link. The old incast charge
        // declined the standard case; the zero-copy branch accepts both.
        assert_eq!(predict_slowdown(&rdma_owner(8.0, 8192.0, 8192, 1024, 59.0)), None);
        assert_eq!(
            predict_slowdown(&rdma_owner(8.0, 16384.0, 16384, 2048, 48.0)),
            None
        );
    }

    /// `interchange-blocked` per-column figures: `sz`-element columns on
    /// a given stack, with the inner nest's estimated per-iteration cost.
    fn column(sz: f64, np: f64, o: f64, beta: f64, gap: f64) -> ColumnInput {
        ColumnInput {
            partner_bytes: sz * 8.0,
            np,
            // The blocked variant's inner nest costs ~26 ns per element
            // (stencil + compute assignment) under the unit cost model.
            ns_per_iteration: sz * 26.0,
            overhead_ns: o,
            cpu_ns_per_byte: beta,
            wire_ns_per_byte: gap,
        }
    }

    #[test]
    fn per_column_small_payloads_decline_on_every_stack() {
        // interchange-blocked/small: 64-element (512 B) columns measure
        // 0.21x–0.79x everywhere; the payload floor declines them all.
        for (o, beta, gap) in [
            (10_000.0, 8.0, 10.0), // MPICH
            (1_000.0, 0.05, 4.0),  // MPICH-GM
            (300.0, 0.0, 1.0),     // RDMA-ideal
        ] {
            for np in [2.0, 4.0, 8.0] {
                let reason = predict_column_slowdown(&column(64.0, np, o, beta, gap))
                    .expect("small columns must decline");
                assert!(reason.contains("floor"), "{reason}");
            }
        }
    }

    #[test]
    fn per_column_incast_declines_the_copying_stacks() {
        // Medium (8 KiB) and standard (32 KiB) columns on the two copying
        // stacks: measured 0.30x–0.85x. One iteration's compute cannot
        // hide an (NP-1)-column burst.
        for sz in [1024.0, 4096.0] {
            for np in [2.0, 4.0, 8.0] {
                for (o, beta, gap) in [(10_000.0, 8.0, 10.0), (1_000.0, 0.05, 4.0)] {
                    let reason = predict_column_slowdown(&column(sz, np, o, beta, gap))
                        .expect("copying stacks must decline");
                    assert!(reason.contains("incast"), "{reason}");
                }
            }
        }
    }

    #[test]
    fn per_column_zero_copy_keeps_only_the_measured_win() {
        let rdma = |sz: f64, np: f64| column(sz, np, 300.0, 0.0, 1.0);
        // Few senders (np <= 4): measured 0.68x–0.98x — decline.
        for sz in [1024.0, 4096.0] {
            for np in [2.0, 4.0] {
                let reason = predict_column_slowdown(&rdma(sz, np)).expect("few senders");
                assert!(reason.contains("zero-copy"), "{reason}");
            }
        }
        // np = 8 with 8 KiB columns: 0.95x — still declines.
        assert!(predict_column_slowdown(&rdma(1024.0, 8.0)).is_some());
        // np = 8 with 32 KiB columns: the single measured win (1.01x).
        assert_eq!(predict_column_slowdown(&rdma(4096.0, 8.0)), None);
    }

    #[test]
    fn estimate_counts_nested_loops() {
        let body = fir::parse_stmts(
            "do i = 1, 10\n  a(i) = i * 2 + 1\nend do",
        )
        .unwrap();
        let ns = estimate_iteration_ns(&body, 1.0, 2.0);
        // 10 iterations of an assignment with ~7 nodes each, plus loop
        // bookkeeping: must be well above 50 and below 500.
        assert!(ns > 50.0 && ns < 500.0, "ns = {ns}");
    }

    #[test]
    fn estimate_symbolic_trip_uses_default() {
        let body = fir::parse_stmts("do i = 1, n\n  a(i) = 1\nend do").unwrap();
        let ns = estimate_iteration_ns(&body, 1.0, 2.0);
        assert!(ns > 16.0);
    }
}
