//! # compuniformer — the automated pre-push transformation
//!
//! This crate is the paper's contribution: a source-to-source transformer
//! (the authors call theirs the *Compuniformer*) that restructures MPI
//! programs of the shape
//!
//! ```text
//! do …                          ! ℓ: finalize every element of As
//!   As(…) = …
//! end do
//! call mpi_alltoall(As, count, Ar)   ! C: blocking, zero overlap
//! ```
//!
//! into a tiled form that *pre-pushes* each tile's finalized sub-blocks
//! with non-blocking sends while the CPU computes the next tile, following
//! the paper's pipeline:
//!
//! - [`opportunity`]: find `C`, `As`, `Ar` and the finalizing nest `ℓ`
//!   (§3.1), with user queries for opaque procedures (semi-automatic);
//! - [`pattern`]: classify the compute-copy pattern, *direct* vs
//!   *indirect* (§3.2);
//! - direct handling (§3.3) with output-dependence safety (`depan`) and
//!   partial-triplet regions; indirect handling (§3.4) removes the
//!   redundant copy loop and expands the temporary;
//! - [`commgen`]: the Figure-4 skewed exchange, owner-sends fallbacks, and
//!   loop interchange when the node loop is outermost (§3.5);
//! - [`transform`]: the 5-step rewrite (§3.6);
//! - [`kselect`]: the tile-size heuristic the paper delegates to [3].
//!
//! ```
//! use compuniformer::{transform, Options};
//!
//! let src = "\
//! program main
//!   real :: as(64, 4), ar(64, 4)
//!   do iy = 1, 64
//!     do iz = 1, 4
//!       as(iy, iz) = iy * iz
//!     end do
//!   end do
//!   call mpi_alltoall(as, 64, ar)
//! end program";
//! let program = fir::parse(src).unwrap();
//! let opts = Options {
//!     tile_size: Some(16),
//!     // The analysis context supplies what static analysis cannot prove
//!     // symbolically here: the run uses 4 ranks.
//!     context: depan::Context::new().with("np", 4),
//!     ..Default::default()
//! };
//! let out = transform(&program, &opts).unwrap();
//! let text = fir::unparse(&out.program);
//! assert!(text.contains("mpi_isend"));
//! assert!(!text.contains("mpi_alltoall"));
//! ```

pub mod commgen;
pub mod kselect;
pub mod opportunity;
pub mod pattern;
pub mod report;
pub mod transform;

pub use opportunity::{find_opportunities, Opportunity, UserOracle, UserQuery};
pub use pattern::{classify, Pattern};
pub use report::{OppOutcome, Status, Strategy, TransformReport};
pub use transform::{transform, Options, TransformError, TransformOutput};
