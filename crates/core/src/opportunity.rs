//! Opportunity detection (paper §3.1): find each `MPI_ALLTOALL` call `C`,
//! the sent array `As`, the received array `Ar`, and the loop nest `ℓ` —
//! "the last loop nest not in a conditional statement, lexically preceding
//! `C`, that mutates `As`".

use fir::ast::{Arg, Expr, Procedure, Program, Stmt};
use fir::Span;

/// Answers the questions static analysis cannot: the paper's user queries
/// that make the system *semi-automatic*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UserOracle {
    /// Refuse to transform when a question comes up (fully automatic mode).
    #[default]
    Decline,
    /// Answer every question "yes, it is safe" (the user has inspected the
    /// code). Answers are recorded in the report.
    AssumeSafe,
}

/// A question the system had to ask (or would have asked) the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserQuery {
    pub question: String,
    pub assumed_yes: bool,
}

/// Index path from a statement list down to a statement:
/// `[3, 0]` = fourth statement's body's first statement.
pub type StmtPath = Vec<usize>;

/// Fetch the statement at `path` (panics on bad paths — they only come from
/// our own walk).
pub fn stmt_at<'a>(body: &'a [Stmt], path: &[usize]) -> &'a Stmt {
    let (first, rest) = path.split_first().expect("non-empty path");
    let s = &body[*first];
    if rest.is_empty() {
        return s;
    }
    match s {
        Stmt::Do { body, .. } => stmt_at(body, rest),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            // Paths through ifs use then-branch indices first.
            if rest[0] < then_body.len() {
                stmt_at(then_body, rest)
            } else {
                let mut rest = rest.to_vec();
                rest[0] -= then_body.len();
                stmt_at(else_body, &rest)
            }
        }
        _ => panic!("path descends into a leaf statement"),
    }
}

/// One detected transformation opportunity.
#[derive(Debug, Clone)]
pub struct Opportunity {
    /// Path (within the procedure body) to the `mpi_alltoall` call `C`.
    pub comm_path: StmtPath,
    /// Path to the finalizing loop nest `ℓ`.
    pub loop_path: StmtPath,
    /// The sent array `As` (first argument of `C`).
    pub send_array: String,
    /// The received array `Ar` (third argument of `C`).
    pub recv_array: String,
    /// Per-partner element count (second argument of `C`).
    pub count: Expr,
    pub comm_span: Span,
    /// Statements between `ℓ` and `C` (same list): must be empty for the
    /// transformation to proceed; recorded for diagnostics.
    pub gap_statements: usize,
}

/// Why a candidate alltoall could not become an opportunity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    CommInsideConditional { span: Span },
    SendBufferNotBareArray { span: Span },
    RecvBufferNotBareArray { span: Span },
    NoPrecedingMutatingLoop { array: String, span: Span },
    MutatorInsideConditional { span: Span },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::CommInsideConditional { .. } => {
                write!(f, "the alltoall call sits inside a conditional")
            }
            Rejection::SendBufferNotBareArray { .. } => {
                write!(f, "the send buffer is not a bare array name")
            }
            Rejection::RecvBufferNotBareArray { .. } => {
                write!(f, "the receive buffer is not a bare array name")
            }
            Rejection::NoPrecedingMutatingLoop { array, .. } => {
                write!(f, "no loop preceding the call mutates `{array}`")
            }
            Rejection::MutatorInsideConditional { .. } => {
                write!(f, "the finalizing loop is inside a conditional")
            }
        }
    }
}

/// Result of scanning a procedure.
#[derive(Debug, Default)]
pub struct Scan {
    pub opportunities: Vec<Opportunity>,
    pub rejections: Vec<Rejection>,
    pub queries: Vec<UserQuery>,
}

/// Scan the main program for opportunities.
///
/// `opaque_procedures` models the paper's "source code for the procedure is
/// unavailable" case: calls to these procedures are treated as opaque, and
/// whether they mutate `As` is resolved by the oracle.
pub fn find_opportunities(
    program: &Program,
    oracle: UserOracle,
    opaque_procedures: &[String],
) -> Scan {
    let mut scan = Scan::default();
    walk(
        program,
        &program.main.body,
        &mut Vec::new(),
        false,
        oracle,
        opaque_procedures,
        &mut scan,
    );
    scan
}

#[allow(clippy::too_many_arguments)]
fn walk(
    program: &Program,
    body: &[Stmt],
    prefix: &mut StmtPath,
    in_conditional: bool,
    oracle: UserOracle,
    opaque: &[String],
    scan: &mut Scan,
) {
    for (i, s) in body.iter().enumerate() {
        match s {
            Stmt::Call { name, args, span } if name == "mpi_alltoall" => {
                if in_conditional {
                    scan.rejections
                        .push(Rejection::CommInsideConditional { span: *span });
                    continue;
                }
                consider_alltoall(program, body, i, prefix, args, *span, oracle, opaque, scan);
            }
            Stmt::Do { body: b, .. } => {
                prefix.push(i);
                walk(program, b, prefix, in_conditional, oracle, opaque, scan);
                prefix.pop();
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                prefix.push(i);
                walk(program, then_body, prefix, true, oracle, opaque, scan);
                walk(program, else_body, prefix, true, oracle, opaque, scan);
                prefix.pop();
            }
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn consider_alltoall(
    program: &Program,
    body: &[Stmt],
    c_idx: usize,
    prefix: &StmtPath,
    args: &[Arg],
    span: Span,
    oracle: UserOracle,
    opaque: &[String],
    scan: &mut Scan,
) {
    let Some(send_array) = bare_array_name(&args[0]) else {
        scan.rejections
            .push(Rejection::SendBufferNotBareArray { span });
        return;
    };
    let Some(recv_array) = bare_array_name(&args[2]) else {
        scan.rejections
            .push(Rejection::RecvBufferNotBareArray { span });
        return;
    };
    let count = match &args[1] {
        Arg::Expr(e) => e.clone(),
        Arg::Section(_) => {
            scan.rejections
                .push(Rejection::SendBufferNotBareArray { span });
            return;
        }
    };

    // ℓ: last loop before C (same statement list, not in a conditional)
    // that mutates As.
    let mut loop_count_before = 0usize;
    let mut found: Option<usize> = None;
    for (j, s) in body[..c_idx].iter().enumerate().rev() {
        if let Stmt::Do { body: lb, .. } = s {
            loop_count_before += 1;
            if mutates(program, lb, &send_array, oracle, opaque, scan) {
                found = Some(j);
                break;
            }
        }
    }
    match found {
        Some(j) => {
            let mut loop_path = prefix.clone();
            loop_path.push(j);
            let mut comm_path = prefix.clone();
            comm_path.push(c_idx);
            scan.opportunities.push(Opportunity {
                comm_path,
                loop_path,
                send_array,
                recv_array,
                count,
                comm_span: span,
                gap_statements: c_idx - j - 1,
            });
        }
        None => {
            let _ = loop_count_before;
            scan.rejections.push(Rejection::NoPrecedingMutatingLoop {
                array: send_array,
                span,
            });
        }
    }
}

fn bare_array_name(arg: &Arg) -> Option<String> {
    match arg {
        Arg::Expr(Expr::Var(n, _)) => Some(n.clone()),
        _ => None,
    }
}

/// Does this statement list mutate `array`? Direct assignment, or passing
/// it by reference to a procedure that writes its parameter. Opaque
/// procedures trigger an oracle query (paper §3.1: "the user must be
/// queried, making the system semi-automatic").
fn mutates(
    program: &Program,
    body: &[Stmt],
    array: &str,
    oracle: UserOracle,
    opaque: &[String],
    scan: &mut Scan,
) -> bool {
    for s in body {
        match s {
            Stmt::Assign { target, .. } if target.name == array => return true,
            Stmt::Do { body: b, .. }
                if mutates(program, b, array, oracle, opaque, scan) => {
                    return true;
                }
            Stmt::If {
                then_body,
                else_body,
                ..
            }
                if (mutates(program, then_body, array, oracle, opaque, scan)
                    || mutates(program, else_body, array, oracle, opaque, scan))
                => {
                    return true;
                }
            Stmt::Call { name, args, .. } => {
                for (ai, a) in args.iter().enumerate() {
                    if a.passed_name() != Some(array) {
                        continue;
                    }
                    if opaque.iter().any(|p| p == name) {
                        // Source unavailable: ask the user.
                        let assumed = oracle == UserOracle::AssumeSafe;
                        scan.queries.push(UserQuery {
                            question: format!(
                                "does procedure `{name}` (source unavailable) write to \
                                 argument {} (`{array}`)?",
                                ai + 1
                            ),
                            assumed_yes: assumed,
                        });
                        if assumed {
                            return true;
                        }
                        continue;
                    }
                    if let Some(callee) = program.procedure(name) {
                        if let Some(param) = callee.params.get(ai) {
                            if procedure_writes_param(program, callee, &param.name) {
                                return true;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Does `proc` write (directly or transitively) to its parameter `param`?
fn procedure_writes_param(program: &Program, proc: &Procedure, param: &str) -> bool {
    fn body_writes(program: &Program, body: &[Stmt], name: &str) -> bool {
        for s in body {
            match s {
                Stmt::Assign { target, .. } if target.name == name => return true,
                Stmt::Do { body: b, .. }
                    if body_writes(program, b, name) => {
                        return true;
                    }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                }
                    if (body_writes(program, then_body, name)
                        || body_writes(program, else_body, name))
                    => {
                        return true;
                    }
                Stmt::Call { name: callee, args, .. } => {
                    for (ai, a) in args.iter().enumerate() {
                        if a.passed_name() == Some(name) {
                            if let Some(c) = program.procedure(callee) {
                                if let Some(p) = c.params.get(ai) {
                                    if body_writes(program, &c.body, &p.name) {
                                        return true;
                                    }
                                }
                            } else if fir::intrinsics::is_builtin_sub(callee)
                                && callee == "mpi_irecv"
                            {
                                return true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }
    body_writes(program, &proc.body, param)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::parse;

    fn scan_src(src: &str) -> Scan {
        find_opportunities(&parse(src).unwrap(), UserOracle::Decline, &[])
    }

    const FIG2A: &str = "\
program main
  integer :: nx
  real :: as(64), ar(64)
  nx = 64
  do iy = 1, nx
    do ix = 1, nx
      as(ix) = ix * iy
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program";

    #[test]
    fn finds_fig2_opportunity() {
        let scan = scan_src(FIG2A);
        assert_eq!(scan.opportunities.len(), 1);
        let o = &scan.opportunities[0];
        assert_eq!(o.send_array, "as");
        assert_eq!(o.recv_array, "ar");
        assert_eq!(o.loop_path, vec![1, 0]);
        assert_eq!(o.comm_path, vec![1, 1]);
        assert_eq!(o.gap_statements, 0);
        assert!(o.count.is_int(16));
    }

    #[test]
    fn stmt_at_resolves_paths() {
        let p = parse(FIG2A).unwrap();
        let scan = scan_src(FIG2A);
        let o = &scan.opportunities[0];
        assert!(matches!(
            stmt_at(&p.main.body, &o.loop_path),
            Stmt::Do { .. }
        ));
        assert!(matches!(
            stmt_at(&p.main.body, &o.comm_path),
            Stmt::Call { name, .. } if name == "mpi_alltoall"
        ));
    }

    #[test]
    fn alltoall_at_top_level_found() {
        let src = "\
program main
  real :: as(8), ar(8)
  do i = 1, 8
    as(i) = i
  end do
  call mpi_alltoall(as, 2, ar)
end program";
        let scan = scan_src(src);
        assert_eq!(scan.opportunities.len(), 1);
        assert_eq!(scan.opportunities[0].loop_path, vec![0]);
        assert_eq!(scan.opportunities[0].comm_path, vec![1]);
    }

    #[test]
    fn conditional_comm_rejected() {
        let src = "\
program main
  real :: as(8), ar(8)
  do i = 1, 8
    as(i) = i
  end do
  if (mynum == 0) then
    call mpi_alltoall(as, 2, ar)
  end if
end program";
        let scan = scan_src(src);
        assert!(scan.opportunities.is_empty());
        assert!(matches!(
            scan.rejections[0],
            Rejection::CommInsideConditional { .. }
        ));
    }

    #[test]
    fn skips_non_mutating_loops() {
        // The loop between ℓ and C touches only `other`; ℓ is found anyway.
        let src = "\
program main
  real :: as(8), ar(8), other(8)
  do i = 1, 8
    as(i) = i
  end do
  do i = 1, 8
    other(i) = i
  end do
  call mpi_alltoall(as, 2, ar)
end program";
        let scan = scan_src(src);
        assert_eq!(scan.opportunities.len(), 1);
        assert_eq!(scan.opportunities[0].loop_path, vec![0]);
        assert_eq!(scan.opportunities[0].gap_statements, 1);
    }

    #[test]
    fn no_mutating_loop_rejected() {
        let src = "\
program main
  real :: as(8), ar(8)
  as(1) = 5
  call mpi_alltoall(as, 2, ar)
end program";
        let scan = scan_src(src);
        assert!(scan.opportunities.is_empty());
        assert!(matches!(
            scan.rejections[0],
            Rejection::NoPrecedingMutatingLoop { .. }
        ));
    }

    #[test]
    fn mutation_through_procedure_detected() {
        let src = "\
subroutine fill(n, at)
  integer :: n
  real :: at(n)
  do i = 1, n
    at(i) = i
  end do
end subroutine

program main
  real :: as(8), ar(8)
  do iy = 1, 4
    call fill(8, as)
  end do
  call mpi_alltoall(as, 2, ar)
end program";
        let scan = scan_src(src);
        assert_eq!(scan.opportunities.len(), 1);
    }

    #[test]
    fn transitive_mutation_detected() {
        let src = "\
subroutine inner(m, b)
  integer :: m
  real :: b(m)
  b(1) = 1
end subroutine

subroutine outer(m, b)
  integer :: m
  real :: b(m)
  call inner(m, b)
end subroutine

program main
  real :: as(8), ar(8)
  do iy = 1, 4
    call outer(8, as)
  end do
  call mpi_alltoall(as, 2, ar)
end program";
        let scan = scan_src(src);
        assert_eq!(scan.opportunities.len(), 1);
    }

    #[test]
    fn read_only_procedure_not_a_mutator() {
        let src = "\
subroutine reader(n, at)
  integer :: n
  real :: at(n)
  x = at(1)
end subroutine

program main
  real :: as(8), ar(8)
  do iy = 1, 4
    call reader(8, as)
  end do
  call mpi_alltoall(as, 2, ar)
end program";
        let scan = scan_src(src);
        assert!(scan.opportunities.is_empty());
    }

    #[test]
    fn opaque_procedure_queries_oracle() {
        let src = "\
subroutine mystery(n, at)
  integer :: n
  real :: at(n)
  at(1) = 1
end subroutine

program main
  real :: as(8), ar(8)
  do iy = 1, 4
    call mystery(8, as)
  end do
  call mpi_alltoall(as, 2, ar)
end program";
        let program = parse(src).unwrap();
        // Declining oracle: no opportunity, one query recorded.
        let scan = find_opportunities(
            &program,
            UserOracle::Decline,
            &["mystery".to_string()],
        );
        assert!(scan.opportunities.is_empty());
        assert_eq!(scan.queries.len(), 1);
        assert!(!scan.queries[0].assumed_yes);
        // AssumeSafe oracle: opportunity found, query recorded as assumed.
        let scan = find_opportunities(
            &program,
            UserOracle::AssumeSafe,
            &["mystery".to_string()],
        );
        assert_eq!(scan.opportunities.len(), 1);
        assert!(scan.queries[0].assumed_yes);
    }

    #[test]
    fn section_send_buffer_rejected() {
        let src = "\
program main
  real :: as(8), ar(8)
  do i = 1, 8
    as(i) = i
  end do
  call mpi_alltoall(as(1:8), 2, ar)
end program";
        let scan = scan_src(src);
        assert!(matches!(
            scan.rejections[0],
            Rejection::SendBufferNotBareArray { .. }
        ));
    }
}
