//! Compute-copy pattern classification (paper §3.2).
//!
//! **Direct**: `As` is written by assignments that *compute* values
//! (Fig. 2(a): "RHS is not array ref."). We generalize the paper's rule
//! slightly: the RHS may read arrays (including `As` itself) because the
//! transformation preserves the exact execution order of `ℓ`'s iterations —
//! only reads of the *receive* array are hazardous, and those are rejected
//! separately by the planner. The original strict rule exists to tell
//! compute loops apart from copy loops, which the next case handles.
//!
//! **Indirect**: a procedure call `call p(…, At)` fills a temporary `At`,
//! and a copy loop `ℓcp` transfers `At` into `As` with an RHS that is
//! *exactly* one reference to `At` (`As(…) = At(…)` — Fig. 3(a)). The
//! transformation deletes `ℓcp` and ships `At` directly. When the indirect
//! checks fail, the planner falls back to treating the copy as a direct
//! computation.

use fir::ast::{Expr, Stmt};
use fir::Span;

/// Location of the pieces of an indirect pattern inside `ℓ`'s body.
#[derive(Debug, Clone)]
pub struct IndirectShape {
    /// Index (within `ℓ`'s body) of the `call p(…, At)` statement.
    pub producer_idx: usize,
    /// Name of the producer procedure `P`.
    pub producer: String,
    /// Which argument position of `P` receives `At`.
    pub temp_arg_idx: usize,
    /// Index (within `ℓ`'s body) of the copy loop `ℓcp`.
    pub copy_loop_idx: usize,
    /// The temporary array `At`.
    pub temp_array: String,
}

/// Classification result.
#[derive(Debug, Clone)]
pub enum Pattern {
    Direct,
    Indirect(IndirectShape),
    Unsupported { reason: String, span: Span },
}

/// Classify the loop nest `ℓ` (its body) with respect to `As`.
pub fn classify(loop_body: &[Stmt], send_array: &str) -> Pattern {
    // Gather all direct writes to As anywhere under ℓ, noting whether any
    // RHS references an array.
    let mut any_direct_write = false;
    let mut rhs_array: Option<(String, Span)> = None;
    let mut saw_other_rhs_shape = false;

    fn visit(
        stmts: &[Stmt],
        send: &str,
        any: &mut bool,
        rhs_array: &mut Option<(String, Span)>,
        other: &mut bool,
    ) {
        for s in stmts {
            match s {
                Stmt::Assign { target, value, .. } if target.name == send => {
                    *any = true;
                    match single_array_rhs(value) {
                        RhsShape::NoArray => {}
                        RhsShape::SingleArray(name, span) => {
                            if let Some((prev, _)) = rhs_array {
                                if *prev != name {
                                    *other = true;
                                }
                            }
                            *rhs_array = Some((name, span));
                        }
                        RhsShape::Complex => *other = true,
                    }
                }
                Stmt::Do { body, .. } => visit(body, send, any, rhs_array, other),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    visit(then_body, send, any, rhs_array, other);
                    visit(else_body, send, any, rhs_array, other);
                }
                _ => {}
            }
        }
    }
    visit(
        loop_body,
        send_array,
        &mut any_direct_write,
        &mut rhs_array,
        &mut saw_other_rhs_shape,
    );

    if saw_other_rhs_shape {
        // General computation (possibly reading arrays): the relaxed
        // direct pattern.
        return if any_direct_write {
            Pattern::Direct
        } else {
            Pattern::Unsupported {
                reason: format!(
                    "no direct writes to `{send_array}` inside the loop nest"
                ),
                span: Span::DUMMY,
            }
        };
    }

    match rhs_array {
        None if any_direct_write => Pattern::Direct,
        None => Pattern::Unsupported {
            reason: format!("no direct writes to `{send_array}` inside the loop nest"),
            span: Span::DUMMY,
        },
        Some((temp, _)) if temp == send_array => {
            // `as(i) = as(j)` self-copy: a direct computation (the safety
            // analysis decides whether it is tile-safe).
            Pattern::Direct
        }
        Some((temp, span)) => classify_indirect(loop_body, send_array, &temp, span),
    }
}

enum RhsShape {
    NoArray,
    SingleArray(String, Span),
    Complex,
}

/// Is the RHS exactly one array reference (Fig. 3's `As(…) = At(ix)`)?
fn single_array_rhs(e: &Expr) -> RhsShape {
    match e {
        Expr::ArrayRef { name, indices, span } => {
            if indices.iter().any(Expr::contains_array_ref) {
                RhsShape::Complex
            } else {
                RhsShape::SingleArray(name.clone(), *span)
            }
        }
        _ if !e.contains_array_ref() => RhsShape::NoArray,
        _ => RhsShape::Complex,
    }
}

fn classify_indirect(
    loop_body: &[Stmt],
    send_array: &str,
    temp: &str,
    span: Span,
) -> Pattern {
    // The copy loop ℓcp must be a direct child of ℓ's body whose only
    // writes to As come from `As(…) = At(…)` assignments.
    let _ = span;
    let mut copy_loop_idx = None;
    for (i, s) in loop_body.iter().enumerate() {
        if let Stmt::Do { .. } = s {
            if writes_send_from_temp(std::slice::from_ref(s), send_array, temp) {
                if copy_loop_idx.is_some() {
                    // Multiple copy loops: not Fig. 3's shape; treat the
                    // copies as direct computation.
                    return Pattern::Direct;
                }
                copy_loop_idx = Some(i);
            }
        }
    }
    let Some(copy_loop_idx) = copy_loop_idx else {
        return Pattern::Direct;
    };

    // The producer: the last call before ℓcp that passes At by reference.
    let mut producer = None;
    for (i, s) in loop_body[..copy_loop_idx].iter().enumerate().rev() {
        if let Stmt::Call { name, args, .. } = s {
            if let Some(ai) = args.iter().position(|a| a.passed_name() == Some(temp)) {
                producer = Some((i, name.clone(), ai));
                break;
            }
        }
    }
    let Some((producer_idx, producer, temp_arg_idx)) = producer else {
        // A copy with no producer call: plain direct computation.
        return Pattern::Direct;
    };

    Pattern::Indirect(IndirectShape {
        producer_idx,
        producer,
        temp_arg_idx,
        copy_loop_idx,
        temp_array: temp.to_string(),
    })
}

fn writes_send_from_temp(stmts: &[Stmt], send: &str, temp: &str) -> bool {
    for s in stmts {
        match s {
            Stmt::Assign { target, value, .. } if target.name == send => {
                if matches!(value, Expr::ArrayRef { name, .. } if name == temp) {
                    return true;
                }
            }
            Stmt::Do { body, .. }
                if writes_send_from_temp(body, send, temp) => {
                    return true;
                }
            Stmt::If {
                then_body,
                else_body,
                ..
            }
                if (writes_send_from_temp(then_body, send, temp)
                    || writes_send_from_temp(else_body, send, temp))
                => {
                    return true;
                }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::parse_stmts;

    #[test]
    fn direct_pattern_recognized() {
        let body = parse_stmts("do ix = 1, nx\n  as(ix) = ix * iy + 1\nend do").unwrap();
        let inner = match &body[0] {
            Stmt::Do { body, .. } => body,
            _ => unreachable!(),
        };
        assert!(matches!(classify(inner, "as"), Pattern::Direct));
    }

    #[test]
    fn direct_pattern_whole_nest() {
        // classify receives ℓ's body; writes may be nested deeper.
        let body =
            parse_stmts("do ix = 1, nx\n  do iz = 1, np\n    as(ix, iz) = ix * iz\n  end do\nend do")
                .unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Direct));
    }

    #[test]
    fn indirect_pattern_recognized() {
        // ℓ body (Fig 3a): call p(..., at); copy loop.
        let body = parse_stmts(
            "call p(iy, at)\ndo ix = 1, 100\n  tx = mod(ix, 10)\n  as(tx + 1, ix / 10 + 1, iy) = at(ix)\nend do",
        )
        .unwrap();
        match classify(&body, "as") {
            Pattern::Indirect(shape) => {
                assert_eq!(shape.producer, "p");
                assert_eq!(shape.producer_idx, 0);
                assert_eq!(shape.temp_arg_idx, 1);
                assert_eq!(shape.copy_loop_idx, 1);
                assert_eq!(shape.temp_array, "at");
            }
            other => panic!("expected indirect, got {other:?}"),
        }
    }

    #[test]
    fn self_update_is_direct() {
        // `as(ix) = as(ix) + 1` — a computation; safety analysis decides
        // tile legality, not the classifier.
        let body = parse_stmts("do ix = 1, nx\n  as(ix) = as(ix) + 1\nend do").unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Direct));
    }

    #[test]
    fn stencil_reading_other_arrays_is_direct() {
        let body =
            parse_stmts("do ix = 1, nx\n  as(ix) = c(ix) * 2 + c(ix + 1)\nend do").unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Direct));
    }

    #[test]
    fn pure_self_copy_rhs_is_direct() {
        let body = parse_stmts("do ix = 1, nx\n  as(ix) = as(nx - ix + 1)\nend do").unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Direct));
    }

    #[test]
    fn two_temp_arrays_falls_back_to_direct() {
        let body = parse_stmts(
            "do ix = 1, nx\n  as(ix) = at(ix)\nend do\ndo ix = 1, nx\n  as(ix) = bt(ix)\nend do",
        )
        .unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Direct));
    }

    #[test]
    fn missing_producer_falls_back_to_direct() {
        let body = parse_stmts("do ix = 1, 100\n  as(ix) = at(ix)\nend do").unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Direct));
    }

    #[test]
    fn no_write_at_all_unsupported() {
        let body = parse_stmts("do ix = 1, nx\n  other(ix) = 1\nend do").unwrap();
        assert!(matches!(classify(&body, "as"), Pattern::Unsupported { .. }));
    }
}
