//! The semi-automatic transformation report: what was found, what was
//! decided, what was assumed, and what the user was (or would have been)
//! asked.

use crate::opportunity::UserQuery;

/// Which replacement communication scheme was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Figure 4: every tile sends a slice to all NP-1 peers, skewed to
    /// avoid hotspots (node loop inside the tiled loop).
    TiledAllPeers,
    /// Rank-1 owner sends: each tile's block goes to its single owning
    /// rank (node "loop" is the tiled loop; paper §3.5's subset case).
    TiledOwner,
    /// Rank-2 fallback when the node loop is outermost and interchange is
    /// illegal: per-column owner sends.
    TiledOwnerColumns,
    /// Indirect pattern (§3.4): the temporary is expanded and shipped
    /// directly, one block per iteration; the copy loop is deleted.
    IndirectPrepush,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::TiledAllPeers => write!(f, "tiled all-peers exchange (Fig. 4)"),
            Strategy::TiledOwner => write!(f, "tiled owner sends"),
            Strategy::TiledOwnerColumns => write!(f, "per-column owner sends"),
            Strategy::IndirectPrepush => write!(f, "indirect prepush (copy removed)"),
        }
    }
}

/// Whether an opportunity was transformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    Applied,
    Declined(Vec<String>),
    /// The transformation was *feasible* but the model-informed predictor
    /// said pre-pushing would be slower (e.g. the owner-sends strategy on
    /// a high-overhead stack): the original program is emitted unchanged,
    /// with this note.
    Unprofitable(String),
    /// The transformation was applied but the emitted program failed the
    /// static communication-safety verification ([`analyzer`]): the
    /// original program is emitted unchanged, with the diagnostics. A
    /// prepush that cannot be *proved* hazard-free does not ship.
    AnalysisRejected(Vec<String>),
}

/// Per-opportunity outcome.
#[derive(Debug, Clone)]
pub struct OppOutcome {
    pub send_array: String,
    pub recv_array: String,
    pub strategy: Option<Strategy>,
    pub tile_size: Option<i64>,
    /// Arrays the transformation made dead (the indirect pattern's `As`):
    /// equivalence checks must exclude them.
    pub dead_arrays: Vec<String>,
    /// Arrays whose declared shape changed (the indirect pattern's
    /// slot-expanded `At`): contents are equivalent but not comparable
    /// element-for-element.
    pub reshaped_arrays: Vec<String>,
    /// Facts assumed rather than proven, for the user to review.
    pub assumptions: Vec<String>,
    /// Set by K-selection when the model predicts pre-pushing would be
    /// slower; `transform` turns it into [`Status::Unprofitable`] unless
    /// overridden.
    pub unprofitable: Option<String>,
    pub status: Status,
}

impl OppOutcome {
    pub fn applied(&self) -> bool {
        self.status == Status::Applied
    }
}

/// Whole-run report.
#[derive(Debug, Clone, Default)]
pub struct TransformReport {
    pub opportunities: Vec<OppOutcome>,
    /// Alltoall sites that never became opportunities (§3.1 rejections).
    pub rejections: Vec<String>,
    /// Questions for the user (semi-automatic mode).
    pub queries: Vec<UserQuery>,
}

impl TransformReport {
    pub fn applied_count(&self) -> usize {
        self.opportunities.iter().filter(|o| o.applied()).count()
    }

    /// Union of arrays made dead across applied opportunities.
    pub fn dead_arrays(&self) -> Vec<&str> {
        self.opportunities
            .iter()
            .filter(|o| o.applied())
            .flat_map(|o| o.dead_arrays.iter().map(String::as_str))
            .collect()
    }

    /// Arrays not comparable element-for-element after the transformation:
    /// dead plus reshaped. Equivalence checks exclude exactly these.
    pub fn incomparable_arrays(&self) -> Vec<&str> {
        self.opportunities
            .iter()
            .filter(|o| o.applied())
            .flat_map(|o| {
                o.dead_arrays
                    .iter()
                    .chain(o.reshaped_arrays.iter())
                    .map(String::as_str)
            })
            .collect()
    }

    /// Human-readable summary (the harness prints this).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for o in &self.opportunities {
            match &o.status {
                Status::Applied => {
                    s.push_str(&format!(
                        "applied: {} -> {} via {}{}\n",
                        o.send_array,
                        o.recv_array,
                        o.strategy.map_or("?".to_string(), |st| st.to_string()),
                        o.tile_size
                            .map_or(String::new(), |k| format!(" (K = {k})")),
                    ));
                    for a in &o.assumptions {
                        s.push_str(&format!("  note: {a}\n"));
                    }
                }
                Status::Declined(reasons) => {
                    s.push_str(&format!("declined: {}\n", o.send_array));
                    for r in reasons {
                        s.push_str(&format!("  reason: {r}\n"));
                    }
                }
                Status::Unprofitable(note) => {
                    s.push_str(&format!(
                        "declined (unprofitable): {} — {note}\n",
                        o.send_array
                    ));
                }
                Status::AnalysisRejected(diags) => {
                    s.push_str(&format!(
                        "withdrawn (failed communication-safety verification): {}\n",
                        o.send_array
                    ));
                    for d in diags {
                        s.push_str(&format!("  diagnostic: {d}\n"));
                    }
                }
            }
        }
        for q in &self.queries {
            s.push_str(&format!(
                "user query{}: {}\n",
                if q.assumed_yes { " (assumed yes)" } else { "" },
                q.question
            ));
        }
        for r in &self.rejections {
            s.push_str(&format!("rejected site: {r}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_strategy_and_reasons() {
        let report = TransformReport {
            opportunities: vec![
                OppOutcome {
                    send_array: "as".into(),
                    recv_array: "ar".into(),
                    strategy: Some(Strategy::TiledAllPeers),
                    tile_size: Some(8),
                    dead_arrays: vec![],
                    reshaped_arrays: vec![],
                    assumptions: vec!["K = 8 chosen".into()],
                    unprofitable: None,
                    status: Status::Applied,
                },
                OppOutcome {
                    send_array: "bs".into(),
                    recv_array: "br".into(),
                    strategy: None,
                    tile_size: None,
                    dead_arrays: vec![],
                    reshaped_arrays: vec![],
                    assumptions: vec![],
                    unprofitable: None,
                    status: Status::Declined(vec!["not affine".into()]),
                },
            ],
            rejections: vec![],
            queries: vec![],
        };
        let s = report.summary();
        assert!(s.contains("Fig. 4"));
        assert!(s.contains("K = 8"));
        assert!(s.contains("declined: bs"));
        assert!(s.contains("not affine"));
        assert_eq!(report.applied_count(), 1);
    }

    #[test]
    fn dead_arrays_only_from_applied() {
        let report = TransformReport {
            opportunities: vec![OppOutcome {
                send_array: "as".into(),
                recv_array: "ar".into(),
                strategy: Some(Strategy::IndirectPrepush),
                tile_size: Some(1),
                dead_arrays: vec!["as".into()],
                reshaped_arrays: vec!["at".into()],
                assumptions: vec![],
                unprofitable: None,
                status: Status::Declined(vec!["x".into()]),
            }],
            rejections: vec![],
            queries: vec![],
        };
        assert!(report.dead_arrays().is_empty());
    }
}
