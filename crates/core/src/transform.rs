//! The transformation pipeline (paper §3.6):
//!
//! 1. insert the per-tile communication code at the end of each tile,
//! 2. insert the wait for the previous tile's receives before it,
//! 3. handle leftover iterations (`ℓ mod K`) — our tiled loop's
//!    `min(vt+K-1, hi)` inner bound handles the remainder in place,
//! 4. insert the final wait after `ℓ`,
//! 5. remove the original `MPI_ALLTOALL` call `C`.
//!
//! `plan_*` functions perform every safety and layout check and either
//! produce the replacement statements or a list of human-readable reasons
//! for declining (the semi-automatic report).

use crate::commgen::{
    self, ExchangeNames, NameGen, OwnerNames,
};
use crate::kselect::{self, KselectInput};
use crate::opportunity::{self, Opportunity, UserOracle, UserQuery};
use crate::pattern::{self, IndirectShape, Pattern};
use crate::report::{OppOutcome, Status, Strategy, TransformReport};
use depan::loopnest::collect_accesses;
use depan::region::tile_footprint;
use depan::Context;
use fir::ast::*;
use fir::builder as b;

/// Transformation options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Tile size K; `None` uses the [`kselect`] heuristic.
    pub tile_size: Option<i64>,
    /// Symbol values for the analyses (problem sizes, `np`, …). Analyses
    /// degrade conservatively without them.
    pub context: Context,
    /// How to answer questions static analysis cannot (paper §3.1).
    pub oracle: UserOracle,
    /// Procedures to treat as source-unavailable (exercises the paper's
    /// semi-automatic path).
    pub opaque_procedures: Vec<String>,
    /// The network model's capability view for the K heuristic and the
    /// profitability predictors ([`kselect::ModelCaps`]). The default is
    /// Myrinet-like constants; a `conservative` caps declines feasible
    /// sites the predictor cannot reason about.
    pub kselect_model: kselect::ModelCaps,
    /// Apply a feasible transformation even when the model-informed
    /// predictor says pre-pushing will be slower. The default (`false`)
    /// declines such sites and emits the original program with a
    /// [`Status::Unprofitable`] report note. Requesting an explicit
    /// `tile_size` also bypasses the predictor (ablations sweep K on
    /// purpose).
    pub apply_even_if_unprofitable: bool,
}

/// Result of [`transform`].
#[derive(Debug)]
pub struct TransformOutput {
    pub program: Program,
    pub report: TransformReport,
}

/// Hard failures (the report inside carries the per-opportunity reasons).
#[derive(Debug)]
pub enum TransformError {
    /// The input program failed validation.
    Invalid(fir::Errors),
    /// No opportunity could be transformed; the report says why.
    NothingApplied(TransformReport),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::Invalid(e) => write!(f, "input does not validate: {e}"),
            TransformError::NothingApplied(r) => {
                write!(f, "no opportunity could be transformed")?;
                for o in &r.opportunities {
                    if let Status::Declined(reasons) = &o.status {
                        for reason in reasons {
                            write!(f, "\n  - {}: {reason}", o.send_array)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Run the Compuniformer on `program`.
pub fn transform(program: &Program, opts: &Options) -> Result<TransformOutput, TransformError> {
    fir::validate::validate(program).map_err(TransformError::Invalid)?;

    let mut out = program.clone();
    let mut gen = NameGen::new(program);
    let scan =
        opportunity::find_opportunities(program, opts.oracle, &opts.opaque_procedures);

    let mut report = TransformReport {
        opportunities: Vec::new(),
        rejections: scan.rejections.iter().map(|r| r.to_string()).collect(),
        queries: scan.queries.clone(),
    };

    // Apply in reverse document order so earlier paths stay valid.
    let mut opportunities = scan.opportunities;
    opportunities.sort_by(|a, b| b.comm_path.cmp(&a.comm_path));

    let mut applied_any = false;
    let mut declined_unprofitable = false;
    for opp in &opportunities {
        let mut outcome = OppOutcome {
            send_array: opp.send_array.clone(),
            recv_array: opp.recv_array.clone(),
            strategy: None,
            tile_size: None,
            dead_arrays: Vec::new(),
            reshaped_arrays: Vec::new(),
            assumptions: Vec::new(),
            unprofitable: None,
            status: Status::Declined(Vec::new()),
        };
        match plan_opportunity(&out, opp, opts, &mut gen, &mut outcome, &mut report.queries)
        {
            Ok(plan) => match outcome.unprofitable.take() {
                Some(note) if !opts.apply_even_if_unprofitable => {
                    // Feasible but predicted slower: leave the program
                    // untouched and report why (paper-faithful behaviour —
                    // a tool that slows codes down would not be used).
                    outcome.strategy = None;
                    outcome.tile_size = None;
                    outcome.status = Status::Unprofitable(note);
                    declined_unprofitable = true;
                }
                _ => {
                    apply_plan(&mut out, opp, plan);
                    outcome.status = Status::Applied;
                    applied_any = true;
                }
            },
            Err(reasons) => {
                outcome.status = Status::Declined(reasons);
            }
        }
        report.opportunities.push(outcome);
    }

    if applied_any {
        out.main.decls.extend(gen.decls());
        debug_assert!(
            fir::validate::validate(&out).is_ok(),
            "generated program fails validation:\n{}",
            fir::unparse(&out)
        );
        // Static communication-safety gate: an emitted program we cannot
        // *prove* hazard-free does not ship. Withdraw the transformation
        // and emit the original instead, carrying the diagnostics.
        if let Some(diags) = analysis_gate(&out, opts) {
            for o in &mut report.opportunities {
                if o.status == Status::Applied {
                    o.strategy = None;
                    o.tile_size = None;
                    o.status = Status::AnalysisRejected(diags.clone());
                }
            }
            return Ok(TransformOutput {
                program: program.clone(),
                report,
            });
        }
        Ok(TransformOutput {
            program: out,
            report,
        })
    } else if declined_unprofitable {
        // Every feasible site was declined as unprofitable: succeed with
        // the *original* program (`out` was never mutated) so callers run
        // it unchanged; the report carries the per-site notes.
        Ok(TransformOutput {
            program: out,
            report,
        })
    } else {
        Err(TransformError::NothingApplied(report))
    }
}

/// Verify the emitted program with the static communication checker.
/// Returns `None` when clean (or when `np` is unknown — the checker is
/// rank-parametric and needs a concrete rank count to instantiate), or
/// the rendered diagnostics when the program cannot be proved safe.
fn analysis_gate(out: &Program, opts: &Options) -> Option<Vec<String>> {
    let np = opts.context.get("np")?;
    if np < 2 {
        return None;
    }
    let cfg = analyzer::CommCheckConfig::new(np).with_symbols(opts.context.pairs());
    let verdict = analyzer::verify_comm(out, &cfg);
    if verdict.is_clean() {
        return None;
    }
    Some(
        verdict
            .diagnostics
            .iter()
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect(),
    )
}

/// The replacement produced by planning one opportunity.
struct Plan {
    /// Statements replacing `[ℓ, …, C]` in the enclosing body.
    replacement: Vec<Stmt>,
    /// Change the declaration of this array to these dims (At expansion).
    redeclare: Option<(String, Vec<DimBound>)>,
}

fn plan_opportunity(
    program: &Program,
    opp: &Opportunity,
    opts: &Options,
    gen: &mut NameGen,
    outcome: &mut OppOutcome,
    queries: &mut Vec<UserQuery>,
) -> Result<Plan, Vec<String>> {
    let mut reasons = Vec::new();
    if opp.gap_statements != 0 {
        reasons.push(format!(
            "{} statement(s) between the finalizing loop and the alltoall call",
            opp.gap_statements
        ));
        return Err(reasons);
    }

    let lstmt = opportunity::stmt_at(&program.main.body, &opp.loop_path).clone();
    let Stmt::Do {
        var: lvar,
        lower: llo,
        upper: lhi,
        step,
        body: lbody,
        ..
    } = &lstmt
    else {
        unreachable!("loop_path points at a do loop");
    };
    if let Some(s) = step {
        if !s.is_int(1) {
            reasons.push("the finalizing loop has a non-unit step".to_string());
            return Err(reasons);
        }
    }

    // Ar must be untouched inside ℓ (paper: the earliest safe receive
    // point must not precede uses of the receive array).
    if !collect_accesses(std::slice::from_ref(&lstmt), &opp.recv_array).is_empty() {
        reasons.push(format!(
            "receive array `{}` is accessed inside the finalizing loop",
            opp.recv_array
        ));
        return Err(reasons);
    }

    let Some(as_decl) = program.main.decl(&opp.send_array) else {
        reasons.push(format!("`{}` is not declared in main", opp.send_array));
        return Err(reasons);
    };
    let Some(ar_decl) = program.main.decl(&opp.recv_array) else {
        reasons.push(format!("`{}` is not declared in main", opp.recv_array));
        return Err(reasons);
    };

    match pattern::classify(lbody, &opp.send_array) {
        Pattern::Direct => plan_direct(
            program, opp, opts, gen, outcome, &lstmt, lvar, llo, lhi, as_decl, ar_decl,
        ),
        Pattern::Indirect(shape) => {
            match plan_indirect(
                program, opp, opts, gen, outcome, queries, &lstmt, lvar, llo, lhi, lbody,
                &shape, as_decl, ar_decl,
            ) {
                Ok(plan) => Ok(plan),
                Err(mut indirect_reasons) => {
                    // A copy loop is still a valid *direct* computation —
                    // retry without removing the copy (§3.4's optimization
                    // simply does not apply).
                    outcome.dead_arrays.clear();
                    outcome.reshaped_arrays.clear();
                    outcome.assumptions.push(
                        "indirect handling declined; fell back to the direct pattern"
                            .to_string(),
                    );
                    match plan_direct(
                        program, opp, opts, gen, outcome, &lstmt, lvar, llo, lhi,
                        as_decl, ar_decl,
                    ) {
                        Ok(plan) => Ok(plan),
                        Err(direct_reasons) => {
                            indirect_reasons.extend(direct_reasons);
                            Err(indirect_reasons)
                        }
                    }
                }
            }
        }
        Pattern::Unsupported { reason, .. } => {
            reasons.push(format!("unsupported compute-copy pattern: {reason}"));
            Err(reasons)
        }
    }
}

// ---------------------------------------------------------------------------
// Direct pattern (§3.3)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn plan_direct(
    program: &Program,
    opp: &Opportunity,
    opts: &Options,
    gen: &mut NameGen,
    outcome: &mut OppOutcome,
    lstmt: &Stmt,
    lvar: &str,
    llo: &Expr,
    lhi: &Expr,
    as_decl: &Decl,
    ar_decl: &Decl,
) -> Result<Plan, Vec<String>> {
    let mut reasons = Vec::new();
    let ctx = &opts.context;
    let lslice = std::slice::from_ref(lstmt);

    // Exactly one unconditional, fully affine write reference.
    let refs = collect_accesses(lslice, &opp.send_array);
    let writes: Vec<_> = refs.iter().filter(|r| r.is_write).collect();
    if writes.len() != 1 {
        reasons.push(format!(
            "need exactly one write to `{}` in the loop nest, found {}",
            opp.send_array,
            writes.len()
        ));
        return Err(reasons);
    }
    let w = writes[0];
    if w.in_conditional {
        reasons.push("the write to the send array is under a conditional".to_string());
        return Err(reasons);
    }
    if !w.fully_affine() {
        reasons.push("the send array's subscripts are not affine".to_string());
        return Err(reasons);
    }

    // Safety: no output dependence carried by the tiled loop (Afs check).
    let safety = depan::check_tile_safety(lslice, &opp.send_array, lvar, ctx);
    if !safety.is_safe() {
        for p in &safety.problems {
            reasons.push(format!("tile safety: {p}"));
        }
        return Err(reasons);
    }

    // Shapes must match between As and Ar.
    if as_decl.rank() != ar_decl.rank()
        || !as_decl
            .dims
            .iter()
            .zip(&ar_decl.dims)
            .all(|(a, r)| affine_eq(&a.lower, &r.lower, ctx) && affine_eq(&a.upper, &r.upper, ctx))
    {
        reasons.push(format!(
            "`{}` and `{}` have different shapes",
            opp.send_array, opp.recv_array
        ));
        return Err(reasons);
    }

    // Full coverage: the loop writes exactly the declared array (otherwise
    // the original alltoall would also have shipped untouched elements and
    // equivalence breaks).
    let coverage = match tile_footprint(w, lvar, llo, lhi) {
        Ok(c) => c,
        Err(e) => {
            reasons.push(format!("region analysis failed: {e}"));
            return Err(reasons);
        }
    };
    for (d, t) in coverage.iter().enumerate() {
        let (dlo, dhi) = (&as_decl.dims[d].lower, &as_decl.dims[d].upper);
        if !(affine_eq(&t.lower, dlo, ctx) && affine_eq(&t.upper, dhi, ctx)) {
            reasons.push(format!(
                "the loop does not cover dimension {} of `{}` exactly",
                d + 1,
                opp.send_array
            ));
            return Err(reasons);
        }
    }

    // Unit coefficient on the tiled variable (footprints must tile the
    // array without holes).
    let tile_coeffs: Vec<i64> = w
        .affine
        .iter()
        .map(|a| a.as_ref().expect("checked affine").coeff(lvar))
        .collect();

    match as_decl.rank() {
        1 => {
            if tile_coeffs[0].abs() != 1 {
                reasons.push(format!(
                    "the tiled variable has coefficient {} in the subscript (need ±1)",
                    tile_coeffs[0]
                ));
                return Err(reasons);
            }
            plan_direct_rank1_owner(
                opp, opts, gen, outcome, lstmt, lvar, llo, lhi, as_decl, ar_decl, w,
            )
        }
        2 => {
            let d_node = 1usize;
            if tile_coeffs[d_node] != 0 {
                // Node loop is the tiled loop: try interchange (§3.5).
                plan_direct_rank2_node_outer(
                    program, opp, opts, gen, outcome, lstmt, lvar, as_decl, ar_decl,
                )
            } else {
                if tile_coeffs[0].abs() != 1 {
                    reasons.push(format!(
                        "the tiled variable has coefficient {} in dimension 1 (need ±1)",
                        tile_coeffs[0]
                    ));
                    return Err(reasons);
                }
                plan_direct_rank2_all_peers(
                    opp, opts, gen, outcome, lstmt, lvar, llo, lhi, as_decl, ar_decl, w,
                )
            }
        }
        r => {
            reasons.push(format!(
                "send arrays of rank {r} are not supported (rank 1 or 2)"
            ));
            Err(reasons)
        }
    }
}

/// Rank-2, node dim swept by an inner loop: the canonical Fig. 4 strategy.
#[allow(clippy::too_many_arguments)]
fn plan_direct_rank2_all_peers(
    opp: &Opportunity,
    opts: &Options,
    gen: &mut NameGen,
    outcome: &mut OppOutcome,
    lstmt: &Stmt,
    lvar: &str,
    llo: &Expr,
    lhi: &Expr,
    as_decl: &Decl,
    ar_decl: &Decl,
    w: &depan::AccessRef,
) -> Result<Plan, Vec<String>> {
    let mut reasons = Vec::new();
    let ctx = &opts.context;

    // count must equal dimension-1's extent (one alltoall block = one
    // node-dim column).
    let d1_extent = extent_expr(&as_decl.dims[0]);
    if !affine_eq(&opp.count, &d1_extent, ctx) {
        reasons.push(format!(
            "alltoall count does not equal the extent of dimension 1 of `{}`",
            opp.send_array
        ));
        return Err(reasons);
    }
    // node dim extent must be np.
    let d2_extent = extent_expr(&as_decl.dims[1]);
    if !affine_eq(&d2_extent, &b::var("np"), ctx) {
        reasons.push(format!(
            "the last dimension of `{}` does not have extent np",
            opp.send_array
        ));
        return Err(reasons);
    }

    let k = choose_tile_size(opts, outcome, lstmt, lvar, &opp.count, None);
    outcome.tile_size = Some(k);
    outcome.strategy = Some(Strategy::TiledAllPeers);

    let tile_var = gen.fresh("t");
    let names = ExchangeNames::fresh(gen);
    let (tile_lo, tile_hi) = commgen::tile_bounds(&tile_var, lhi, k);

    let fp = match tile_footprint(w, lvar, &tile_lo, &tile_hi) {
        Ok(f) => f,
        Err(e) => {
            reasons.push(format!("per-tile region analysis failed: {e}"));
            return Err(reasons);
        }
    };
    let d1_lo = fp[0].lower.clone();
    let d1_hi = fp[0].upper.clone();
    let len = b::add(b::sub(d1_hi.clone(), d1_lo.clone()), b::int(1));

    let send_base = as_decl.dims[1].lower.clone();
    let recv_base = ar_decl.dims[1].lower.clone();

    let exchange = commgen::fig4_all_peers(
        &names,
        &opp.send_array,
        &opp.recv_array,
        d1_lo.clone(),
        d1_hi.clone(),
        len,
        send_base.clone(),
        recv_base.clone(),
        tag_for(opp),
    );
    let self_copy = commgen::self_copy_rank2(
        &names,
        &opp.send_array,
        &opp.recv_array,
        d1_lo,
        d1_hi,
        send_base,
        recv_base,
    );

    let Stmt::Do { body, .. } = lstmt else { unreachable!() };
    let tiled = commgen::tiled_loop(
        &tile_var,
        lvar,
        llo.clone(),
        lhi.clone(),
        k,
        body.clone(),
        vec![commgen::wait_prev_recvs(), exchange, self_copy],
    );
    Ok(Plan {
        replacement: vec![tiled, commgen::wait_all()],
        redeclare: None,
    })
}

/// Rank-1: the node "loop" is the tiled loop itself — owner/subset sends.
#[allow(clippy::too_many_arguments)]
fn plan_direct_rank1_owner(
    opp: &Opportunity,
    opts: &Options,
    gen: &mut NameGen,
    outcome: &mut OppOutcome,
    lstmt: &Stmt,
    lvar: &str,
    llo: &Expr,
    lhi: &Expr,
    as_decl: &Decl,
    ar_decl: &Decl,
    w: &depan::AccessRef,
) -> Result<Plan, Vec<String>> {
    let mut reasons = Vec::new();
    let ctx = &opts.context;

    // Total extent must be np · count, and tiles must not straddle
    // partitions — that needs a numeric partition size.
    let Some(sz) = eval_expr(&opp.count, ctx) else {
        reasons.push(
            "the per-partner count must be a literal (or resolvable in the analysis \
             context) for the owner strategy"
                .to_string(),
        );
        return Err(reasons);
    };
    if sz <= 0 {
        reasons.push(format!("nonpositive alltoall count {sz}"));
        return Err(reasons);
    }
    let extent = extent_expr(&as_decl.dims[0]);
    match (eval_expr(&extent, ctx), ctx.get("np")) {
        (Some(n), Some(np)) => {
            if n != np * sz {
                reasons.push(format!(
                    "extent of `{}` is {n}, expected np*count = {}",
                    opp.send_array,
                    np * sz
                ));
                return Err(reasons);
            }
            outcome.assumptions.push(format!(
                "array extent {n} == np({np}) * count({sz}) checked numerically \
                 under the analysis context"
            ));
        }
        _ => {
            // Symbolic check: extent == np * count with literal count.
            let np_count = b::mul(b::var("np"), b::int(sz));
            if !affine_eq(&extent, &np_count, ctx) {
                reasons.push(format!(
                    "cannot establish that the extent of `{}` equals np * count",
                    opp.send_array
                ));
                return Err(reasons);
            }
        }
    }

    let k = choose_tile_size(opts, outcome, lstmt, lvar, &opp.count, Some(sz));
    if sz % k != 0 {
        reasons.push(format!(
            "tile size {k} does not divide the partition size {sz} (tiles would \
             straddle partitions)"
        ));
        return Err(reasons);
    }
    outcome.tile_size = Some(k);
    outcome.strategy = Some(Strategy::TiledOwner);

    let tile_var = gen.fresh("t");
    let names = OwnerNames::fresh(gen);
    let (tile_lo, tile_hi) = commgen::tile_bounds(&tile_var, lhi, k);
    let fp = match tile_footprint(w, lvar, &tile_lo, &tile_hi) {
        Ok(f) => f,
        Err(e) => {
            reasons.push(format!("per-tile region analysis failed: {e}"));
            return Err(reasons);
        }
    };

    let exchange = commgen::owner_subset_exchange(
        &names,
        &opp.send_array,
        &opp.recv_array,
        fp[0].lower.clone(),
        fp[0].upper.clone(),
        opp.count.clone(),
        as_decl.dims[0].lower.clone(),
        ar_decl.dims[0].lower.clone(),
        tag_for(opp),
    );

    let Stmt::Do { body, .. } = lstmt else { unreachable!() };
    let mut per_tile = vec![commgen::wait_prev_recvs()];
    per_tile.extend(exchange);
    let tiled = commgen::tiled_loop(
        &tile_var,
        lvar,
        llo.clone(),
        lhi.clone(),
        k,
        body.clone(),
        per_tile,
    );
    Ok(Plan {
        replacement: vec![tiled, commgen::wait_all()],
        redeclare: None,
    })
}

/// Rank-2 with the node dimension swept by the *outer* (tiled) loop: try
/// loop interchange (§3.5) and re-plan; fall back to per-column owner
/// sends when interchange is illegal.
#[allow(clippy::too_many_arguments)]
fn plan_direct_rank2_node_outer(
    program: &Program,
    opp: &Opportunity,
    opts: &Options,
    gen: &mut NameGen,
    outcome: &mut OppOutcome,
    lstmt: &Stmt,
    lvar: &str,
    as_decl: &Decl,
    ar_decl: &Decl,
) -> Result<Plan, Vec<String>> {
    let mut reasons = Vec::new();
    let ctx = &opts.context;

    // Perfect 2-deep nest required for interchange.
    let Stmt::Do { body, lower, upper, .. } = lstmt else { unreachable!() };
    let perfect_inner = match body.as_slice() {
        [Stmt::Do { .. }] => Some(&body[0]),
        _ => None,
    };
    if let Some(inner @ Stmt::Do { var: ivar, .. }) = perfect_inner {
        let arrays = arrays_in_main(program);
        match depan::interchange::interchange_legal(
            std::slice::from_ref(lstmt),
            &arrays,
            lvar,
            ivar,
            ctx,
        ) {
            Ok(()) => {
                outcome
                    .assumptions
                    .push(format!("interchanged loops `{lvar}` and `{ivar}`"));
                let swapped = interchange(lstmt, inner);
                // Re-plan with the interchanged nest: the inner loop (old
                // outer) now sweeps the node dim from inside the tile.
                let Stmt::Do {
                    var: nlvar,
                    lower: nllo,
                    upper: nlhi,
                    ..
                } = &swapped
                else {
                    unreachable!()
                };
                let refs = collect_accesses(std::slice::from_ref(&swapped), &opp.send_array);
                let w = refs
                    .iter()
                    .find(|r| r.is_write)
                    .expect("write survived interchange");
                let safety =
                    depan::check_tile_safety(std::slice::from_ref(&swapped), &opp.send_array, nlvar, ctx);
                if !safety.is_safe() {
                    reasons.push(
                        "interchange succeeded but the interchanged nest is not tile-safe"
                            .to_string(),
                    );
                    return Err(reasons);
                }
                return plan_direct_rank2_all_peers(
                    opp,
                    opts,
                    gen,
                    outcome,
                    &swapped,
                    &nlvar.clone(),
                    &nllo.clone(),
                    &nlhi.clone(),
                    as_decl,
                    ar_decl,
                    w,
                );
            }
            Err(blocks) => {
                for bl in &blocks {
                    outcome
                        .assumptions
                        .push(format!("interchange blocked: {bl}"));
                }
            }
        }
    }

    // Fallback: per-node-column owner sends (the paper's "subset of the
    // nodes during each tile" with its congestion caveat).
    let d1_extent = extent_expr(&as_decl.dims[0]);
    if !affine_eq(&opp.count, &d1_extent, ctx) {
        reasons.push(format!(
            "alltoall count does not equal the extent of dimension 1 of `{}`",
            opp.send_array
        ));
        return Err(reasons);
    }
    let d2_extent = extent_expr(&as_decl.dims[1]);
    if !affine_eq(&d2_extent, &b::var("np"), ctx) {
        reasons.push(format!(
            "the last dimension of `{}` does not have extent np",
            opp.send_array
        ));
        return Err(reasons);
    }
    // The tiled (outer) loop must sweep the node dim with unit coefficient.
    let refs = collect_accesses(std::slice::from_ref(lstmt), &opp.send_array);
    let w = refs.iter().find(|r| r.is_write).expect("checked earlier");
    let aff2 = w.affine[1].as_ref().expect("checked affine");
    if aff2.coeff(lvar).abs() != 1 {
        reasons.push("node-dim subscript needs coefficient ±1 on the tiled loop".to_string());
        return Err(reasons);
    }

    outcome.strategy = Some(Strategy::TiledOwnerColumns);
    outcome.tile_size = Some(1);
    outcome.assumptions.push(
        "node loop outermost and interchange impossible: per-column owner sends \
         (network congestion caveat, §3.5)"
            .to_string(),
    );
    // Profitability: the per-column fallback used to bypass K-selection
    // and knowingly ship the §3.5 congestion penalty (down to 0.21x on
    // MPICH). Route it through the model-informed predictor like every
    // other strategy; an explicit requested tile size still bypasses it
    // (ablations force the fallback on purpose).
    if opts.tile_size.is_none() {
        outcome.unprofitable = if opts.kselect_model.conservative {
            Some(opts.kselect_model.conservative_note())
        } else {
            kselect::predict_column_slowdown(&kselect::ColumnInput {
                partner_bytes: eval_expr(&opp.count, ctx).map_or(64.0, |c| (c * 8) as f64),
                np: ctx.get("np").unwrap_or(8) as f64,
                ns_per_iteration: kselect::estimate_iteration_ns(body, 1.0, 2.0),
                overhead_ns: opts.kselect_model.overhead(),
                cpu_ns_per_byte: opts.kselect_model.cpu_per_byte(),
                wire_ns_per_byte: opts.kselect_model.wire_per_byte(),
            })
        };
    }

    let names = OwnerNames::fresh(gen);
    let d1lo = as_decl.dims[0].lower.clone();
    let d1hi = as_decl.dims[0].upper.clone();
    let d1lo_ar = ar_decl.dims[0].lower.clone();
    let d2lo = as_decl.dims[1].lower.clone();
    let d2lo_ar = ar_decl.dims[1].lower.clone();

    // Node-dim index touched at iteration lvar: aff2 as expr.
    let node_idx = depan::region::affine_to_expr(aff2);
    let to = b::var(&names.to);
    let from = b::var(&names.from);
    let i = b::var(&names.copy_i);
    let exchange: Vec<Stmt> = vec![
        b::sassign(&names.to, b::sub(node_idx.clone(), d2lo.clone())),
        b::if_then_else(
            b::eq(to.clone(), b::var("mynum")),
            vec![
                b::do_loop(
                    &names.j,
                    b::int(1),
                    b::sub(b::var("np"), b::int(1)),
                    vec![
                        b::sassign(
                            &names.from,
                            b::modulo(
                                b::sub(b::add(b::var("np"), b::var("mynum")), b::var(&names.j)),
                                b::var("np"),
                            ),
                        ),
                        b::call(
                            "mpi_irecv",
                            vec![
                                b::section(
                                    &opp.recv_array,
                                    vec![
                                        b::full_range(),
                                        b::at(b::add(from.clone(), d2lo_ar.clone())),
                                    ],
                                ),
                                b::arg(opp.count.clone()),
                                b::arg(from),
                                b::arg(b::int(tag_for(opp))),
                            ],
                        ),
                    ],
                ),
                b::do_loop(
                    &names.copy_i,
                    d1lo.clone(),
                    d1hi,
                    vec![b::assign(
                        &opp.recv_array,
                        vec![
                            b::add(b::sub(i.clone(), d1lo), d1lo_ar),
                            b::add(b::var("mynum"), d2lo_ar),
                        ],
                        b::aref(&opp.send_array, vec![i, node_idx.clone()]),
                    )],
                ),
            ],
            vec![b::call(
                "mpi_isend",
                vec![
                    b::section(
                        &opp.send_array,
                        vec![b::full_range(), b::at(node_idx)],
                    ),
                    b::arg(opp.count.clone()),
                    b::arg(to),
                    b::arg(b::int(tag_for(opp))),
                ],
            )],
        ),
    ];

    // Rebuild ℓ with the exchange appended to its body per iteration.
    let mut new_body = body.clone();
    new_body.push(commgen::wait_prev_recvs());
    new_body.extend(exchange);
    let new_loop = b::do_loop(lvar, lower.clone(), upper.clone(), new_body);
    Ok(Plan {
        replacement: vec![new_loop, commgen::wait_all()],
        redeclare: None,
    })
}

/// Swap a perfect 2-deep nest: `do v1 { do v2 { body } }` →
/// `do v2 { do v1 { body } }`.
fn interchange(outer: &Stmt, inner: &Stmt) -> Stmt {
    let Stmt::Do {
        var: v1,
        lower: l1,
        upper: u1,
        step: s1,
        ..
    } = outer
    else {
        unreachable!()
    };
    let Stmt::Do {
        var: v2,
        lower: l2,
        upper: u2,
        step: s2,
        body: inner_body,
        ..
    } = inner
    else {
        unreachable!()
    };
    Stmt::Do {
        var: v2.clone(),
        lower: l2.clone(),
        upper: u2.clone(),
        step: s2.clone(),
        body: vec![Stmt::Do {
            var: v1.clone(),
            lower: l1.clone(),
            upper: u1.clone(),
            step: s1.clone(),
            body: inner_body.clone(),
            span: fir::Span::DUMMY,
        }],
        span: fir::Span::DUMMY,
    }
}

// ---------------------------------------------------------------------------
// Indirect pattern (§3.4)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn plan_indirect(
    program: &Program,
    opp: &Opportunity,
    opts: &Options,
    gen: &mut NameGen,
    outcome: &mut OppOutcome,
    queries: &mut Vec<UserQuery>,
    lstmt: &Stmt,
    lvar: &str,
    llo: &Expr,
    lhi: &Expr,
    lbody: &[Stmt],
    shape: &IndirectShape,
    as_decl: &Decl,
    ar_decl: &Decl,
) -> Result<Plan, Vec<String>> {
    let mut reasons = Vec::new();
    let ctx = &opts.context;
    let at = &shape.temp_array;

    let Some(at_decl) = program.main.decl(at) else {
        reasons.push(format!("temporary `{at}` is not declared in main"));
        return Err(reasons);
    };
    if at_decl.rank() != 1 {
        reasons.push(format!("temporary `{at}` must be rank 1"));
        return Err(reasons);
    }

    // Statements of ℓ other than producer and copy loop must not touch
    // As or At.
    for (i, s) in lbody.iter().enumerate() {
        if i == shape.producer_idx || i == shape.copy_loop_idx {
            continue;
        }
        let sl = std::slice::from_ref(s);
        if !collect_accesses(sl, &opp.send_array).is_empty()
            || !collect_accesses(sl, at).is_empty()
        {
            reasons.push(
                "statements besides the producer and copy loop touch the send or \
                 temporary array"
                    .to_string(),
            );
            return Err(reasons);
        }
    }

    // The copy loop: single level, last statement `As(…) = At(cpvar…)`,
    // other statements scalar-only.
    let Stmt::Do {
        var: cpvar,
        lower: cplo,
        upper: cphi,
        step: cpstep,
        body: cpbody,
        ..
    } = &lbody[shape.copy_loop_idx]
    else {
        unreachable!("classifier found a do loop");
    };
    if cpstep.as_ref().is_some_and(|s| !s.is_int(1)) {
        reasons.push("the copy loop has a non-unit step".to_string());
        return Err(reasons);
    }
    let Some((copy_target, copy_rhs)) = copy_assignment(cpbody, &opp.send_array) else {
        reasons.push("could not isolate the copy assignment".to_string());
        return Err(reasons);
    };
    let Expr::ArrayRef { name: rhs_name, indices: rhs_idx, .. } = copy_rhs else {
        unreachable!("classifier checked the RHS shape");
    };
    debug_assert_eq!(rhs_name, at);
    if rhs_idx.len() != 1 {
        reasons.push(format!("`{at}` must be subscripted with one index"));
        return Err(reasons);
    }

    // At read coverage: subscript = cpvar + c, sweeping the whole of At.
    let Some(at_aff) = depan::affine::from_expr(&rhs_idx[0]) else {
        reasons.push(format!("`{at}` subscript is not affine"));
        return Err(reasons);
    };
    if at_aff.coeff(cpvar) != 1 {
        reasons.push(format!(
            "`{at}` subscript needs coefficient 1 on the copy-loop variable"
        ));
        return Err(reasons);
    }
    let read_lo = subst_expr(&rhs_idx[0], cpvar, cplo);
    let read_hi = subst_expr(&rhs_idx[0], cpvar, cphi);
    if !(affine_eq(&read_lo, &at_decl.dims[0].lower, ctx)
        && affine_eq(&read_hi, &at_decl.dims[0].upper, ctx))
    {
        reasons.push(format!(
            "the copy loop does not read all of `{at}` exactly once"
        ));
        return Err(reasons);
    }

    // As last dim subscript = lvar + c with full coverage of the node dim.
    let last = as_decl.rank() - 1;
    let Some(last_aff) = depan::affine::from_expr(&copy_target.indices[last]) else {
        reasons.push("send array's node-dim subscript is not affine".to_string());
        return Err(reasons);
    };
    if last_aff.coeff(lvar) != 1 {
        reasons.push(
            "send array's node-dim subscript needs coefficient 1 on the loop variable"
                .to_string(),
        );
        return Err(reasons);
    }
    let node_lo = subst_expr(&copy_target.indices[last], lvar, llo);
    let node_hi = subst_expr(&copy_target.indices[last], lvar, lhi);
    if !(affine_eq(&node_lo, &as_decl.dims[last].lower, ctx)
        && affine_eq(&node_hi, &as_decl.dims[last].upper, ctx))
    {
        reasons.push("the loop does not cover the node dimension exactly".to_string());
        return Err(reasons);
    }

    // Trip count == np (one iteration per partner).
    let trip = b::add(b::sub(lhi.clone(), llo.clone()), b::int(1));
    if !affine_eq(&trip, &b::var("np"), ctx) {
        reasons.push("the loop's trip count is not np".to_string());
        return Err(reasons);
    }

    // count == |At| == product of As's non-node extents.
    let at_extent = extent_expr(&at_decl.dims[0]);
    if !affine_eq(&opp.count, &at_extent, ctx) {
        reasons.push(format!(
            "alltoall count does not equal the extent of `{at}`"
        ));
        return Err(reasons);
    }
    if let Some(prod) = literal_product(&as_decl.dims[..last], ctx) {
        if Some(prod) != eval_expr(&opp.count, ctx) {
            reasons.push(format!(
                "count does not equal the block size of `{}` ({prod})",
                opp.send_array
            ));
            return Err(reasons);
        }
    } else {
        outcome.assumptions.push(
            "assumed count equals the product of the send array's non-node extents"
                .to_string(),
        );
    }

    // Ar shape == As shape.
    if as_decl.rank() != ar_decl.rank()
        || !as_decl
            .dims
            .iter()
            .zip(&ar_decl.dims)
            .all(|(a, r)| affine_eq(&a.lower, &r.lower, ctx) && affine_eq(&a.upper, &r.upper, ctx))
    {
        reasons.push(format!(
            "`{}` and `{}` have different shapes",
            opp.send_array, opp.recv_array
        ));
        return Err(reasons);
    }

    // Flat-order preservation of ℓcp (the paper assumes this; we prove the
    // simple case and otherwise ask the user).
    let order_proven = as_decl.rank() == 2 && {
        let d1 = depan::affine::from_expr(&copy_target.indices[0]);
        match d1 {
            Some(a) if a.coeff(cpvar) == 1 => {
                let lo = subst_expr(&copy_target.indices[0], cpvar, cplo);
                let hi = subst_expr(&copy_target.indices[0], cpvar, cphi);
                affine_eq(&lo, &as_decl.dims[0].lower, ctx)
                    && affine_eq(&hi, &as_decl.dims[0].upper, ctx)
            }
            _ => false,
        }
    };
    if !order_proven {
        let assumed = opts.oracle == UserOracle::AssumeSafe;
        queries.push(UserQuery {
            question: format!(
                "does the copy loop map `{at}` onto each block of `{}` preserving \
                 flat (column-major) element order?",
                opp.send_array
            ),
            assumed_yes: assumed,
        });
        if !assumed {
            reasons.push(
                "cannot prove the copy loop preserves element order (run with \
                 UserOracle::AssumeSafe after inspecting the code)"
                    .to_string(),
            );
            return Err(reasons);
        }
        outcome
            .assumptions
            .push("user confirmed the copy loop is order-preserving".to_string());
    }

    // At must not be used outside ℓ.
    let total_at_refs = collect_accesses(&program.main.body, at).len();
    let in_l_refs = collect_accesses(std::slice::from_ref(lstmt), at).len();
    if total_at_refs != in_l_refs {
        reasons.push(format!("`{at}` is used outside the finalizing loop"));
        return Err(reasons);
    }

    outcome.strategy = Some(Strategy::IndirectPrepush);
    outcome.tile_size = Some(1);
    outcome.dead_arrays.push(opp.send_array.clone());
    outcome.reshaped_arrays.push(at.clone());
    outcome.assumptions.push(format!(
        "`{at}` expanded with a slot dimension of the loop's trip count (strictly \
         safe double-buffering; the paper uses K slots)"
    ));

    // -- build the replacement -------------------------------------------
    let slot = gen.fresh("slot");
    let names = ExchangeNames::fresh(gen);
    let slot_expr = b::var(&slot);

    // Producer with At → At(:, slot).
    let mut producer = lbody[shape.producer_idx].clone();
    {
        let mut tmp = vec![producer];
        commgen::add_slot_dimension(&mut tmp, at, &slot_expr);
        producer = tmp.pop().expect("one statement");
    }

    // Self-copy: the deleted ℓcp re-pointed at Ar, reading At(i, slot).
    let mut self_copy = vec![lbody[shape.copy_loop_idx].clone()];
    commgen::add_slot_dimension(&mut self_copy, at, &slot_expr);
    commgen::rename_array(&mut self_copy, &opp.send_array, &opp.recv_array);

    // Owner exchange.
    let to = b::var(&names.to);
    let from = b::var(&names.from);
    let recv_base = ar_decl.dims[last].lower.clone();
    let mut recv_dims: Vec<SecDim> = (0..last).map(|_| SecDim::Range(None, None)).collect();
    recv_dims.push(SecDim::Index(b::add(from.clone(), recv_base)));

    let exchange = b::if_then_else(
        b::eq(to.clone(), b::var("mynum")),
        {
            let mut then_body = vec![b::do_loop(
                &names.j,
                b::int(1),
                b::sub(b::var("np"), b::int(1)),
                vec![
                    b::sassign(
                        &names.from,
                        b::modulo(
                            b::sub(b::add(b::var("np"), b::var("mynum")), b::var(&names.j)),
                            b::var("np"),
                        ),
                    ),
                    Stmt::Call {
                        name: "mpi_irecv".into(),
                        args: vec![
                            Arg::Section(Section {
                                name: opp.recv_array.clone(),
                                dims: recv_dims,
                                span: fir::Span::DUMMY,
                            }),
                            b::arg(opp.count.clone()),
                            b::arg(from),
                            b::arg(b::int(tag_for(opp))),
                        ],
                        span: fir::Span::DUMMY,
                    },
                ],
            )];
            then_body.extend(self_copy);
            then_body
        },
        vec![b::call(
            "mpi_isend",
            vec![
                b::section(
                    at,
                    vec![SecDim::Range(None, None), SecDim::Index(slot_expr.clone())],
                ),
                b::arg(opp.count.clone()),
                b::arg(to),
                b::arg(b::int(tag_for(opp))),
            ],
        )],
    );

    // New ℓ body: other statements preserved in place, producer and copy
    // loop replaced.
    let mut new_body: Vec<Stmt> = Vec::new();
    for (i, s) in lbody.iter().enumerate() {
        if i == shape.producer_idx {
            new_body.push(b::sassign(
                &slot,
                b::add(b::sub(b::var(lvar), llo.clone()), b::int(1)),
            ));
            new_body.push(producer.clone());
        } else if i == shape.copy_loop_idx {
            new_body.push(b::sassign(&names.to, b::sub(b::var(lvar), llo.clone())));
            new_body.push(exchange.clone());
        } else {
            new_body.push(s.clone());
        }
    }
    let new_loop = b::do_loop(lvar, llo.clone(), lhi.clone(), new_body);

    // At gains a slot dimension sized by the trip count.
    let mut new_dims = at_decl.dims.clone();
    new_dims.push(DimBound {
        lower: b::int(1),
        upper: trip,
    });

    Ok(Plan {
        replacement: vec![new_loop, commgen::wait_all()],
        redeclare: Some((at.clone(), new_dims)),
    })
}

/// Find the `As(…) = At(…)` assignment in the copy-loop body; every other
/// statement must be a scalar assignment (privatizable temporaries).
fn copy_assignment<'a>(
    body: &'a [Stmt],
    send_array: &str,
) -> Option<(&'a LValue, &'a Expr)> {
    let mut found = None;
    for s in body {
        match s {
            Stmt::Assign { target, value, .. } if target.name == send_array => {
                if found.is_some() {
                    return None; // more than one copy statement
                }
                found = Some((target, value));
            }
            Stmt::Assign { target, .. } if target.indices.is_empty() => {}
            _ => return None,
        }
    }
    found
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn apply_plan(program: &mut Program, opp: &Opportunity, plan: Plan) {
    let body = body_at_mut(&mut program.main.body, &opp.loop_path[..opp.loop_path.len() - 1]);
    let start = *opp.loop_path.last().expect("non-empty path");
    let end = *opp.comm_path.last().expect("non-empty path");
    body.splice(start..=end, plan.replacement);

    if let Some((name, dims)) = plan.redeclare {
        if let Some(d) = program.main.decls.iter_mut().find(|d| d.name == name) {
            d.dims = dims;
        }
    }
}

fn body_at_mut<'a>(body: &'a mut Vec<Stmt>, prefix: &[usize]) -> &'a mut Vec<Stmt> {
    let Some((first, rest)) = prefix.split_first() else {
        return body;
    };
    match &mut body[*first] {
        Stmt::Do { body, .. } => body_at_mut(body, rest),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            if rest.first().is_none_or(|i| *i < then_body.len()) {
                body_at_mut(then_body, rest)
            } else {
                body_at_mut(else_body, rest)
            }
        }
        _ => panic!("path descends into a leaf"),
    }
}

fn choose_tile_size(
    opts: &Options,
    outcome: &mut OppOutcome,
    lstmt: &Stmt,
    _lvar: &str,
    count: &Expr,
    align_to: Option<i64>,
) -> i64 {
    if let Some(k) = opts.tile_size {
        return k.max(1);
    }
    let Stmt::Do { body, lower, upper, .. } = lstmt else { unreachable!() };
    let per_iter = kselect::estimate_iteration_ns(body, 1.0, 2.0);
    let np = opts.context.get("np").unwrap_or(8);
    let trip = match (
        eval_expr(lower, &opts.context),
        eval_expr(upper, &opts.context),
    ) {
        (Some(lo), Some(hi)) => (hi - lo + 1).max(1),
        _ => 1024,
    };
    let bytes_per_iter = eval_expr(count, &opts.context)
        .map(|c| (c * 8) as f64 * (np - 1) as f64 / trip as f64)
        .unwrap_or(64.0);
    let overhead_ns = opts.kselect_model.overhead();
    let wire_ns_per_byte = opts.kselect_model.wire_per_byte();
    let k = kselect::choose_k(&KselectInput {
        ns_per_iteration: per_iter,
        bytes_per_iteration: bytes_per_iter,
        overhead_ns,
        cpu_ns_per_byte: opts.kselect_model.cpu_per_byte(),
        wire_ns_per_byte,
        messages_per_tile: (np - 1) as f64,
        trip_count: trip,
        align_to,
    });
    outcome
        .assumptions
        .push(format!("tile size K = {k} chosen by the heuristic"));
    // Profitability: would the tiled exchange's added fixed overheads
    // exceed the wire time it can hide? (`align_to` marks the owner-sends
    // strategy, which posts one message per tile; all-peers posts NP-1.)
    // A conservative caps short-circuits: the predictor has no calibration
    // for the model family, so feasible sites decline instead of shipping
    // a potential known regression.
    outcome.unprofitable = if opts.kselect_model.conservative {
        Some(opts.kselect_model.conservative_note())
    } else {
        kselect::predict_slowdown(&kselect::ProfitInput {
            partner_bytes: eval_expr(count, &opts.context).map_or(64.0, |c| (c * 8) as f64),
            np: np as f64,
            trip_count: trip,
            tile_size: k,
            messages_per_tile: if align_to.is_some() { 1.0 } else { (np - 1) as f64 },
            owner_strategy: align_to.is_some(),
            ns_per_iteration: per_iter,
            overhead_ns,
            cpu_ns_per_byte: opts.kselect_model.cpu_per_byte(),
            wire_ns_per_byte,
            latency_ns: opts.kselect_model.latency(),
        })
    };
    k
}

/// Message tag for an opportunity: distinct per comm-site.
fn tag_for(opp: &Opportunity) -> i64 {
    let mut h: i64 = 100;
    for p in &opp.comm_path {
        h = h * 31 + *p as i64;
    }
    h.abs() % 1_000_000
}

fn extent_expr(d: &DimBound) -> Expr {
    b::add(b::sub(d.upper.clone(), d.lower.clone()), b::int(1))
}

/// Structural/affine equality, with a numeric fallback under the context.
fn affine_eq(a: &Expr, b: &Expr, ctx: &Context) -> bool {
    match (depan::affine::from_expr(a), depan::affine::from_expr(b)) {
        (Some(x), Some(y)) => {
            if x == y {
                return true;
            }
            matches!((ctx.eval(&x), ctx.eval(&y)), (Some(u), Some(v)) if u == v)
        }
        _ => matches!((eval_expr(a, ctx), eval_expr(b, ctx)), (Some(u), Some(v)) if u == v),
    }
}

/// Evaluate an integer expression under the context (handles +,-,*,/,mod).
fn eval_expr(e: &Expr, ctx: &Context) -> Option<i64> {
    match e {
        Expr::IntLit(v, _) => Some(*v),
        Expr::RealLit(..) => None,
        Expr::Var(n, _) => ctx.get(n),
        Expr::Unary { op: UnOp::Neg, operand, .. } => Some(-eval_expr(operand, ctx)?),
        Expr::Unary { .. } => None,
        Expr::Call { name, args, .. } if name == "mod" && args.len() == 2 => {
            let a = eval_expr(&args[0], ctx)?;
            let m = eval_expr(&args[1], ctx)?;
            if m == 0 {
                None
            } else {
                Some(a % m)
            }
        }
        Expr::Call { name, args, .. } if name == "min" => {
            args.iter().map(|a| eval_expr(a, ctx)).collect::<Option<Vec<_>>>()?.into_iter().min()
        }
        Expr::Call { name, args, .. } if name == "max" => {
            args.iter().map(|a| eval_expr(a, ctx)).collect::<Option<Vec<_>>>()?.into_iter().max()
        }
        Expr::Call { .. } | Expr::ArrayRef { .. } => None,
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval_expr(lhs, ctx)?;
            let c = eval_expr(rhs, ctx)?;
            match op {
                BinOp::Add => Some(a + c),
                BinOp::Sub => Some(a - c),
                BinOp::Mul => Some(a * c),
                BinOp::Div => {
                    if c == 0 {
                        None
                    } else {
                        Some(a / c)
                    }
                }
                _ => None,
            }
        }
    }
}

/// Substitute `var := value` in an expression (clone-based).
fn subst_expr(e: &Expr, var: &str, value: &Expr) -> Expr {
    let mut out = e.clone();
    let mut m = fir::visit::SubstVar {
        var,
        replacement: value,
    };
    fir::visit::Mutator::mutate_expr(&mut m, &mut out);
    out
}

/// Product of literal dimension extents; `None` when any is symbolic and
/// the context cannot resolve it.
fn literal_product(dims: &[DimBound], ctx: &Context) -> Option<i64> {
    let mut acc: i64 = 1;
    for d in dims {
        let lo = eval_expr(&d.lower, ctx)?;
        let hi = eval_expr(&d.upper, ctx)?;
        acc = acc.checked_mul((hi - lo + 1).max(0))?;
    }
    Some(acc)
}

fn arrays_in_main(program: &Program) -> Vec<String> {
    program
        .main
        .decls
        .iter()
        .filter(|d| d.is_array())
        .map(|d| d.name.clone())
        .collect()
}
