//! Transformation edge cases beyond the golden figures: nesting depths,
//! symbolic sizes, bounds shapes, and graceful declines.

use compuniformer::{transform, Options, Status, UserOracle};
use depan::Context;

fn opts(np: i64) -> Options {
    Options {
        context: Context::new().with("np", np),
        ..Default::default()
    }
}

fn transform_src(src: &str, o: &Options) -> Result<compuniformer::TransformOutput, String> {
    let program = fir::parse_validated(src).map_err(|e| e.to_string())?;
    transform(&program, o).map_err(|e| format!("{e}"))
}

#[test]
fn opportunity_in_triple_nested_loop() {
    // C sits three loops deep; ℓ is its sibling.
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  do ia = 1, 2
    do ib = 1, 2
      do ic = 1, 2
        do ix = 1, 16
          do iz = 1, 2
            as(ix, iz) = ix + iz + ia + ib + ic
          end do
        end do
        call mpi_alltoall(as, 16, ar)
      end do
    end do
  end do
end program";
    let out = transform_src(src, &Options { tile_size: Some(4), ..opts(2) }).unwrap();
    assert_eq!(out.report.applied_count(), 1);
    assert!(!fir::unparse(&out.program).contains("mpi_alltoall"));
}

#[test]
fn non_unit_lower_bounds_everywhere() {
    // Arrays declared 0-based; loop runs over the declared range exactly.
    let src = "\
program main
  real :: as(0:15, 0:1), ar(0:15, 0:1)
  do ix = 0, 15
    do iz = 0, 1
      as(ix, iz) = ix * 2 + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let out = transform_src(src, &Options { tile_size: Some(5), ..opts(2) }).unwrap();
    let text = fir::unparse(&out.program);
    // Node index base is the declared lower bound 0: `cc_to + 0` folds to
    // `cc_to`.
    assert!(text.contains("as(ix, iz) = ix * 2 + iz"), "{text}");
    assert!(text.contains("mpi_isend(as("), "{text}");

    // And it runs equivalently.
    let program = fir::parse_validated(src).unwrap();
    let model = clustersim::NetworkModel::mpich_gm();
    let base = interp::run_program(&program, 2, &model).unwrap();
    let pre = interp::run_program(&out.program, 2, &model).unwrap();
    assert_eq!(base.outputs, pre.outputs);
}

#[test]
fn reversed_write_direction_rank2() {
    // d1 subscript decreasing in the tiled variable.
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  do ix = 1, 16
    do iz = 1, 2
      as(17 - ix, iz) = ix * 3 + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let out = transform_src(src, &Options { tile_size: Some(5), ..opts(2) }).unwrap();
    let program = fir::parse_validated(src).unwrap();
    let model = clustersim::NetworkModel::mpich();
    let base = interp::run_program(&program, 2, &model).unwrap();
    let pre = interp::run_program(&out.program, 2, &model).unwrap();
    assert_eq!(base.outputs, pre.outputs);
}

#[test]
fn rank3_send_array_declined_clearly() {
    let src = "\
program main
  real :: as(4, 4, 2), ar(4, 4, 2)
  do ix = 1, 4
    do iy = 1, 4
      do iz = 1, 2
        as(ix, iy, iz) = ix + iy + iz
      end do
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let err = transform_src(src, &opts(2)).unwrap_err();
    assert!(err.contains("rank 3"), "{err}");
}

#[test]
fn mismatched_recv_shape_declined() {
    let src = "\
program main
  real :: as(16, 2), ar(32)
  do ix = 1, 16
    do iz = 1, 2
      as(ix, iz) = ix + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let err = transform_src(src, &opts(2)).unwrap_err();
    assert!(err.contains("different shapes"), "{err}");
}

#[test]
fn wrong_count_declined() {
    // count != extent(d1): the alltoall's block layout would not match
    // per-column sends.
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  do ix = 1, 16
    do iz = 1, 2
      as(ix, iz) = ix + iz
    end do
  end do
  call mpi_alltoall(as, 8, ar)
end program";
    let err = transform_src(src, &opts(2)).unwrap_err();
    assert!(err.contains("count"), "{err}");
}

#[test]
fn wrong_np_extent_declined() {
    // Node dim extent 2 but np = 4 in the analysis context.
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  do ix = 1, 16
    do iz = 1, 2
      as(ix, iz) = ix + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let err = transform_src(src, &opts(4)).unwrap_err();
    assert!(err.contains("extent np"), "{err}");
}

#[test]
fn no_context_symbolic_np_still_works() {
    // Declared with symbolic last dim `np`: provable without any context.
    let src = "\
program main
  real :: as(16, np), ar(16, np)
  do ix = 1, 16
    do iz = 1, np
      as(ix, iz) = ix + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let out = transform_src(
        src,
        &Options {
            tile_size: Some(4),
            ..Default::default() // empty context!
        },
    )
    .unwrap();
    assert_eq!(out.report.applied_count(), 1);

    // Run on several np values: the SAME transformed program must be
    // correct for all of them (the paper's code is np-generic).
    let program = fir::parse_validated(src).unwrap();
    for np in [2usize, 3, 5] {
        let model = clustersim::NetworkModel::mpich_gm();
        let base = interp::run_program(&program, np, &model).unwrap();
        let pre = interp::run_program(&out.program, np, &model).unwrap();
        assert_eq!(base.outputs, pre.outputs, "np = {np}");
    }
}

#[test]
fn declined_outcome_lists_every_reason() {
    // Two problems at once: conditional write AND Ar read in ℓ.
    let src = "\
program main
  real :: as(16), ar(16)
  do iy = 1, 2
    do ix = 1, 16
      if (ix > 2) then
        as(ix) = ar(ix) + 1
      end if
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program";
    let program = fir::parse_validated(src).unwrap();
    let err = transform(&program, &opts(2)).unwrap_err();
    let compuniformer::TransformError::NothingApplied(report) = err else {
        panic!("expected NothingApplied");
    };
    let Status::Declined(reasons) = &report.opportunities[0].status else {
        panic!("expected declined");
    };
    assert!(!reasons.is_empty());
}

#[test]
fn fixed_tile_size_overrides_heuristic() {
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  do ix = 1, 16
    do iz = 1, 2
      as(ix, iz) = ix + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    for k in [1i64, 3, 16] {
        let out = transform_src(src, &Options { tile_size: Some(k), ..opts(2) }).unwrap();
        assert_eq!(out.report.opportunities[0].tile_size, Some(k));
    }
}

#[test]
fn indirect_with_extra_safe_statement_declined_to_direct_fallback() {
    // A statement between producer and copy loop that touches `at` makes
    // the Fig.-3 shape unsafe to rewrite; the planner must not produce a
    // wrong indirect transform. (The direct fallback also declines here —
    // copying from `at` within ℓ while tiling over `iy` rewrites nothing
    // unsafely, but coverage of the node dim fails for rank-2 `as` tiled
    // on iy... the key assertion is simply: no unsound transform.)
    let src = "\
subroutine p(iy, m, at)
  integer :: iy, m
  real :: at(m)
  do i = 1, m
    at(i) = i * iy
  end do
end subroutine

program main
  real :: as(8, 2), ar(8, 2)
  real :: at(8)
  do iy = 1, 2
    call p(iy, 8, at)
    at(1) = -1
    do i = 1, 8
      as(i, iy) = at(i)
    end do
  end do
  call mpi_alltoall(as, 8, ar)
end program";
    let program = fir::parse_validated(src).unwrap();
    match transform(&program, &Options { oracle: UserOracle::AssumeSafe, ..opts(2) }) {
        Err(_) => {} // declining entirely is sound
        Ok(out) => {
            // If something was applied it must still be equivalent.
            let model = clustersim::NetworkModel::mpich_gm();
            let base = interp::run_program(&program, 2, &model).unwrap();
            let pre = interp::run_program(&out.program, 2, &model).unwrap();
            let excluded = out.report.incomparable_arrays();
            for rank in 0..2 {
                for (name, dump) in &base.outputs[rank].arrays {
                    if excluded.contains(&name.as_str()) {
                        continue;
                    }
                    assert_eq!(Some(dump), pre.outputs[rank].arrays.get(name));
                }
            }
        }
    }
}

#[test]
fn generated_names_avoid_user_names() {
    // The user already uses cc_t and cc_to; generated names must not clash.
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  integer :: cc_t, cc_to
  cc_t = 1
  cc_to = 2
  do ix = 1, 16
    do iz = 1, 2
      as(ix, iz) = ix + iz + cc_t + cc_to
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let out = transform_src(src, &Options { tile_size: Some(4), ..opts(2) }).unwrap();
    let text = fir::unparse(&out.program);
    assert!(text.contains("cc_t1") || text.contains("cc_t2"), "{text}");
    // Still validates (no duplicate decls).
    fir::parse_validated(&text).unwrap();
}

#[test]
fn conservative_model_caps_decline_feasible_sites() {
    // A model family the predictor has no calibration for hands the
    // transform a `conservative` capability view: the feasible site must
    // be *declined with a note* (original program emitted unchanged), not
    // predicted for — unless the caller forces application.
    let src = "\
program main
  real :: as(16, 2), ar(16, 2)
  do ix = 1, 16
    do iz = 1, 2
      as(ix, iz) = ix + iz
    end do
  end do
  call mpi_alltoall(as, 16, ar)
end program";
    let conservative = compuniformer::kselect::ModelCaps {
        conservative: true,
        ..Default::default()
    };
    let declined = transform_src(
        src,
        &Options {
            kselect_model: conservative.clone(),
            ..opts(2)
        },
    )
    .unwrap();
    assert_eq!(declined.report.applied_count(), 0);
    let unprofitable = declined
        .report
        .opportunities
        .iter()
        .find_map(|o| match &o.status {
            Status::Unprofitable(note) => Some(note.clone()),
            _ => None,
        })
        .expect("the feasible site is reported unprofitable");
    assert!(
        unprofitable.contains("calibration") && unprofitable.contains("conservatively"),
        "{unprofitable}"
    );
    assert!(fir::unparse(&declined.program).contains("mpi_alltoall"));

    // Both documented overrides force application through the decline.
    for forced in [
        Options {
            kselect_model: conservative.clone(),
            apply_even_if_unprofitable: true,
            ..opts(2)
        },
        Options {
            kselect_model: conservative.clone(),
            tile_size: Some(4),
            ..opts(2)
        },
    ] {
        let out = transform_src(src, &forced).unwrap();
        assert_eq!(out.report.applied_count(), 1, "override must apply");
        assert!(!fir::unparse(&out.program).contains("mpi_alltoall"));
    }
}
