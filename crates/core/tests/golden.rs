//! Golden transformations for the paper's code-listing figures.
//!
//! Figures 2, 3 and 4 *are* the paper's specification of the
//! transformation's output; these tests pin the generated code's structure
//! against them (modulo our simplified MPI surface, documented in
//! DESIGN.md §2).

use compuniformer::{transform, Options, UserOracle};
use depan::Context;

fn opts(np: i64) -> Options {
    Options {
        context: Context::new().with("np", np),
        ..Default::default()
    }
}

/// Figure 2(a), 1-D: tiling + owner sends. The paper's own Fig. 2(b)
/// sends each K-block as it completes; the generated code must contain
/// the tile loop, the per-tile wait, and asynchronous sends of exactly
/// the tile's block.
#[test]
fn figure2_direct_pattern() {
    let src = "\
program main
  real :: as(64), ar(64)
  do iy = 1, 64
    do ix = 1, 64
      as(ix) = ix * iy
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            ..opts(4)
        },
    )
    .unwrap();
    let text = fir::unparse(&out.program);

    // Tiled loop: `do cc_t = 1, 64, 8` with inner `do ix = cc_t, min(…)`.
    assert!(text.contains("do cc_t = 1, 64, 8"), "{text}");
    assert!(text.contains("do ix = cc_t, min(cc_t + 8 - 1, 64)"), "{text}");
    // §3.6 step 2: wait for the previous tile's receives.
    assert!(text.contains("call mpi_waitall_recv()"), "{text}");
    // Asynchronous sends/receives of the tile's block.
    assert!(text.contains("call mpi_isend(as(cc_a:cc_b), cc_len, cc_to,"), "{text}");
    assert!(text.contains("call mpi_irecv(ar("), "{text}");
    // §3.6 step 4: final wait after ℓ.
    assert!(text.contains("call mpi_waitall()"), "{text}");
    // §3.6 step 5: the original communication is gone.
    assert!(!text.contains("mpi_alltoall"), "{text}");
    // Owner computation from the flat position.
    assert!(text.contains("cc_to = (cc_a - 1) / 16"), "{text}");
    // Self-block copied locally.
    assert!(text.contains("ar(cc_i - 1 + 1) = as(cc_i)"), "{text}");

    let report = out.report.summary();
    assert!(report.contains("tiled owner sends"), "{report}");
}

/// Figure 3: the indirect pattern. After transformation the copy loop is
/// gone, the temporary gained a slot dimension, and `At` is sent directly
/// — "At —copy→ As —send→ Ar  becomes  At —send→ Ar" (§3.4).
#[test]
fn figure3_indirect_pattern() {
    let src = "\
subroutine p(iy, m, at)
  integer :: iy, m
  real :: at(m)
  do i = 1, m
    at(i) = i * iy
  end do
end subroutine

program main
  real :: as(25, 4), ar(25, 4)
  real :: at(25)
  do iy = 1, 4
    call p(iy, 25, at)
    do ix = 1, 25
      as(ix, iy) = at(ix)
    end do
  end do
  call mpi_alltoall(as, 25, ar)
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(&program, &opts(4)).unwrap();
    let text = fir::unparse(&out.program);

    // The copy loop `as(ix, iy) = at(ix)` is gone.
    assert!(!text.contains("as(ix, iy) = at(ix)"), "{text}");
    // At gained a slot dimension and the producer call was re-pointed.
    assert!(text.contains("at(25, 4 - 1 + 1)") || text.contains("at(25, 4)"), "{text}");
    assert!(text.contains("call p(iy, 25, at(:, cc_slot))"), "{text}");
    // At is sent directly (Fig. 3(b): `async-send(At(…))`).
    assert!(text.contains("call mpi_isend(at(:, cc_slot), 25, cc_to,"), "{text}");
    // The self-copy re-targets the deleted copy loop at Ar.
    assert!(text.contains("ar(ix, iy) = at(ix, cc_slot)"), "{text}");
    assert!(!text.contains("mpi_alltoall"), "{text}");

    // As is dead now.
    assert_eq!(out.report.dead_arrays(), vec!["as"]);
}

/// Figure 4: the skewed all-peers exchange. The generated loop must match
/// the paper's structure:
///
/// ```text
/// do j = 1,NP-1
///   to = mod(mynum+j,NP)
///   call mpi_isend(As(…), …)
///   from = mod(NP+mynum-j,NP)
///   call mpi_irecv(Ar(…), …)
/// enddo
/// ```
#[test]
fn figure4_communication_code() {
    let src = "\
program main
  real :: as(32, 4), ar(32, 4)
  do iy = 1, 2
    do ix = 1, 32
      do iz = 1, 4
        as(ix, iz) = ix * iz + iy
      end do
    end do
    call mpi_alltoall(as, 32, ar)
  end do
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            ..opts(4)
        },
    )
    .unwrap();
    let text = fir::unparse(&out.program);

    assert!(text.contains("do cc_j = 1, np - 1"), "{text}");
    assert!(text.contains("cc_to = mod(mynum + cc_j, np)"), "{text}");
    assert!(text.contains("cc_from = mod(np + mynum - cc_j, np)"), "{text}");
    // Sends the tile's slice of the destination's column; receives the
    // matching slice from the skewed source.
    assert!(
        text.contains("call mpi_isend(as(cc_t:min(cc_t + 8 - 1, 32), cc_to + 1)"),
        "{text}"
    );
    assert!(
        text.contains("call mpi_irecv(ar(cc_t:min(cc_t + 8 - 1, 32), cc_from + 1)"),
        "{text}"
    );
    let report = out.report.summary();
    assert!(report.contains("Fig. 4"), "{report}");
}

/// The generated program must itself be a valid input: parse, validate,
/// and contain no leftover references to removed constructs.
#[test]
fn generated_code_reparses_and_validates() {
    for (name, src, k) in [
        (
            "direct-1d",
            "program main\n  real :: as(64), ar(64)\n  do iy = 1, 3\n    do ix = 1, 64\n      as(ix) = ix * iy\n    end do\n    call mpi_alltoall(as, 16, ar)\n  end do\nend program",
            Some(8),
        ),
        (
            "direct-2d",
            "program main\n  real :: as(16, 4), ar(16, 4)\n  do ix = 1, 16\n    do iz = 1, 4\n      as(ix, iz) = ix + iz\n    end do\n  end do\n  call mpi_alltoall(as, 16, ar)\nend program",
            Some(4),
        ),
    ] {
        let program = fir::parse(src).unwrap();
        let out = transform(
            &program,
            &Options {
                tile_size: k,
                ..opts(4)
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = fir::unparse(&out.program);
        fir::parse_validated(&text)
            .unwrap_or_else(|e| panic!("{name} output invalid: {e}\n{text}"));
    }
}

/// Interchange (§3.5): node loop outermost over a 2-deep perfect nest with
/// no blocking dependence — the loops must be swapped and the all-peers
/// strategy used.
#[test]
fn node_loop_outermost_interchanged() {
    let src = "\
program main
  real :: as(32, 4), ar(32, 4)
  do iz = 1, 4
    do ix = 1, 32
      as(ix, iz) = ix * iz
    end do
  end do
  call mpi_alltoall(as, 32, ar)
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            ..opts(4)
        },
    )
    .unwrap();
    let text = fir::unparse(&out.program);
    // After interchange, ix is the tiled loop and iz runs inside.
    assert!(text.contains("do ix = cc_t, min(cc_t + 8 - 1, 32)"), "{text}");
    assert!(text.contains("do cc_j = 1, np - 1"), "{text}");
    let summary = out.report.summary();
    assert!(summary.contains("interchanged loops `iz` and `ix`"), "{summary}");
}

/// Interchange blocked by a reversed dependence: the planner falls back to
/// per-column owner sends (with the §3.5 congestion caveat recorded). An
/// explicit tile size forces the fallback through (ablation mode); with
/// the automatic path, the K-selection predictor sees the tiny columns
/// and declines the site as unprofitable, emitting the original program.
#[test]
fn node_loop_outermost_interchange_blocked_falls_back() {
    let src = "\
program main
  real :: as(32, 4), ar(32, 4), c(40, 8)
  do iz = 1, 4
    do ix = 1, 32
      c(ix, iz + 1) = c(ix + 1, iz) + 1
      as(ix, iz) = ix * iz
    end do
  end do
  call mpi_alltoall(as, 32, ar)
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(1),
            ..opts(4)
        },
    )
    .unwrap();
    let summary = out.report.summary();
    assert!(summary.contains("interchange blocked"), "{summary}");
    assert!(summary.contains("per-column owner sends"), "{summary}");
    let text = fir::unparse(&out.program);
    assert!(text.contains("call mpi_isend(as(:, "), "{text}");

    // Automatic mode: 256 B columns can never recoup the per-message
    // overheads — the predictor declines and the program is unchanged.
    let auto = transform(&program, &opts(4)).unwrap();
    assert_eq!(fir::unparse(&auto.program), fir::unparse(&program));
    let auto_summary = auto.report.summary();
    assert!(
        auto_summary.contains("predicted slowdown"),
        "{auto_summary}"
    );
}

/// The report records user queries for opaque procedures.
#[test]
fn semi_automatic_query_recorded() {
    let src = "\
subroutine mystery(n, at)
  integer :: n
  real :: at(n)
  do i = 1, n
    at(i) = i
  end do
end subroutine

program main
  real :: as(16), ar(16)
  do iy = 1, 2
    do ix = 1, 16
      as(ix) = ix
    end do
    call mpi_alltoall(as, 4, ar)
  end do
  call mystery(16, as)
end program";
    let program = fir::parse(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(4),
            oracle: UserOracle::AssumeSafe,
            opaque_procedures: vec!["mystery".into()],
            ..opts(4)
        },
    )
    .unwrap();
    // The loop before C is a plain direct loop — the opaque call is after
    // C, so no query is needed for ℓ; the transformation applies cleanly.
    assert_eq!(out.report.applied_count(), 1);
}
