//! Affine (linear + constant) forms over program variables.
//!
//! Subscript expressions are lowered to `Σ cᵥ·v + k` with integer-literal
//! coefficients. Variables fall into two classes decided by the caller:
//! loop *index* variables (the unknowns of a dependence system) and
//! *symbolic* constants (`nx`, `np`, `mynum`, …) that are loop-invariant.
//! Symbolic parts that are identical on both sides of a dependence equation
//! cancel; differing symbolic parts make the test conservative (Unknown).

use fir::ast::{BinOp, Expr, UnOp};
use std::collections::BTreeMap;
use std::fmt;

/// `Σ coeffs[v]·v + constant`. Coefficients are never stored as zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    coeffs: BTreeMap<String, i64>,
    pub constant: i64,
}

impl Affine {
    pub fn constant(k: i64) -> Self {
        Affine {
            coeffs: BTreeMap::new(),
            constant: k,
        }
    }

    pub fn var(name: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        Affine {
            coeffs,
            constant: 0,
        }
    }

    pub fn coeff(&self, var: &str) -> i64 {
        self.coeffs.get(var).copied().unwrap_or(0)
    }

    pub fn vars(&self) -> impl Iterator<Item = (&str, i64)> {
        self.coeffs.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    fn set_coeff(&mut self, var: &str, c: i64) {
        if c == 0 {
            self.coeffs.remove(var);
        } else {
            self.coeffs.insert(var.to_string(), c);
        }
    }

    pub fn checked_add(&self, other: &Affine) -> Option<Affine> {
        let mut out = self.clone();
        out.constant = out.constant.checked_add(other.constant)?;
        for (v, c) in &other.coeffs {
            let nc = out.coeff(v).checked_add(*c)?;
            out.set_coeff(v, nc);
        }
        Some(out)
    }

    pub fn checked_sub(&self, other: &Affine) -> Option<Affine> {
        self.checked_add(&other.checked_scale(-1)?)
    }

    pub fn checked_scale(&self, s: i64) -> Option<Affine> {
        let mut out = Affine::constant(self.constant.checked_mul(s)?);
        for (v, c) in &self.coeffs {
            out.set_coeff(v, c.checked_mul(s)?);
        }
        Some(out)
    }

    /// Split into (index part over `index_vars`, symbolic remainder).
    /// The symbolic remainder keeps the constant.
    pub fn split(&self, index_vars: &[&str]) -> (Affine, Affine) {
        let mut idx = Affine::constant(0);
        let mut sym = Affine::constant(self.constant);
        for (v, c) in &self.coeffs {
            if index_vars.contains(&v.as_str()) {
                idx.set_coeff(v, *c);
            } else {
                sym.set_coeff(v, *c);
            }
        }
        (idx, sym)
    }

    /// Evaluate with every variable bound in `env`; `None` if any is free.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in &self.coeffs {
            acc = acc.checked_add(c.checked_mul(env(v)?)?)?;
        }
        Some(acc)
    }

    /// Substitute `var := value`, folding it into the constant.
    pub fn substitute(&self, var: &str, value: i64) -> Option<Affine> {
        let c = self.coeff(var);
        let mut out = self.clone();
        out.coeffs.remove(var);
        out.constant = out.constant.checked_add(c.checked_mul(value)?)?;
        Some(out)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else if *c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Lower an expression to affine form. Returns `None` for anything
/// non-affine: products of two variables, division, `mod`, real literals,
/// array references, intrinsic calls other than constant-foldable ones.
pub fn from_expr(e: &Expr) -> Option<Affine> {
    match e {
        Expr::IntLit(v, _) => Some(Affine::constant(*v)),
        Expr::RealLit(..) => None,
        Expr::Var(n, _) => Some(Affine::var(n)),
        Expr::ArrayRef { .. } | Expr::Call { .. } => None,
        Expr::Unary { op, operand, .. } => match op {
            UnOp::Neg => from_expr(operand)?.checked_scale(-1),
            UnOp::Not => None,
        },
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = from_expr(lhs);
            let r = from_expr(rhs);
            match op {
                BinOp::Add => l?.checked_add(&r?),
                BinOp::Sub => l?.checked_sub(&r?),
                BinOp::Mul => {
                    let l = l?;
                    let r = r?;
                    if l.is_constant() {
                        r.checked_scale(l.constant)
                    } else if r.is_constant() {
                        l.checked_scale(r.constant)
                    } else {
                        None
                    }
                }
                BinOp::Div => {
                    // Exact constant division only; `ix / 2` is not affine.
                    let l = l?;
                    let r = r?;
                    if r.is_constant() && r.constant != 0 && l.is_constant() {
                        let (a, b) = (l.constant, r.constant);
                        // Fortran integer division truncates toward zero.
                        Some(Affine::constant(a.wrapping_div(b)))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::parse_expr;

    fn aff(src: &str) -> Option<Affine> {
        from_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn literal_and_var() {
        assert_eq!(aff("7").unwrap(), Affine::constant(7));
        let a = aff("ix").unwrap();
        assert_eq!(a.coeff("ix"), 1);
        assert_eq!(a.constant, 0);
    }

    #[test]
    fn linear_combination() {
        let a = aff("2 * ix + 3 * iy - 5").unwrap();
        assert_eq!(a.coeff("ix"), 2);
        assert_eq!(a.coeff("iy"), 3);
        assert_eq!(a.constant, -5);
    }

    #[test]
    fn nested_negation_and_mul() {
        let a = aff("-(ix - 2) * 3").unwrap();
        assert_eq!(a.coeff("ix"), -3);
        assert_eq!(a.constant, 6);
    }

    #[test]
    fn coefficient_cancellation_removes_entry() {
        let a = aff("ix - ix + 4").unwrap();
        assert!(a.is_constant());
        assert_eq!(a.constant, 4);
    }

    #[test]
    fn non_affine_forms_rejected() {
        assert!(aff("ix * iy").is_none());
        assert!(aff("ix / 2").is_none());
        assert!(aff("mod(ix, 4)").is_none());
        assert!(aff("a(ix)").is_none());
        assert!(aff("1.5").is_none());
        assert!(aff("2**3").is_none());
    }

    #[test]
    fn constant_division_folds() {
        assert_eq!(aff("7 / 2").unwrap(), Affine::constant(3));
        assert_eq!(aff("(-7) / 2").unwrap(), Affine::constant(-3));
    }

    #[test]
    fn split_separates_index_and_symbolic() {
        let a = aff("2 * ix + nx + 4").unwrap();
        let (idx, sym) = a.split(&["ix"]);
        assert_eq!(idx.coeff("ix"), 2);
        assert_eq!(idx.constant, 0);
        assert_eq!(sym.coeff("nx"), 1);
        assert_eq!(sym.constant, 4);
    }

    #[test]
    fn eval_and_substitute() {
        let a = aff("2 * ix + iy + 1").unwrap();
        let env = |v: &str| match v {
            "ix" => Some(3),
            "iy" => Some(10),
            _ => None,
        };
        assert_eq!(a.eval(&env), Some(17));
        let b = a.substitute("ix", 3).unwrap();
        assert_eq!(b.coeff("ix"), 0);
        assert_eq!(b.constant, 7);
        assert_eq!(b.coeff("iy"), 1);
    }

    #[test]
    fn display_readable() {
        let a = aff("2 * ix - iy - 5").unwrap();
        assert_eq!(a.to_string(), "2*ix - iy - 5");
        assert_eq!(Affine::constant(0).to_string(), "0");
    }

    #[test]
    fn overflow_is_caught() {
        let a = Affine::constant(i64::MAX);
        assert!(a.checked_add(&Affine::constant(1)).is_none());
        assert!(a.checked_scale(2).is_none());
    }
}
