//! The dependence decision procedure.
//!
//! Builds an integer linear system from a pair of array references
//! (subscript equality per dimension + iteration-order constraints) and
//! decides it with, in order:
//!
//! 1. **ZIV**: constant-vs-constant subscripts that differ ⇒ independent;
//! 2. **GCD**: gcd of index coefficients does not divide the constant
//!    difference ⇒ independent (bound-free, works with symbolic bounds);
//! 3. **Banerjee / exact enumeration** over numeric bounds from the test
//!    [`Context`] — exact within the node budget.
//!
//! Anything unprovable returns [`Verdict::MayDepend`]; the transformation
//! only acts on proofs of independence, so `MayDepend` is always safe.

use crate::exact::{feasible, LinearEq, OrderConstraint, OrderRel, VarDomain};
use crate::loopnest::{numeric_bounds, AccessRef, Context, LoopInfo};

pub use crate::exact::OrderRel as Rel;

/// Outcome of a dependence query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven: no pair of instances can touch the same element (under the
    /// given order constraints).
    Independent,
    /// Could not prove independence.
    MayDepend,
}

impl Verdict {
    pub fn is_independent(self) -> bool {
        self == Verdict::Independent
    }
}

/// An order constraint between the two instances of a *common* loop,
/// identified by its position in the common prefix (0 = outermost).
#[derive(Debug, Clone, Copy)]
pub struct CommonOrder {
    pub common_idx: usize,
    pub rel: OrderRel,
}

/// Longest common prefix of the two refs' loop stacks (structural equality
/// of var, bounds and step). Instances of these loops get paired variables
/// in the dependence system.
pub fn common_loops<'a>(r1: &'a AccessRef, r2: &AccessRef) -> &'a [LoopInfo] {
    let n = r1
        .loops
        .iter()
        .zip(r2.loops.iter())
        .take_while(|(a, b)| a == b)
        .count();
    &r1.loops[..n]
}

/// Can instances of `r1` and `r2` access the same element, subject to
/// `orders` on the common loops?
///
/// Conservative in exactly these cases (returns `MayDepend`):
/// whole-array references (empty subscripts), rank mismatch, non-affine
/// subscripts on *every* dimension, symbolic subscript differences, or
/// missing numeric bounds when the quick tests are inconclusive.
pub fn may_depend(
    r1: &AccessRef,
    r2: &AccessRef,
    ctx: &Context,
    orders: &[CommonOrder],
) -> Verdict {
    if r1.subscripts.is_empty() || r2.subscripts.is_empty() {
        return Verdict::MayDepend;
    }
    if r1.rank() != r2.rank() {
        return Verdict::MayDepend;
    }

    let common = common_loops(r1, r2);
    let n_common = common.len();
    for oc in orders {
        assert!(
            oc.common_idx < n_common,
            "order constraint on non-common loop"
        );
    }

    // Column layout: [common pairs: (c0,r1),(c0,r2),(c1,r1),(c1,r2),...]
    // then r1-private loops, then r2-private loops.
    let r1_priv = &r1.loops[n_common..];
    let r2_priv = &r2.loops[n_common..];
    let n_cols = 2 * n_common + r1_priv.len() + r2_priv.len();

    let col_of = |var: &str, first: bool| -> Option<usize> {
        if let Some(i) = common.iter().position(|l| l.var == var) {
            return Some(2 * i + usize::from(!first));
        }
        if first {
            r1_priv
                .iter()
                .position(|l| l.var == var)
                .map(|i| 2 * n_common + i)
        } else {
            r2_priv
                .iter()
                .position(|l| l.var == var)
                .map(|i| 2 * n_common + r1_priv.len() + i)
        }
    };

    // Index variables of each side: every enclosing loop var.
    let idx_vars_1: Vec<&str> = r1.loops.iter().map(|l| l.var.as_str()).collect();
    let idx_vars_2: Vec<&str> = r2.loops.iter().map(|l| l.var.as_str()).collect();

    let mut eqs: Vec<LinearEq> = Vec::new();
    let mut any_dim_constrained = false;

    for d in 0..r1.rank() {
        let (Some(a1), Some(a2)) = (&r1.affine[d], &r2.affine[d]) else {
            continue; // non-affine dim: drop the constraint (conservative)
        };
        let (idx1, sym1) = a1.split(&idx_vars_1);
        let (idx2, sym2) = a2.split(&idx_vars_2);
        let Some(symdiff) = sym2.checked_sub(&sym1) else {
            continue;
        };
        if !symdiff.is_constant() {
            // Symbolic subscript difference (e.g. `as(ix)` vs `as(ix+n)`):
            // cannot constrain this dimension.
            continue;
        }
        let rhs = symdiff.constant;

        let mut coeffs = vec![0i64; n_cols];
        let mut lost_var = false;
        for (v, c) in idx1.vars() {
            match col_of(v, true) {
                Some(col) => coeffs[col] += c,
                None => lost_var = true,
            }
        }
        for (v, c) in idx2.vars() {
            match col_of(v, false) {
                Some(col) => coeffs[col] -= c,
                None => lost_var = true,
            }
        }
        if lost_var {
            continue;
        }

        // ZIV: no index variables at all.
        if coeffs.iter().all(|&c| c == 0) {
            if rhs != 0 {
                return Verdict::Independent;
            }
            continue; // trivially satisfied
        }

        // GCD test (bound-free).
        let g = coeffs.iter().fold(0i64, |acc, &c| gcd(acc, c));
        if g != 0 && rhs % g != 0 {
            return Verdict::Independent;
        }

        eqs.push(LinearEq { coeffs, rhs });
        any_dim_constrained = true;
    }

    if !any_dim_constrained && orders.is_empty() {
        return Verdict::MayDepend;
    }

    // Bound-free forced-equality check: an equation `x_a - x_b = 0` (and
    // nothing else) forces the two instances of a common loop equal; a
    // strict order constraint on that pair is then infeasible for *any*
    // loop bounds. This is what proves injective writes (`as(ix, iz)`)
    // safe when bounds are symbolic (e.g. declared with extent `np`).
    for oc in orders {
        if oc.rel == OrderRel::Eq {
            continue;
        }
        let ca = 2 * oc.common_idx;
        let cb = ca + 1;
        let forced_equal = eqs.iter().any(|eq| {
            eq.rhs == 0
                && eq.coeffs[ca] != 0
                && eq.coeffs[ca] == -eq.coeffs[cb]
                && eq.coeffs
                    .iter()
                    .enumerate()
                    .all(|(j, &c)| j == ca || j == cb || c == 0)
        });
        if forced_equal {
            return Verdict::Independent;
        }
    }

    // Numeric bounds for the exact test.
    let Some(nb_common) = numeric_bounds(common, ctx) else {
        return Verdict::MayDepend;
    };
    let Some(nb_p1) = numeric_bounds(r1_priv, ctx) else {
        return Verdict::MayDepend;
    };
    let Some(nb_p2) = numeric_bounds(r2_priv, ctx) else {
        return Verdict::MayDepend;
    };

    let mut domains = Vec::with_capacity(n_cols);
    for nb in &nb_common {
        let d = VarDomain::new(nb.lo, nb.hi, nb.step);
        domains.push(d); // instance 1
        domains.push(d); // instance 2
    }
    for nb in nb_p1.iter().chain(nb_p2.iter()) {
        domains.push(VarDomain::new(nb.lo, nb.hi, nb.step));
    }

    let order_constraints: Vec<OrderConstraint> = orders
        .iter()
        .map(|oc| OrderConstraint {
            a: 2 * oc.common_idx,
            b: 2 * oc.common_idx + 1,
            rel: oc.rel,
        })
        .collect();

    match feasible(
        &domains,
        &eqs,
        &order_constraints,
        crate::exact::DEFAULT_NODE_BUDGET,
    ) {
        Some(false) => Verdict::Independent,
        Some(true) | None => Verdict::MayDepend,
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::collect_accesses;
    use fir::parse_stmts;

    fn refs(src: &str, array: &str) -> Vec<AccessRef> {
        collect_accesses(&parse_stmts(src).unwrap(), array)
    }

    fn ctx() -> Context {
        Context::new().with("nx", 64).with("ny", 8).with("n", 64)
    }

    #[test]
    fn injective_write_no_self_overwrite() {
        // as(ix) written once per ix: no two distinct iterations collide.
        let r = refs("do ix = 1, nx\n  as(ix) = 0\nend do", "as");
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::Independent);
    }

    #[test]
    fn strided_write_still_injective() {
        let r = refs("do ix = 1, nx\n  as(2 * ix + 3) = 0\nend do", "as");
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::Independent);
    }

    #[test]
    fn constant_subscript_overwrites() {
        // as(1) written every iteration: self output dependence.
        let r = refs("do ix = 1, nx\n  as(1) = ix\nend do", "as");
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::MayDepend);
    }

    #[test]
    fn non_injective_sum_subscript() {
        // as(ix + iy) collides across the diagonal.
        let r = refs(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix + iy) = 0\n  end do\nend do",
            "as",
        );
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::MayDepend);
    }

    #[test]
    fn two_dim_subscript_injective_per_outer() {
        // as(ix, iy): distinct (ix, iy) pairs map to distinct elements.
        let r = refs(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix, iy) = 0\n  end do\nend do",
            "as",
        );
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::Independent);
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 1, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::Independent);
    }

    #[test]
    fn ziv_different_constants() {
        let r = refs("as(1) = 0\nas(2) = 0", "as");
        assert_eq!(may_depend(&r[0], &r[1], &ctx(), &[]), Verdict::Independent);
    }

    #[test]
    fn ziv_same_constant() {
        let r = refs("as(1) = 0\nas(1) = 1", "as");
        assert_eq!(may_depend(&r[0], &r[1], &ctx(), &[]), Verdict::MayDepend);
    }

    #[test]
    fn gcd_disproof_without_bounds() {
        // as(2*i) vs as(2*j + 1): parity differs — provable with no context.
        let r = refs(
            "do i = 1, n\n  as(2 * i) = 0\nend do\ndo j = 1, n\n  as(2 * j + 1) = 0\nend do",
            "as",
        );
        let (w1, w2) = (&r[0], &r[1]);
        assert_eq!(
            may_depend(w1, w2, &Context::new(), &[]),
            Verdict::Independent
        );
    }

    #[test]
    fn disjoint_ranges_proved_by_exact_test() {
        // as(i) over 1..32 vs as(j+32) over 1..32: disjoint.
        let r = refs(
            "do i = 1, 32\n  as(i) = 0\nend do\ndo j = 1, 32\n  as(j + 32) = 0\nend do",
            "as",
        );
        assert_eq!(may_depend(&r[0], &r[1], &ctx(), &[]), Verdict::Independent);
    }

    #[test]
    fn overlapping_ranges_detected() {
        let r = refs(
            "do i = 1, 32\n  as(i) = 0\nend do\ndo j = 1, 32\n  as(j + 16) = 0\nend do",
            "as",
        );
        assert_eq!(may_depend(&r[0], &r[1], &ctx(), &[]), Verdict::MayDepend);
    }

    #[test]
    fn symbolic_difference_is_conservative() {
        // as(ix) vs as(ix + n): difference is symbolic `n` — MayDepend.
        let r = refs(
            "do ix = 1, 8\n  as(ix) = 0\n  as(ix + n) = 1\nend do",
            "as",
        );
        assert_eq!(
            may_depend(&r[0], &r[1], &Context::new(), &[]),
            Verdict::MayDepend
        );
        // …but with a context binding n=8 and tight loop bounds the exact
        // test proves disjointness within one iteration (same ix).
        let v = may_depend(
            &r[0],
            &r[1],
            &ctx().with("n", 8),
            &[CommonOrder { common_idx: 0, rel: Rel::Eq }],
        );
        // as(ix) vs as(ix+8) with ix == ix': never equal.
        assert_eq!(v, Verdict::MayDepend); // symbolic diff still dropped
    }

    #[test]
    fn whole_array_ref_conservative() {
        let r = refs("call p(as)\nas(1) = 0", "as");
        let w = r.iter().find(|r| r.is_write && r.subscripts.is_empty()).unwrap();
        let e = r.iter().find(|r| !r.subscripts.is_empty()).unwrap();
        assert_eq!(may_depend(w, e, &ctx(), &[]), Verdict::MayDepend);
    }

    #[test]
    fn non_affine_subscript_conservative() {
        let r = refs("do i = 1, n\n  as(mod(i, 4)) = 0\nend do", "as");
        let v = may_depend(
            &r[0],
            &r[0],
            &ctx(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::MayDepend);
    }

    #[test]
    fn forced_equality_proves_injectivity_with_symbolic_bounds() {
        // as(ix, iz) with bounds `nx`/`np` unknown: the exact test cannot
        // run, but ix₁ = ix₂ forced by dim 1 contradicts ix₁ < ix₂.
        let r = refs(
            "do ix = 1, nx\n  do iz = 1, np2\n    as(ix, iz) = 0\n  end do\nend do",
            "as",
        );
        let v = may_depend(
            &r[0],
            &r[0],
            &Context::new(), // no bounds at all
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::Independent);
        // …but a non-injective subscript stays conservative.
        let r = refs(
            "do ix = 1, nx\n  do iz = 1, np2\n    as(ix + iz, 1) = 0\n  end do\nend do",
            "as",
        );
        let v = may_depend(
            &r[0],
            &r[0],
            &Context::new(),
            &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
        );
        assert_eq!(v, Verdict::MayDepend);
    }

    #[test]
    fn missing_context_conservative_when_quick_tests_fail() {
        // Needs bounds to disprove, but no context: MayDepend.
        let r = refs(
            "do i = 1, n\n  as(i) = 0\nend do\ndo j = 1, n\n  as(j + 100) = 0\nend do",
            "as",
        );
        assert_eq!(
            may_depend(&r[0], &r[1], &Context::new(), &[]),
            Verdict::MayDepend
        );
        // With n = 64: disjoint.
        assert_eq!(
            may_depend(&r[0], &r[1], &Context::new().with("n", 64), &[]),
            Verdict::Independent
        );
    }
}
