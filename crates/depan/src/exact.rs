//! Exact integer feasibility for small linear systems — the reproduction's
//! stand-in for the Omega test (Pugh, SC'91).
//!
//! The dependence problems this project generates are tiny (≤ 8 variables,
//! ≤ 4 equations), so instead of full Omega-style Fourier–Motzkin with
//! integer tightening we run a depth-first enumeration over the variable
//! boxes with interval-arithmetic pruning on every equation, plus a node
//! budget. Within the budget the answer is *exact*; over budget we return
//! `None` and callers fall back to conservative verdicts. Property tests
//! validate the enumerator against naive brute force.

/// Inclusive integer domain `lo..=hi` stepping `step` (positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarDomain {
    pub lo: i64,
    pub hi: i64,
    pub step: i64,
}

impl VarDomain {
    pub fn new(lo: i64, hi: i64, step: i64) -> Self {
        assert!(step != 0, "zero step domain");
        // Normalize to a positive step.
        if step > 0 {
            VarDomain { lo, hi, step }
        } else {
            // lo..=hi downward with step<0 visits the same set as the
            // upward-normalized domain anchored at the last visited value.
            let s = -step;
            if lo < hi {
                // empty either way
                VarDomain { lo: 1, hi: 0, step: s }
            } else {
                let count = (lo - hi) / s;
                VarDomain {
                    lo: lo - count * s,
                    hi: lo,
                    step: s,
                }
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    pub fn size(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            ((self.hi - self.lo) as u64) / (self.step as u64) + 1
        }
    }

    fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (self.lo..=self.hi).step_by(self.step as usize)
    }
}

/// `Σ coeffs[j]·x[j] = rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearEq {
    pub coeffs: Vec<i64>,
    pub rhs: i64,
}

/// Strict order constraint between two variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderRel {
    Lt,
    Eq,
    Gt,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderConstraint {
    pub a: usize,
    pub b: usize,
    pub rel: OrderRel,
}

impl OrderConstraint {
    fn holds(&self, xa: i64, xb: i64) -> bool {
        match self.rel {
            OrderRel::Lt => xa < xb,
            OrderRel::Eq => xa == xb,
            OrderRel::Gt => xa > xb,
        }
    }
}

/// Default node budget: generous for the tiny systems we build, small enough
/// that pathological inputs return `None` quickly.
pub const DEFAULT_NODE_BUDGET: u64 = 2_000_000;

/// Is there an integer point in the box satisfying all equations and order
/// constraints?  `Some(true)` / `Some(false)` are exact; `None` means the
/// node budget was exhausted.
pub fn feasible(
    domains: &[VarDomain],
    eqs: &[LinearEq],
    orders: &[OrderConstraint],
    budget: u64,
) -> Option<bool> {
    for d in domains {
        if d.is_empty() {
            return Some(false);
        }
    }
    for eq in eqs {
        debug_assert_eq!(eq.coeffs.len(), domains.len());
    }

    // GCD pre-filter: gcd of coefficients must divide rhs.
    for eq in eqs {
        let g = eq.coeffs.iter().fold(0i64, |acc, &c| gcd(acc, c));
        if g == 0 {
            if eq.rhs != 0 {
                return Some(false);
            }
        } else if eq.rhs % g != 0 {
            return Some(false);
        }
    }

    let mut st = Search {
        domains,
        eqs,
        orders,
        assignment: vec![0; domains.len()],
        nodes: 0,
        budget,
    };
    st.dfs(0)
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

struct Search<'a> {
    domains: &'a [VarDomain],
    eqs: &'a [LinearEq],
    orders: &'a [OrderConstraint],
    assignment: Vec<i64>,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    /// Residual interval of `Σ_{j≥k} c_j·x_j` given domains; saturating so
    /// extreme coefficients cannot overflow.
    fn residual_range(&self, eq: &LinearEq, from: usize) -> (i64, i64) {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for j in from..self.domains.len() {
            let c = eq.coeffs[j];
            if c == 0 {
                continue;
            }
            let d = &self.domains[j];
            let (a, b) = (c.saturating_mul(d.lo), c.saturating_mul(d.hi));
            lo = lo.saturating_add(a.min(b));
            hi = hi.saturating_add(a.max(b));
        }
        (lo, hi)
    }

    fn prune(&self, level: usize) -> bool {
        for eq in self.eqs {
            let mut acc = 0i64;
            for j in 0..level {
                acc = acc.saturating_add(eq.coeffs[j].saturating_mul(self.assignment[j]));
            }
            let (rlo, rhi) = self.residual_range(eq, level);
            let need = eq.rhs.saturating_sub(acc);
            if need < rlo || need > rhi {
                return true;
            }
        }
        // Order constraints where both sides are assigned.
        for oc in self.orders {
            if oc.a < level && oc.b < level
                && !oc.holds(self.assignment[oc.a], self.assignment[oc.b]) {
                    return true;
                }
        }
        false
    }

    fn dfs(&mut self, level: usize) -> Option<bool> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return None;
        }
        if self.prune(level) {
            return Some(false);
        }
        if level == self.domains.len() {
            return Some(true);
        }

        // Forced-value propagation: if some equation has the current
        // variable as its only unassigned term, its value is determined —
        // solve instead of enumerating. This is what keeps equality-coupled
        // instance pairs (`i - i' = d`) linear instead of quadratic.
        let mut forced: Option<i64> = None;
        'eqs: for eq in self.eqs {
            let c = eq.coeffs[level];
            if c == 0 {
                continue;
            }
            for j in level + 1..self.domains.len() {
                if eq.coeffs[j] != 0 {
                    continue 'eqs;
                }
            }
            let mut acc = 0i64;
            for j in 0..level {
                acc = acc.saturating_add(eq.coeffs[j].saturating_mul(self.assignment[j]));
            }
            let need = eq.rhs.saturating_sub(acc);
            if need % c != 0 {
                return Some(false);
            }
            let v = need / c;
            match forced {
                Some(f) if f != v => return Some(false),
                _ => forced = Some(v),
            }
        }
        if let Some(v) = forced {
            let d = self.domains[level];
            if v < d.lo || v > d.hi || (v - d.lo) % d.step != 0 {
                return Some(false);
            }
            self.assignment[level] = v;
            return self.dfs(level + 1);
        }

        let dom = self.domains[level];
        for v in dom.iter() {
            self.assignment[level] = v;
            match self.dfs(level + 1) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
        }
        Some(false)
    }
}

/// Banerjee-style interval check for a single equation over the box:
/// returns `false` (definitely infeasible) when `rhs` lies outside the
/// attainable interval of the LHS. `true` means "maybe".
pub fn banerjee_maybe(domains: &[VarDomain], eq: &LinearEq) -> bool {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for (j, d) in domains.iter().enumerate() {
        let c = eq.coeffs[j];
        if c == 0 {
            continue;
        }
        let (a, b) = (c.saturating_mul(d.lo), c.saturating_mul(d.hi));
        lo = lo.saturating_add(a.min(b));
        hi = hi.saturating_add(a.max(b));
    }
    eq.rhs >= lo && eq.rhs <= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dom(lo: i64, hi: i64) -> VarDomain {
        VarDomain::new(lo, hi, 1)
    }

    #[test]
    fn domain_normalization_negative_step() {
        let d = VarDomain::new(10, 1, -3); // visits 10,7,4,1
        assert_eq!(d, VarDomain { lo: 1, hi: 10, step: 3 });
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn empty_domain_infeasible() {
        let r = feasible(&[VarDomain::new(5, 1, 1)], &[], &[], 1000);
        assert_eq!(r, Some(false));
    }

    #[test]
    fn trivial_feasible() {
        let r = feasible(&[dom(1, 3)], &[], &[], 1000);
        assert_eq!(r, Some(true));
    }

    #[test]
    fn single_equation() {
        // x = 2 within 1..=3
        let r = feasible(
            &[dom(1, 3)],
            &[LinearEq { coeffs: vec![1], rhs: 2 }],
            &[],
            1000,
        );
        assert_eq!(r, Some(true));
        // x = 7 within 1..=3
        let r = feasible(
            &[dom(1, 3)],
            &[LinearEq { coeffs: vec![1], rhs: 7 }],
            &[],
            1000,
        );
        assert_eq!(r, Some(false));
    }

    #[test]
    fn gcd_filter() {
        // 2x + 4y = 5 has no integer solution regardless of bounds.
        let r = feasible(
            &[dom(-100, 100), dom(-100, 100)],
            &[LinearEq {
                coeffs: vec![2, 4],
                rhs: 5,
            }],
            &[],
            10,
        );
        assert_eq!(r, Some(false));
    }

    #[test]
    fn classic_dependence_system() {
        // i - i' = 0, i < i' over 1..=10: infeasible (injective write).
        let r = feasible(
            &[dom(1, 10), dom(1, 10)],
            &[LinearEq {
                coeffs: vec![1, -1],
                rhs: 0,
            }],
            &[OrderConstraint {
                a: 0,
                b: 1,
                rel: OrderRel::Lt,
            }],
            100_000,
        );
        assert_eq!(r, Some(false));
        // i - i' = -2 with i < i': feasible (distance-2 dependence).
        let r = feasible(
            &[dom(1, 10), dom(1, 10)],
            &[LinearEq {
                coeffs: vec![1, -1],
                rhs: -2,
            }],
            &[OrderConstraint {
                a: 0,
                b: 1,
                rel: OrderRel::Lt,
            }],
            100_000,
        );
        assert_eq!(r, Some(true));
    }

    #[test]
    fn stepped_domain_respected() {
        // x even in 0..=10, x = 5: infeasible.
        let r = feasible(
            &[VarDomain::new(0, 10, 2)],
            &[LinearEq { coeffs: vec![1], rhs: 5 }],
            &[],
            1000,
        );
        assert_eq!(r, Some(false));
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let doms: Vec<_> = (0..6).map(|_| dom(0, 100)).collect();
        // Reachable rhs so the root is not pruned; the first recursive call
        // then blows the budget of 1 node.
        let r = feasible(
            &doms,
            &[LinearEq {
                coeffs: vec![1; 6],
                rhs: 300,
            }],
            &[],
            1,
        );
        assert_eq!(r, None);
    }

    #[test]
    fn banerjee_interval() {
        let doms = [dom(1, 10), dom(1, 10)];
        // x - y ranges over [-9, 9]; rhs 15 is outside.
        assert!(!banerjee_maybe(
            &doms,
            &LinearEq {
                coeffs: vec![1, -1],
                rhs: 15
            }
        ));
        assert!(banerjee_maybe(
            &doms,
            &LinearEq {
                coeffs: vec![1, -1],
                rhs: 5
            }
        ));
    }

    /// Brute-force oracle for the property test.
    fn brute(domains: &[VarDomain], eqs: &[LinearEq], orders: &[OrderConstraint]) -> bool {
        fn rec(
            domains: &[VarDomain],
            eqs: &[LinearEq],
            orders: &[OrderConstraint],
            acc: &mut Vec<i64>,
        ) -> bool {
            if acc.len() == domains.len() {
                let ok_eq = eqs.iter().all(|eq| {
                    eq.coeffs
                        .iter()
                        .zip(acc.iter())
                        .map(|(c, x)| c * x)
                        .sum::<i64>()
                        == eq.rhs
                });
                let ok_ord = orders.iter().all(|oc| oc.holds(acc[oc.a], acc[oc.b]));
                return ok_eq && ok_ord;
            }
            let d = domains[acc.len()];
            let mut v = d.lo;
            while v <= d.hi {
                acc.push(v);
                if rec(domains, eqs, orders, acc) {
                    acc.pop();
                    return true;
                }
                acc.pop();
                v += d.step;
            }
            false
        }
        rec(domains, eqs, orders, &mut Vec::new())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn enumerator_matches_brute_force(
            n in 2usize..4,
            seeds in prop::collection::vec((-4i64..5, -4i64..5, 1i64..3, -6i64..7), 4),
            rhs in -8i64..9,
            rel_pick in 0usize..4,
        ) {
            let domains: Vec<VarDomain> = (0..n)
                .map(|j| {
                    let (a, b, st, _) = seeds[j];
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    VarDomain::new(lo, hi, st)
                })
                .collect();
            let eq = LinearEq {
                coeffs: (0..n).map(|j| seeds[j].3).collect(),
                rhs,
            };
            let orders: Vec<OrderConstraint> = if rel_pick < 3 && n >= 2 {
                vec![OrderConstraint {
                    a: 0,
                    b: 1,
                    rel: [OrderRel::Lt, OrderRel::Eq, OrderRel::Gt][rel_pick],
                }]
            } else {
                vec![]
            };
            let got = feasible(&domains, std::slice::from_ref(&eq), &orders, 1_000_000);
            let want = brute(&domains, std::slice::from_ref(&eq), &orders);
            prop_assert_eq!(got, Some(want));
        }
    }
}
