//! Loop-interchange legality (paper §3.5, after Allen & Kennedy).
//!
//! When the *node loop* (the loop traversing the alltoall-partitioned last
//! dimension) is outermost, the transformation wants to interchange it
//! inward. Interchanging adjacent loops `(outer, inner)` is legal iff no
//! dependence has direction `(<, >)` at those positions — such a dependence
//! would be reversed by the swap.
//!
//! Scalars assigned inside the nest are checked for privatizability: a
//! scalar whose first textual access is a read (upward-exposed) carries a
//! value across iterations and conservatively blocks interchange.

use crate::dep_test::{common_loops, may_depend, CommonOrder, Rel, Verdict};
use crate::loopnest::{collect_accesses, Context};
use fir::ast::{Expr, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Why interchange was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterchangeBlock {
    /// A (possible) dependence with direction `(<, >)` on the two loops.
    ReversedDependence { array: String },
    /// A scalar carries a value into later iterations (not privatizable).
    ScalarCarried { name: String },
    /// The two loop variables are not both in a common nest of some pair.
    LoopsNotCommon { array: String },
}

impl std::fmt::Display for InterchangeBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterchangeBlock::ReversedDependence { array } => {
                write!(f, "dependence on `{array}` with direction (<, >)")
            }
            InterchangeBlock::ScalarCarried { name } => {
                write!(f, "scalar `{name}` is not privatizable")
            }
            InterchangeBlock::LoopsNotCommon { array } => {
                write!(f, "accesses to `{array}` do not share both loops")
            }
        }
    }
}

/// Decide whether loops `outer_var` / `inner_var` (adjacent in the nest,
/// outer first) can be interchanged. `arrays` lists every array accessed in
/// the nest body (the caller knows the declarations); `body` is the outer
/// loop's body.
pub fn interchange_legal(
    body: &[Stmt],
    arrays: &[String],
    outer_var: &str,
    inner_var: &str,
    ctx: &Context,
) -> Result<(), Vec<InterchangeBlock>> {
    let mut blocks = Vec::new();

    // Scalar privatizability.
    for name in carried_scalars(body, arrays, &[outer_var, inner_var]) {
        blocks.push(InterchangeBlock::ScalarCarried { name });
    }

    // Array dependences with direction (<, >).
    for array in arrays {
        let refs = collect_accesses(body, array);
        for r1 in &refs {
            for r2 in &refs {
                if !r1.is_write && !r2.is_write {
                    continue; // read-read pairs never constrain
                }
                // Both refs must be under both loops for the direction to
                // make sense; accesses outside either loop can't carry a
                // (<, >) dependence between them.
                let (Some(_), Some(_)) = (r1.loop_index(outer_var), r1.loop_index(inner_var))
                else {
                    continue;
                };
                let common = common_loops(r1, r2);
                let Some(ko) = common.iter().position(|l| l.var == outer_var) else {
                    if r2.loop_index(outer_var).is_some() {
                        blocks.push(InterchangeBlock::LoopsNotCommon {
                            array: array.clone(),
                        });
                    }
                    continue;
                };
                let Some(ki) = common.iter().position(|l| l.var == inner_var) else {
                    continue;
                };
                // Equal on loops outside `outer`, `<` on outer, `>` on inner.
                let mut orders: Vec<CommonOrder> = (0..ko)
                    .map(|j| CommonOrder {
                        common_idx: j,
                        rel: Rel::Eq,
                    })
                    .collect();
                orders.push(CommonOrder {
                    common_idx: ko,
                    rel: Rel::Lt,
                });
                orders.push(CommonOrder {
                    common_idx: ki,
                    rel: Rel::Gt,
                });
                if may_depend(r1, r2, ctx, &orders) == Verdict::MayDepend {
                    blocks.push(InterchangeBlock::ReversedDependence {
                        array: array.clone(),
                    });
                }
            }
        }
    }

    blocks.sort_by_key(|b| format!("{b:?}"));
    blocks.dedup();
    if blocks.is_empty() {
        Ok(())
    } else {
        Err(blocks)
    }
}

/// Scalars written somewhere in `body` whose *first* textual access is a
/// read — upward-exposed, hence possibly carrying values across iterations.
fn carried_scalars(body: &[Stmt], arrays: &[String], loop_vars: &[&str]) -> Vec<String> {
    #[derive(Default)]
    struct Acc {
        first_access_is_read: BTreeMap<String, bool>,
        written: BTreeSet<String>,
    }
    fn expr(e: &Expr, acc: &mut Acc, skip: &dyn Fn(&str) -> bool) {
        match e {
            Expr::Var(n, _) => {
                if !skip(n) {
                    acc.first_access_is_read
                        .entry(n.clone())
                        .or_insert(true);
                }
            }
            Expr::ArrayRef { indices, .. } => {
                for i in indices {
                    expr(i, acc, skip);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    expr(a, acc, skip);
                }
            }
            Expr::Unary { operand, .. } => expr(operand, acc, skip),
            Expr::Binary { lhs, rhs, .. } => {
                expr(lhs, acc, skip);
                expr(rhs, acc, skip);
            }
            Expr::IntLit(..) | Expr::RealLit(..) => {}
        }
    }
    fn stmt(s: &Stmt, acc: &mut Acc, skip: &dyn Fn(&str) -> bool) {
        match s {
            Stmt::Assign { target, value, .. } => {
                for ix in &target.indices {
                    expr(ix, acc, skip);
                }
                expr(value, acc, skip);
                if target.indices.is_empty() && !skip(&target.name) {
                    acc.first_access_is_read
                        .entry(target.name.clone())
                        .or_insert(false);
                    acc.written.insert(target.name.clone());
                }
            }
            Stmt::Do {
                var,
                lower,
                upper,
                step,
                body,
                ..
            } => {
                expr(lower, acc, skip);
                expr(upper, acc, skip);
                if let Some(st) = step {
                    expr(st, acc, skip);
                }
                // The loop's own variable is private by construction.
                let var = var.clone();
                let inner_skip = move |n: &str|

 n == var;
                for s in body {
                    stmt(s, acc, &|n| skip(n) || inner_skip(n));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                expr(cond, acc, skip);
                for s in then_body.iter().chain(else_body) {
                    stmt(s, acc, skip);
                }
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    match a {
                        fir::ast::Arg::Expr(e) => expr(e, acc, skip),
                        fir::ast::Arg::Section(sec) => {
                            for d in &sec.dims {
                                match d {
                                    fir::ast::SecDim::Index(e) => expr(e, acc, skip),
                                    fir::ast::SecDim::Range(lo, hi) => {
                                        for e in [lo, hi].into_iter().flatten() {
                                            expr(e, acc, skip);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let mut acc = Acc::default();
    let skip = |n: &str| {
        arrays.iter().any(|a| a == n)
            || loop_vars.contains(&n)
            || fir::intrinsics::is_predefined_scalar(n)
    };
    for s in body {
        stmt(s, &mut acc, &skip);
    }
    acc.written
        .into_iter()
        .filter(|n| acc.first_access_is_read.get(n).copied().unwrap_or(false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::parse_stmts;

    fn ctx() -> Context {
        Context::new().with("nx", 16).with("ny", 16)
    }

    fn arrays(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn independent_writes_interchangeable() {
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix, iy) = ix + iy\n  end do\nend do",
        )
        .unwrap();
        assert!(interchange_legal(&body, &arrays(&["as"]), "iy", "ix", &ctx()).is_ok());
    }

    #[test]
    fn classic_anti_diagonal_dependence_blocks() {
        // a(ix, iy) = a(ix - 1, iy + 1): dependence with direction (<, >)
        // on (iy, ix)?  Source (iy, ix) writes (ix, iy); sink reads
        // (ix-1, iy+1) — i.e. iteration (iy', ix') reads the value written
        // at (iy = iy' + 1, ix = ix' - 1): direction (<, >) from writer to
        // reader exists on (iy, ix) ordering... verify the analysis flags it.
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    a(ix, iy) = a(ix - 1, iy + 1)\n  end do\nend do",
        )
        .unwrap();
        let r = interchange_legal(&body, &arrays(&["a"]), "iy", "ix", &ctx());
        assert!(r.is_err());
        assert!(matches!(
            r.unwrap_err()[0],
            InterchangeBlock::ReversedDependence { .. }
        ));
    }

    #[test]
    fn forward_only_dependence_allows_interchange() {
        // a(ix, iy) = a(ix - 1, iy - 1): direction (<, <) — interchange OK.
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    a(ix, iy) = a(ix - 1, iy - 1)\n  end do\nend do",
        )
        .unwrap();
        assert!(interchange_legal(&body, &arrays(&["a"]), "iy", "ix", &ctx()).is_ok());
    }

    #[test]
    fn private_scalar_ok() {
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    t = ix * iy\n    a(ix, iy) = t\n  end do\nend do",
        )
        .unwrap();
        assert!(interchange_legal(&body, &arrays(&["a"]), "iy", "ix", &ctx()).is_ok());
    }

    #[test]
    fn carried_scalar_blocks() {
        // `acc` read before written: carried across iterations.
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    acc = acc + 1\n    a(ix, iy) = acc\n  end do\nend do",
        )
        .unwrap();
        let r = interchange_legal(&body, &arrays(&["a"]), "iy", "ix", &ctx());
        assert!(r.is_err());
        assert!(r
            .unwrap_err()
            .iter()
            .any(|b| matches!(b, InterchangeBlock::ScalarCarried { name } if name == "acc")));
    }

    #[test]
    fn loop_variable_not_flagged_as_scalar() {
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    do iz = 1, 4\n      a(ix, iy) = iz\n    end do\n  end do\nend do",
        )
        .unwrap();
        assert!(interchange_legal(&body, &arrays(&["a"]), "iy", "ix", &ctx()).is_ok());
    }

    #[test]
    fn read_only_arrays_do_not_block() {
        let body = parse_stmts(
            "do iy = 1, ny\n  do ix = 1, nx\n    a(ix, iy) = c(ix + 1, iy - 1) + c(ix, iy)\n  end do\nend do",
        )
        .unwrap();
        assert!(
            interchange_legal(&body, &arrays(&["a", "c"]), "iy", "ix", &ctx()).is_ok()
        );
    }
}
