//! # depan — data-dependence and array-access analysis
//!
//! The reproduction's stand-in for the paper's analysis toolchain: *Petit*
//! and the *Omega test* (Pugh) used through the Nestor framework, plus the
//! access-region analysis of Paek, Hoeflinger & Padua (*partial triplets*).
//!
//! Layers, bottom-up:
//!
//! - [`affine`]: lowering subscript expressions to `Σ cᵥ·v + k`;
//! - [`loopnest`]: collecting array references with their enclosing loop
//!   stacks, and evaluating bounds under a numeric test [`loopnest::Context`];
//! - [`exact`]: exact integer feasibility of small linear systems by
//!   pruned enumeration (the Omega-test substitute — exact within a node
//!   budget, validated against brute force by property tests);
//! - [`dep_test`]: the ZIV / GCD / Banerjee / exact decision cascade over
//!   pairs of references with iteration-order constraints;
//! - [`output_dep`]: tile-safety (no output dependence carried by the tiled
//!   loop — the paper's *safe reference* `Afs` check, §3.3);
//! - [`region`]: per-tile footprints as partial triplets (§3.3) feeding the
//!   generated `mpi_isend` sections;
//! - [`interchange`]: legality of the node-loop interchange (§3.5).
//!
//! Everything here is *sound for the transformation*: any imprecision
//! (non-affine subscripts, symbolic differences, exhausted budgets) surfaces
//! as [`dep_test::Verdict::MayDepend`], which makes the Compuniformer
//! decline rather than miscompile.

pub mod affine;
pub mod dep_test;
pub mod exact;
pub mod interchange;
pub mod loopnest;
pub mod output_dep;
pub mod region;

pub use affine::Affine;
pub use dep_test::{may_depend, CommonOrder, Rel, Verdict};
pub use loopnest::{collect_accesses, AccessRef, Context, LoopInfo};
pub use output_dep::{check_tile_safety, SafetyReport, Unsafety};
pub use region::{tile_footprint, DimTriplet, RegionError};
