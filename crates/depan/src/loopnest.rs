//! Loop-nest extraction and array-access collection.
//!
//! Walks a statement tree and records, for every reference to a given array,
//! the enclosing loop stack (outermost first), the subscripts in raw and
//! affine form, whether the access sits under a conditional, and its
//! pre-order position (used to decide lexical "earlier/later").

use crate::affine::{from_expr, Affine};
use fir::ast::{Expr, Stmt};
use fir::Span;
use std::collections::HashMap;

/// One enclosing loop of an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    pub var: String,
    /// Affine lower/upper bound; `None` if the bound expression is
    /// non-affine (analyses become conservative).
    pub lower: Option<Affine>,
    pub upper: Option<Affine>,
    /// Literal step; `None` when symbolic (conservative), default 1.
    pub step: Option<i64>,
}

impl LoopInfo {
    fn from_do(var: &str, lower: &Expr, upper: &Expr, step: &Option<Expr>) -> Self {
        LoopInfo {
            var: var.to_string(),
            lower: from_expr(lower),
            upper: from_expr(upper),
            step: match step {
                None => Some(1),
                Some(e) => e.as_int(),
            },
        }
    }
}

/// A single textual array reference with its analysis context.
#[derive(Debug, Clone)]
pub struct AccessRef {
    pub array: String,
    pub subscripts: Vec<Expr>,
    /// Affine lowering of each subscript; `None` per-dim when non-affine.
    pub affine: Vec<Option<Affine>>,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopInfo>,
    /// True when any enclosing statement is an `if` branch.
    pub in_conditional: bool,
    /// Pre-order statement index (monotone over the walk).
    pub order: usize,
    pub is_write: bool,
    pub span: Span,
}

impl AccessRef {
    pub fn rank(&self) -> usize {
        self.subscripts.len()
    }

    /// All subscripts affine?
    pub fn fully_affine(&self) -> bool {
        self.affine.iter().all(Option::is_some)
    }

    /// Index of the enclosing loop named `var`, if any (0 = outermost).
    pub fn loop_index(&self, var: &str) -> Option<usize> {
        self.loops.iter().position(|l| l.var == var)
    }
}

/// Collect every read and write of `array` under `stmts`.
///
/// Writes are assignment targets. Reads are `Expr::ArrayRef`s anywhere,
/// including inside subscripts of other arrays. Passing the array (bare name
/// or section) to a `call` is recorded as *both* a read and a write with
/// empty subscripts — by-reference semantics make the callee's behaviour
/// unknown at this level; callers needing precision resolve the callee
/// first (see the Compuniformer's mutation oracle).
pub fn collect_accesses(stmts: &[Stmt], array: &str) -> Vec<AccessRef> {
    let mut w = Walker {
        array,
        out: Vec::new(),
        loops: Vec::new(),
        cond_depth: 0,
        order: 0,
    };
    w.stmts(stmts);
    w.out
}

struct Walker<'a> {
    array: &'a str,
    out: Vec<AccessRef>,
    loops: Vec<LoopInfo>,
    cond_depth: usize,
    order: usize,
}

impl Walker<'_> {
    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn record(&mut self, subscripts: &[Expr], is_write: bool, span: Span) {
        let affine = subscripts.iter().map(from_expr).collect();
        self.out.push(AccessRef {
            array: self.array.to_string(),
            subscripts: subscripts.to_vec(),
            affine,
            loops: self.loops.clone(),
            in_conditional: self.cond_depth > 0,
            order: self.order,
            is_write,
            span,
        });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::ArrayRef {
                name,
                indices,
                span,
            } => {
                if name == self.array {
                    self.record(indices, false, *span);
                }
                for i in indices {
                    self.expr(i);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { operand, .. } => self.expr(operand),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::IntLit(..) | Expr::RealLit(..) | Expr::Var(..) => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.order += 1;
        match s {
            Stmt::Assign { target, value, .. } => {
                if target.name == self.array {
                    self.record(&target.indices, true, target.span);
                }
                for ix in &target.indices {
                    self.expr(ix);
                }
                self.expr(value);
            }
            Stmt::Do {
                var,
                lower,
                upper,
                step,
                body,
                ..
            } => {
                self.expr(lower);
                self.expr(upper);
                if let Some(st) = step {
                    self.expr(st);
                }
                self.loops.push(LoopInfo::from_do(var, lower, upper, step));
                self.stmts(body);
                self.loops.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr(cond);
                self.cond_depth += 1;
                self.stmts(then_body);
                self.stmts(else_body);
                self.cond_depth -= 1;
            }
            Stmt::Call { name: _, args, span } => {
                for a in args {
                    match a {
                        fir::ast::Arg::Expr(e) => {
                            if let Expr::Var(n, sp) = e {
                                if n == self.array {
                                    // whole-array by-reference pass
                                    self.record(&[], true, *sp);
                                    self.record(&[], false, *sp);
                                    continue;
                                }
                            }
                            self.expr(e);
                        }
                        fir::ast::Arg::Section(sec) => {
                            if sec.name == self.array {
                                self.record(&[], true, *span);
                                self.record(&[], false, *span);
                            }
                            for d in &sec.dims {
                                match d {
                                    fir::ast::SecDim::Index(e) => self.expr(e),
                                    fir::ast::SecDim::Range(lo, hi) => {
                                        for e in [lo, hi].into_iter().flatten() {
                                            self.expr(e);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Loop-invariant symbol values used to make bounds numeric for the exact
/// dependence test (the "test context" of DESIGN.md §2: the semi-automatic
/// system knows or assumes problem sizes at transformation time).
#[derive(Debug, Clone, Default)]
pub struct Context {
    values: HashMap<String, i64>,
}

impl Context {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, name: &str, v: i64) -> Self {
        self.values.insert(name.to_string(), v);
        self
    }

    pub fn set(&mut self, name: &str, v: i64) {
        self.values.insert(name.to_string(), v);
    }

    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    pub fn eval(&self, a: &Affine) -> Option<i64> {
        a.eval(&|v| self.get(v))
    }

    /// All (name, value) pairs, sorted by name — a deterministic view for
    /// consumers that re-seed other analyses (e.g. the communication
    /// verifier) from this context.
    pub fn pairs(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self.values.iter().map(|(k, &x)| (k.clone(), x)).collect();
        v.sort();
        v
    }
}

/// Numeric iteration domain of one loop: `lo..=hi` stepping `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericLoop {
    pub lo: i64,
    pub hi: i64,
    pub step: i64,
}

impl NumericLoop {
    pub fn trip_count(&self) -> i64 {
        if self.step > 0 {
            if self.hi < self.lo {
                0
            } else {
                (self.hi - self.lo) / self.step + 1
            }
        } else if self.lo < self.hi {
            0
        } else {
            (self.lo - self.hi) / (-self.step) + 1
        }
    }
}

/// Evaluate loop bounds under `ctx`. `None` if any bound or step is
/// symbolic/non-affine — callers then fall back to conservative verdicts.
pub fn numeric_bounds(loops: &[LoopInfo], ctx: &Context) -> Option<Vec<NumericLoop>> {
    loops
        .iter()
        .map(|l| {
            let lo = ctx.eval(l.lower.as_ref()?)?;
            let hi = ctx.eval(l.upper.as_ref()?)?;
            let step = l.step?;
            if step == 0 {
                return None;
            }
            Some(NumericLoop { lo, hi, step })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::parse_stmts;

    #[test]
    fn collects_write_with_loop_stack() {
        let stmts =
            parse_stmts("do iy = 1, ny\n  do ix = 1, nx\n    as(ix) = ix * iy\n  end do\nend do")
                .unwrap();
        let refs = collect_accesses(&stmts, "as");
        assert_eq!(refs.len(), 1);
        let r = &refs[0];
        assert!(r.is_write);
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.loops[0].var, "iy");
        assert_eq!(r.loops[1].var, "ix");
        assert!(r.fully_affine());
        assert_eq!(r.loop_index("ix"), Some(1));
    }

    #[test]
    fn collects_reads_including_subscript_reads() {
        let stmts = parse_stmts("b(as(i)) = as(j) + 1").unwrap();
        let refs = collect_accesses(&stmts, "as");
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().all(|r| !r.is_write));
    }

    #[test]
    fn conditional_flag() {
        let stmts =
            parse_stmts("if (i > 0) then\n  as(i) = 1\nend if\nas(j) = 2").unwrap();
        let refs = collect_accesses(&stmts, "as");
        assert_eq!(refs.len(), 2);
        assert!(refs[0].in_conditional);
        assert!(!refs[1].in_conditional);
        assert!(refs[0].order < refs[1].order);
    }

    #[test]
    fn call_args_record_read_write() {
        let stmts = parse_stmts("call p(x, at)\ncall q(at(1:4))").unwrap();
        let refs = collect_accesses(&stmts, "at");
        // Two calls, each records one write + one read.
        assert_eq!(refs.len(), 4);
        assert_eq!(refs.iter().filter(|r| r.is_write).count(), 2);
        assert!(refs.iter().all(|r| r.subscripts.is_empty()));
    }

    #[test]
    fn non_affine_subscript_detected() {
        let stmts = parse_stmts("do i = 1, n\n  as(mod(i, 4)) = 0\nend do").unwrap();
        let refs = collect_accesses(&stmts, "as");
        assert!(!refs[0].fully_affine());
    }

    #[test]
    fn symbolic_step_is_none() {
        let stmts = parse_stmts("do i = 1, n, k\n  as(i) = 0\nend do").unwrap();
        let refs = collect_accesses(&stmts, "as");
        assert_eq!(refs[0].loops[0].step, None);
    }

    #[test]
    fn numeric_bounds_under_context() {
        let stmts =
            parse_stmts("do iy = 1, ny\n  do ix = 0, nx - 1, 2\n    as(ix) = 0\n  end do\nend do")
                .unwrap();
        let refs = collect_accesses(&stmts, "as");
        let ctx = Context::new().with("nx", 10).with("ny", 3);
        let nb = numeric_bounds(&refs[0].loops, &ctx).unwrap();
        assert_eq!(nb[0], NumericLoop { lo: 1, hi: 3, step: 1 });
        assert_eq!(nb[1], NumericLoop { lo: 0, hi: 9, step: 2 });
        assert_eq!(nb[1].trip_count(), 5);
    }

    #[test]
    fn numeric_bounds_fails_without_context() {
        let stmts = parse_stmts("do ix = 1, nx\n  as(ix) = 0\nend do").unwrap();
        let refs = collect_accesses(&stmts, "as");
        assert!(numeric_bounds(&refs[0].loops, &Context::new()).is_none());
    }

    #[test]
    fn trip_counts() {
        assert_eq!(NumericLoop { lo: 1, hi: 10, step: 1 }.trip_count(), 10);
        assert_eq!(NumericLoop { lo: 1, hi: 10, step: 3 }.trip_count(), 4);
        assert_eq!(NumericLoop { lo: 10, hi: 1, step: 1 }.trip_count(), 0);
        assert_eq!(NumericLoop { lo: 10, hi: 1, step: -2 }.trip_count(), 5);
    }
}
