//! Output-dependence analysis for the pre-push transformation (paper §3.3).
//!
//! The transformation tiles a loop `t` and ships, at the end of each tile,
//! the array region written during that tile. This is only sound when no
//! element written in tile `T` is written again in a tile `> T` — i.e. when
//! there is **no output dependence carried by the tiled loop**. A reference
//! with no such dependence is the paper's *safe* reference `Afs`.

use crate::dep_test::{may_depend, CommonOrder, Rel, Verdict};
use crate::loopnest::{collect_accesses, AccessRef, Context};
use fir::ast::Stmt;

/// Why a safety check failed, for the semi-automatic report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsafety {
    /// The array is passed by reference to a call; writes are opaque here.
    OpaqueCallWrite { span: fir::Span },
    /// A write is not enclosed by the tiled loop at all.
    WriteOutsideTiledLoop { span: fir::Span },
    /// The tiled loop is not in the common nest of a pair of writes.
    TiledLoopNotCommon { span: fir::Span },
    /// A (possible) output dependence carried by the tiled loop.
    CarriedOverwrite { earlier: fir::Span, later: fir::Span },
}

impl std::fmt::Display for Unsafety {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsafety::OpaqueCallWrite { .. } => {
                write!(f, "array is passed by reference to a call inside the loop")
            }
            Unsafety::WriteOutsideTiledLoop { .. } => {
                write!(f, "a write to the array is not inside the tiled loop")
            }
            Unsafety::TiledLoopNotCommon { .. } => {
                write!(f, "two writes do not share the tiled loop in a common nest")
            }
            Unsafety::CarriedOverwrite { .. } => {
                write!(f, "an element may be overwritten in a later tile")
            }
        }
    }
}

/// Result of [`check_tile_safety`].
#[derive(Debug, Clone)]
pub struct SafetyReport {
    pub verdict: Verdict,
    pub problems: Vec<Unsafety>,
    /// Number of textual write references examined.
    pub writes_checked: usize,
}

impl SafetyReport {
    pub fn is_safe(&self) -> bool {
        self.verdict.is_independent()
    }
}

/// Check that every element of `array` written under `stmts` is *final*
/// with respect to the loop `tiled_var`: no instance of any write in a later
/// iteration of `tiled_var` stores to the same element.
///
/// Rewrites *within* one iteration of the tiled loop are permitted — the
/// tile only ships data after its last statement, so intra-tile overwrites
/// are already ordered before the send.
pub fn check_tile_safety(
    stmts: &[Stmt],
    array: &str,
    tiled_var: &str,
    ctx: &Context,
) -> SafetyReport {
    let refs = collect_accesses(stmts, array);
    let writes: Vec<&AccessRef> = refs.iter().filter(|r| r.is_write).collect();
    let mut problems = Vec::new();

    for w in &writes {
        if w.subscripts.is_empty() {
            problems.push(Unsafety::OpaqueCallWrite { span: w.span });
        } else if w.loop_index(tiled_var).is_none() {
            problems.push(Unsafety::WriteOutsideTiledLoop { span: w.span });
        }
    }

    if problems.is_empty() {
        'pairs: for w1 in &writes {
            for w2 in &writes {
                let common = crate::dep_test::common_loops(w1, w2);
                let Some(k) = common.iter().position(|l| l.var == tiled_var) else {
                    problems.push(Unsafety::TiledLoopNotCommon { span: w2.span });
                    break 'pairs;
                };
                let v = may_depend(
                    w1,
                    w2,
                    ctx,
                    &[CommonOrder {
                        common_idx: k,
                        rel: Rel::Lt,
                    }],
                );
                if v == Verdict::MayDepend {
                    problems.push(Unsafety::CarriedOverwrite {
                        earlier: w1.span,
                        later: w2.span,
                    });
                }
            }
        }
    }

    SafetyReport {
        verdict: if problems.is_empty() {
            Verdict::Independent
        } else {
            Verdict::MayDepend
        },
        problems,
        writes_checked: writes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::parse_stmts;

    fn ctx() -> Context {
        Context::new().with("nx", 64).with("ny", 8)
    }

    fn check(src: &str, tiled: &str) -> SafetyReport {
        check_tile_safety(&parse_stmts(src).unwrap(), "as", tiled, &ctx())
    }

    #[test]
    fn fig2_direct_kernel_is_safe() {
        let r = check("do ix = 1, nx\n  as(ix) = ix * 2\nend do", "ix");
        assert!(r.is_safe());
        assert_eq!(r.writes_checked, 1);
    }

    #[test]
    fn intra_tile_double_write_is_safe() {
        // as(ix) written twice in the SAME iteration: final value wins
        // before the tile ships — safe.
        let r = check("do ix = 1, nx\n  as(ix) = 0\n  as(ix) = ix\nend do", "ix");
        assert!(r.is_safe());
        assert_eq!(r.writes_checked, 2);
    }

    #[test]
    fn accumulator_pattern_unsafe() {
        // as(1) updated every iteration: each tile's value is overwritten
        // by later tiles.
        let r = check("do ix = 1, nx\n  as(1) = as(1) + ix\nend do", "ix");
        assert!(!r.is_safe());
        assert!(matches!(
            r.problems[0],
            Unsafety::CarriedOverwrite { .. }
        ));
    }

    #[test]
    fn overwrite_across_outer_loop_safe_for_inner_tiling() {
        // Tiling over ix: as(ix) rewritten for each iy, but iy is OUTER —
        // per fixed iy, ix writes are injective. Safe w.r.t. ix.
        let r = check(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix) = ix * iy\n  end do\nend do",
            "ix",
        );
        assert!(r.is_safe());
        // ...but tiling over iy is NOT safe: later iy overwrites all of as.
        let r = check(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix) = ix * iy\n  end do\nend do",
            "iy",
        );
        assert!(!r.is_safe());
    }

    #[test]
    fn write_outside_tiled_loop_flagged() {
        let r = check("as(1) = 0\ndo ix = 1, nx\n  as(ix) = 1\nend do", "ix");
        assert!(!r.is_safe());
        assert!(matches!(
            r.problems[0],
            Unsafety::WriteOutsideTiledLoop { .. }
        ));
    }

    #[test]
    fn call_write_flagged_as_opaque() {
        let r = check("do ix = 1, nx\n  call p(as)\nend do", "ix");
        assert!(!r.is_safe());
        assert!(matches!(r.problems[0], Unsafety::OpaqueCallWrite { .. }));
    }

    #[test]
    fn skewed_but_injective_write_safe() {
        let r = check("do ix = 1, nx\n  as(nx - ix + 1) = ix\nend do", "ix");
        assert!(r.is_safe());
    }

    #[test]
    fn two_interleaved_writes_disjoint_by_parity() {
        let r = check(
            "do ix = 1, nx\n  as(2 * ix) = 0\n  as(2 * ix - 1) = 1\nend do",
            "ix",
        );
        assert!(r.is_safe());
        assert_eq!(r.writes_checked, 2);
    }

    #[test]
    fn two_writes_colliding_across_tiles() {
        // as(ix) and as(ix+1): iteration ix writes slot ix+1, iteration
        // ix+1 overwrites slot ix+1 — carried overwrite.
        let r = check(
            "do ix = 1, nx\n  as(ix) = 0\n  as(ix + 1) = 1\nend do",
            "ix",
        );
        assert!(!r.is_safe());
    }

    #[test]
    fn non_affine_write_conservative() {
        let r = check("do ix = 1, nx\n  as(mod(ix, 8) + 1) = 0\nend do", "ix");
        assert!(!r.is_safe());
    }
}
