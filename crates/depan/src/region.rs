//! Array access-region analysis with *partial triplets* (paper §3.3,
//! after Paek/Hoeflinger/Padua's access-region work).
//!
//! For a write reference inside the loop being tiled, computes the symbolic
//! per-dimension bounds `[l(i_k), u(i_k)]` of the region touched while the
//! tiled variable sweeps a tile `[t_lo, t_hi]`, with every loop *inside* the
//! tile loop swept over its full range. The Compuniformer turns these
//! triplets into the array sections passed to `mpi_isend`.

use crate::affine::Affine;
use crate::loopnest::AccessRef;
use fir::ast::Expr;
use fir::builder as b;

/// Convert an affine form back into an expression tree (for codegen).
pub fn affine_to_expr(a: &Affine) -> Expr {
    let mut acc = b::int(a.constant);
    let mut first = a.constant == 0;
    for (v, c) in a.vars() {
        let term = b::mul(b::int(c), b::var(v));
        if first {
            acc = term;
            first = false;
        } else {
            acc = b::add(acc, term);
        }
    }
    acc
}

/// Symbolic bounds of one dimension of a tile footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimTriplet {
    pub lower: Expr,
    pub upper: Expr,
    /// Does this dimension's subscript involve the tiled variable?
    pub tracks_tile: bool,
    /// Is this dimension constant within the whole tile (lower == upper)?
    pub fixed: bool,
}

/// Why footprint computation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    NonAffineSubscript { dim: usize },
    TiledVarNotEnclosing,
    InnerLoopBoundNotAffine { var: String },
    SymbolicInnerStep { var: String },
    /// An inner loop's variable appears with the tiled variable in the same
    /// subscript — bounds would not be separable monotone forms.
    MixedDimension { dim: usize },
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::NonAffineSubscript { dim } => {
                write!(f, "subscript of dimension {} is not affine", dim + 1)
            }
            RegionError::TiledVarNotEnclosing => {
                write!(f, "the tiled loop does not enclose this reference")
            }
            RegionError::InnerLoopBoundNotAffine { var } => {
                write!(f, "bounds of inner loop `{var}` are not affine")
            }
            RegionError::SymbolicInnerStep { var } => {
                write!(f, "inner loop `{var}` has a symbolic step")
            }
            RegionError::MixedDimension { dim } => write!(
                f,
                "dimension {} mixes the tiled variable with an inner loop variable",
                dim + 1
            ),
        }
    }
}

/// Compute the tile footprint of `r` when `tile_var` ranges over
/// `[tile_lo, tile_hi]` (inclusive expressions) and all loops nested inside
/// `tile_var` sweep their full declared ranges.
///
/// Per dimension the subscript must be affine and *separable*: it may
/// depend on the tiled variable, or on inner-loop variables, but not both
/// at once (the monotone substitution would otherwise be wrong for e.g.
/// `as(ix - iz)`).
pub fn tile_footprint(
    r: &AccessRef,
    tile_var: &str,
    tile_lo: &Expr,
    tile_hi: &Expr,
) -> Result<Vec<DimTriplet>, RegionError> {
    let tile_pos = r
        .loop_index(tile_var)
        .ok_or(RegionError::TiledVarNotEnclosing)?;
    let inner: Vec<_> = r.loops[tile_pos + 1..].to_vec();

    let mut out = Vec::with_capacity(r.rank());
    for (d, aff) in r.affine.iter().enumerate() {
        let aff = aff
            .as_ref()
            .ok_or(RegionError::NonAffineSubscript { dim: d })?;
        let c_tile = aff.coeff(tile_var);
        let inner_vars: Vec<&str> = inner
            .iter()
            .map(|l| l.var.as_str())
            .filter(|v| aff.coeff(v) != 0)
            .collect();
        if c_tile != 0 && !inner_vars.is_empty() {
            return Err(RegionError::MixedDimension { dim: d });
        }

        // Start from the subscript with index vars removed (symbols + const
        // stay as the base expression), then add monotone bound terms.
        let mut base = aff.clone();
        base = base.substitute(tile_var, 0).expect("checked overflow");
        for l in &inner {
            base = base.substitute(&l.var, 0).expect("checked overflow");
        }
        let base_expr = affine_to_expr(&base);

        let mut lower = base_expr.clone();
        let mut upper = base_expr;

        if c_tile != 0 {
            let scaled_lo = b::mul(b::int(c_tile), tile_lo.clone());
            let scaled_hi = b::mul(b::int(c_tile), tile_hi.clone());
            if c_tile > 0 {
                lower = b::add(lower, scaled_lo);
                upper = b::add(upper, scaled_hi);
            } else {
                lower = b::add(lower, scaled_hi);
                upper = b::add(upper, scaled_lo);
            }
        }

        for l in &inner {
            let c = aff.coeff(&l.var);
            if c == 0 {
                continue;
            }
            if l.step.is_none() {
                return Err(RegionError::SymbolicInnerStep {
                    var: l.var.clone(),
                });
            }
            let lo_aff = l
                .lower
                .as_ref()
                .ok_or_else(|| RegionError::InnerLoopBoundNotAffine {
                    var: l.var.clone(),
                })?;
            let hi_aff = l
                .upper
                .as_ref()
                .ok_or_else(|| RegionError::InnerLoopBoundNotAffine {
                    var: l.var.clone(),
                })?;
            // A negative step visits [hi', lo] downward; the touched value
            // set is still within [lo, hi] so using declared bounds is
            // sound (may over-approximate the last partial stride).
            let lo_e = b::mul(b::int(c), affine_to_expr(lo_aff));
            let hi_e = b::mul(b::int(c), affine_to_expr(hi_aff));
            if c > 0 {
                lower = b::add(lower, lo_e);
                upper = b::add(upper, hi_e);
            } else {
                lower = b::add(lower, hi_e);
                upper = b::add(upper, lo_e);
            }
        }

        let fixed = c_tile == 0 && inner_vars.is_empty();
        out.push(DimTriplet {
            lower,
            upper,
            tracks_tile: c_tile != 0,
            fixed,
        });
    }
    Ok(out)
}

/// Is the footprint a single contiguous block in column-major order?
/// True iff there is a split dimension `p` such that every dimension `< p`
/// covers the full declared extent, and every dimension `> p` is fixed.
///
/// `full_extent(d)` must answer whether triplet `d` spans the declared
/// bounds of dimension `d` (the caller owns the declarations).
pub fn is_contiguous(
    triplets: &[DimTriplet],
    full_extent: &dyn Fn(usize) -> bool,
) -> bool {
    // Find the last non-fixed dimension.
    let p = match triplets.iter().rposition(|t| !t.fixed) {
        None => return true, // single element
        Some(p) => p,
    };
    (0..p).all(full_extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::collect_accesses;
    use fir::builder as b;
    use fir::{parse_stmts, unparse_expr};

    fn write_ref(src: &str, array: &str) -> AccessRef {
        collect_accesses(&parse_stmts(src).unwrap(), array)
            .into_iter()
            .find(|r| r.is_write)
            .unwrap()
    }

    #[test]
    fn one_dim_direct_footprint() {
        // as(ix), tile [t0, t0 + k - 1]: triplet [t0, t0 + k - 1].
        let r = write_ref("do ix = 1, nx\n  as(ix) = 0\nend do", "as");
        let lo = b::var("t0");
        let hi = b::sub(b::add(b::var("t0"), b::var("k")), b::int(1));
        let fp = tile_footprint(&r, "ix", &lo, &hi).unwrap();
        assert_eq!(fp.len(), 1);
        assert_eq!(unparse_expr(&fp[0].lower), "t0");
        assert_eq!(unparse_expr(&fp[0].upper), "t0 + k - 1");
        assert!(fp[0].tracks_tile);
        assert!(!fp[0].fixed);
    }

    #[test]
    fn scaled_subscript_footprint() {
        // as(2*ix + 3): [2*lo + 3, 2*hi + 3].
        let r = write_ref("do ix = 1, nx\n  as(2 * ix + 3) = 0\nend do", "as");
        let fp = tile_footprint(&r, "ix", &b::var("a"), &b::var("b")).unwrap();
        assert_eq!(unparse_expr(&fp[0].lower), "3 + 2 * a");
        assert_eq!(unparse_expr(&fp[0].upper), "3 + 2 * b");
    }

    #[test]
    fn negative_coefficient_swaps_bounds() {
        // as(nx - ix + 1): decreasing in ix, so lower uses the tile's hi.
        let r = write_ref("do ix = 1, nx\n  as(nx - ix + 1) = 0\nend do", "as");
        let fp = tile_footprint(&r, "ix", &b::var("a"), &b::var("b")).unwrap();
        assert_eq!(unparse_expr(&fp[0].lower), "1 + nx + (-1) * b");
        assert_eq!(unparse_expr(&fp[0].upper), "1 + nx + (-1) * a");
    }

    #[test]
    fn multi_dim_with_outer_fixed() {
        // as(ix, iy): tiling over ix inside the iy loop — dim 2 fixed at iy.
        let r = write_ref(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix, iy) = 0\n  end do\nend do",
            "as",
        );
        let fp = tile_footprint(&r, "ix", &b::var("a"), &b::var("b")).unwrap();
        assert_eq!(unparse_expr(&fp[0].lower), "a");
        assert_eq!(unparse_expr(&fp[0].upper), "b");
        assert!(fp[1].fixed);
        assert_eq!(unparse_expr(&fp[1].lower), "iy");
        assert_eq!(unparse_expr(&fp[1].upper), "iy");
    }

    #[test]
    fn inner_loop_swept_full_range() {
        // Tiling the OUTER loop iy of as(ix, iy): dim 1 sweeps 1..nx fully.
        let r = write_ref(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix, iy) = 0\n  end do\nend do",
            "as",
        );
        let fp = tile_footprint(&r, "iy", &b::var("a"), &b::var("b")).unwrap();
        assert_eq!(unparse_expr(&fp[0].lower), "1");
        assert_eq!(unparse_expr(&fp[0].upper), "nx");
        assert!(!fp[0].tracks_tile);
        assert!(!fp[0].fixed);
        assert!(fp[1].tracks_tile);
    }

    #[test]
    fn mixed_dimension_rejected() {
        let r = write_ref(
            "do iy = 1, ny\n  do ix = 1, nx\n    as(ix + iy) = 0\n  end do\nend do",
            "as",
        );
        let err = tile_footprint(&r, "iy", &b::var("a"), &b::var("b")).unwrap_err();
        assert_eq!(err, RegionError::MixedDimension { dim: 0 });
    }

    #[test]
    fn non_affine_rejected() {
        let r = write_ref("do ix = 1, nx\n  as(mod(ix, 4)) = 0\nend do", "as");
        let err = tile_footprint(&r, "ix", &b::var("a"), &b::var("b")).unwrap_err();
        assert_eq!(err, RegionError::NonAffineSubscript { dim: 0 });
    }

    #[test]
    fn not_enclosing_rejected() {
        let r = write_ref("do ix = 1, nx\n  as(ix) = 0\nend do", "as");
        let err = tile_footprint(&r, "iz", &b::var("a"), &b::var("b")).unwrap_err();
        assert_eq!(err, RegionError::TiledVarNotEnclosing);
    }

    #[test]
    fn contiguity_rules() {
        let t_fixed = DimTriplet {
            lower: b::var("iy"),
            upper: b::var("iy"),
            tracks_tile: false,
            fixed: true,
        };
        let t_range = DimTriplet {
            lower: b::var("a"),
            upper: b::var("b"),
            tracks_tile: true,
            fixed: false,
        };
        // (range, fixed): contiguous regardless of extents.
        assert!(is_contiguous(
            &[t_range.clone(), t_fixed.clone()],
            &|_| false
        ));
        // (fixed, range): contiguous only if dim 0 is full extent.
        assert!(is_contiguous(&[t_fixed.clone(), t_range.clone()], &|_| true));
        assert!(!is_contiguous(
            &[t_range.clone(), t_range.clone()],
            &|_| false
        ));
        // all fixed: single element.
        assert!(is_contiguous(&[t_fixed.clone(), t_fixed], &|_| false));
    }

    #[test]
    fn affine_expr_conversion_roundtrip() {
        let a = crate::affine::from_expr(&fir::parse_expr("2 * ix + nx - 5").unwrap())
            .unwrap();
        let e = affine_to_expr(&a);
        let back = crate::affine::from_expr(&e).unwrap();
        assert_eq!(a, back);
    }
}
