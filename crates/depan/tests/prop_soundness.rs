//! Soundness property: whenever the dependence cascade answers
//! `Independent`, brute-force enumeration of the full iteration space must
//! find no pair of conflicting accesses. (The reverse need not hold —
//! `MayDepend` is allowed to be conservative.)
//!
//! Also: the tile-safety check (`check_tile_safety`) is validated against
//! a brute-force interpreter of write footprints: if the analysis says
//! safe, no element may be written in two different iterations of the
//! tiled loop.

use depan::loopnest::{collect_accesses, Context};
use depan::{check_tile_safety, may_depend, CommonOrder, Rel, Verdict};
use proptest::prelude::*;

/// A small single-loop kernel writing `as(a*ix + b)` and `as(c*ix + d)`.
#[derive(Debug, Clone)]
struct TwoWrites {
    n: i64,
    a: i64,
    b: i64,
    c: i64,
    d: i64,
}

impl TwoWrites {
    fn source(&self) -> String {
        let TwoWrites { n, a, b, c, d } = *self;
        // Offsets keep subscripts positive; bounds don't matter for the
        // dependence question itself (depan never sees runtime bounds
        // violations — it reasons on the iteration space only).
        format!(
            "do ix = 1, {n}\n  as({a} * ix + {b}) = 1\n  as({c} * ix + {d}) = 2\nend do"
        )
    }

    /// Brute force: is there a pair of iterations i < i' where write 1 at
    /// i and write 2 at i' (or vice versa, or the same write at both)
    /// touch the same element?
    fn overwrite_across_iterations(&self) -> bool {
        let subs = [
            |s: &TwoWrites, i: i64| s.a * i + s.b,
            |s: &TwoWrites, i: i64| s.c * i + s.d,
        ];
        for i in 1..=self.n {
            for j in (i + 1)..=self.n {
                for f in &subs {
                    for g in &subs {
                        if f(self, i) == g(self, j) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn tile_safety_never_claims_safe_wrongly(
        n in 2i64..14,
        a in -3i64..4,
        b in 0i64..6,
        c in -3i64..4,
        d in 0i64..6,
    ) {
        let kern = TwoWrites { n, a, b, c, d };
        let stmts = fir::parse_stmts(&kern.source()).unwrap();
        let report = check_tile_safety(&stmts, "as", "ix", &Context::new());
        if report.is_safe() {
            prop_assert!(
                !kern.overwrite_across_iterations(),
                "analysis said safe but brute force found an overwrite:\n{}",
                kern.source()
            );
        }
    }

    #[test]
    fn independent_verdicts_are_sound(
        n in 2i64..12,
        a in -3i64..4,
        b in -5i64..6,
        c in -3i64..4,
        d in -5i64..6,
    ) {
        let kern = TwoWrites { n, a, b, c, d };
        let stmts = fir::parse_stmts(&kern.source()).unwrap();
        let refs = collect_accesses(&stmts, "as");
        let writes: Vec<_> = refs.iter().filter(|r| r.is_write).collect();
        prop_assert_eq!(writes.len(), 2);

        let ctx = Context::new();
        // Pairwise with the strict-order constraint, exactly like the
        // tile-safety driver.
        for (w1, w2) in [(writes[0], writes[1]), (writes[1], writes[0])] {
            let v = may_depend(
                w1,
                w2,
                &ctx,
                &[CommonOrder { common_idx: 0, rel: Rel::Lt }],
            );
            if v == Verdict::Independent {
                // Brute-force the specific pair.
                let f1 = |i: i64| {
                    if std::ptr::eq(w1, writes[0]) { kern.a * i + kern.b } else { kern.c * i + kern.d }
                };
                let f2 = |i: i64| {
                    if std::ptr::eq(w2, writes[0]) { kern.a * i + kern.b } else { kern.c * i + kern.d }
                };
                for i in 1..=kern.n {
                    for j in (i + 1)..=kern.n {
                        prop_assert_ne!(
                            f1(i),
                            f2(j),
                            "Independent verdict contradicted at i={}, j={} for\n{}",
                            i,
                            j,
                            kern.source()
                        );
                    }
                }
            }
        }
    }

    /// Footprint exactness: the region analysis' tile footprint, evaluated
    /// numerically, must equal the exact set-bounds of elements written
    /// during the tile.
    #[test]
    fn tile_footprint_matches_brute_force(
        n in 4i64..20,
        coeff in prop::sample::select(vec![-1i64, 1]),
        off in 0i64..5,
        t_lo in 1i64..6,
        t_len in 1i64..6,
    ) {
        let t_lo = t_lo.min(n);
        let t_hi = (t_lo + t_len - 1).min(n);
        let src = format!(
            "do ix = 1, {n}\n  as({coeff} * ix + {off}) = 1\nend do"
        );
        let stmts = fir::parse_stmts(&src).unwrap();
        let refs = collect_accesses(&stmts, "as");
        let w = &refs[0];

        let lo_e = fir::builder::int(t_lo);
        let hi_e = fir::builder::int(t_hi);
        let fp = depan::tile_footprint(w, "ix", &lo_e, &hi_e).unwrap();
        let flo = depan::affine::from_expr(&fp[0].lower).unwrap().constant;
        let fhi = depan::affine::from_expr(&fp[0].upper).unwrap().constant;

        let touched: Vec<i64> = (t_lo..=t_hi).map(|i| coeff * i + off).collect();
        let min = *touched.iter().min().unwrap();
        let max = *touched.iter().max().unwrap();
        prop_assert_eq!(flo, min, "lower bound mismatch for {}", src);
        prop_assert_eq!(fhi, max, "upper bound mismatch for {}", src);
    }
}
