//! Batch static analysis of the pipeline's programs: every registry
//! workload, original and pre-push emitted variants, across network
//! models. The `harness analyze` subcommand, `scripts/verify.sh`, and the
//! property tests all run this one implementation.

use crate::measure::transform_workload;
use crate::spec::ModelSpec;
use analyzer::{verify_comm, AnalysisReport, CommCheckConfig};
use workloads::{registry, SizeClass};

/// One analyzed program: which workload/variant/model produced it, its
/// source text (for rendering spans), and the analysis verdict.
pub struct AnalyzeRow {
    /// Registry name of the workload.
    pub workload: &'static str,
    /// `"orig"` or `"prepush"`.
    pub variant: &'static str,
    /// Model id that parameterized the transformation (`"-"` for
    /// originals, which do not depend on a model).
    pub model: String,
    pub np: usize,
    /// Source of the analyzed program (original or emitted).
    pub source: String,
    pub report: AnalysisReport,
}

impl AnalyzeRow {
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// `workload/variant@model np=N` — the row's stable label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{} np={}",
            self.workload, self.variant, self.model, self.np
        )
    }
}

/// Analyze one program: communication safety seeded with the workload's
/// context symbols, plus slot-level type inference when the program
/// lowers cleanly.
fn analyze_program(
    program: &fir::ast::Program,
    np: usize,
    symbols: Vec<(String, i64)>,
) -> AnalysisReport {
    let cfg = CommCheckConfig::new(np as i64).with_symbols(symbols);
    let mut report = verify_comm(program, &cfg);
    report.types = interp::analyze_types(program).ok();
    report
}

/// Analyze the full registry at `size`/`np`: the original program of
/// every workload, plus the program the transformation emits under each
/// model in `models` (the emitted code differs per model because the K
/// heuristic and strategy selection are model-informed).
pub fn analyze_registry(size: SizeClass, np: usize, models: &[ModelSpec]) -> Vec<AnalyzeRow> {
    let mut rows = Vec::new();
    for entry in registry() {
        let w = (entry.make)(size, np);
        let program = w.program();
        rows.push(AnalyzeRow {
            workload: entry.name,
            variant: "orig",
            model: "-".into(),
            np,
            source: w.source(),
            report: analyze_program(&program, np, w.context_pairs()),
        });
        for model in models {
            let out = transform_workload(w.as_ref(), &model.to_model(), None);
            let emitted = fir::unparse(&out.program);
            let reparsed = fir::parse_validated(&emitted).unwrap_or_else(|e| {
                panic!(
                    "emitted `{}` does not re-parse: {}",
                    entry.name,
                    e.render(&emitted)
                )
            });
            rows.push(AnalyzeRow {
                workload: entry.name,
                variant: "prepush",
                model: model.id(),
                np,
                source: emitted,
                report: analyze_program(&reparsed, np, w.context_pairs()),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_registry_is_analyzer_clean() {
        let rows = analyze_registry(SizeClass::Small, 4, &ModelSpec::presets());
        assert_eq!(rows.len(), 8 * 4); // 8 workloads x (orig + 3 models)
        for row in &rows {
            assert!(
                row.is_clean(),
                "{} has diagnostics:\n{}",
                row.label(),
                row.report.render_human(&row.source)
            );
        }
    }
}
