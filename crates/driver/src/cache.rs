//! Cross-scenario compilation reuse, in two layers.
//!
//! **Layer 1 — the in-process compilation cache.** A sweep's grid cells
//! collapse to far fewer distinct *compilation shapes* than scenarios:
//! the untransformed program depends only on (workload, size, np), and
//! the transformed program additionally on the tile request and the
//! model-capability fingerprint — a canonical digest of everything the
//! K-selection predictor reads from the model's capability view
//! ([`crate::measure::model_caps`]), whatever the model family — not on
//! the variant axis, not on thread counts, and not on which of two models
//! happens to share those capabilities (`mpich-beta:1` *is* `mpich` to
//! the transformer). [`CompileCache`] is a shard-locked concurrent map from
//! those canonical inputs to immutable compiled artifacts: the
//! [`interp::CompiledProgram`] for the original, and the full
//! [`TransformOutput`] (report, K-selection status and all) plus the
//! compiled pre-push program for transforms. Sweep workers
//! ([`crate::exec::run_sweep`]) share one [global](global) cache; a hit
//! skips parse → analyze → transform → lower → opt → typecheck entirely
//! and goes straight to simulation. Reuse cannot change results:
//! compilation is a pure function of the key, values are `Arc`-shared
//! and never mutated, and execution depends only on (compiled program,
//! np, model) — the same argument that lets all ranks of one scenario
//! share one lowered program (DESIGN.md §5).
//!
//! **Layer 2 — content hashes for incremental sweeps.** Every scenario's
//! *simulation inputs* — the canonical spec bytes, the generated workload
//! source and analysis context, all network-model constants, the
//! interpreter's cost/option fingerprint, the workload-registry code
//! fingerprint, and an engine revision tag — fold into one stable FNV-1a
//! digest ([`scenario_input_hash`]). The `overlap-sweep/v3` artifact
//! records it per row, and `harness sweep --incremental --baseline`
//! reuses baseline rows whose hash matches instead of re-simulating them
//! (see [`crate::exec::run_sweep_incremental`]). Virtual times are a
//! deterministic function of these inputs, so a matching hash means the
//! baseline row is byte-for-byte what a fresh run would produce.

use crate::measure::transform_workload;
use crate::spec::ScenarioSpec;
use clustersim::NetworkModel;
use compuniformer::TransformOutput;
use interp::{compile_program, CompiledProgram, Options};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::sync::Arc;
use workloads::{fnv1a, fnv1a_extend, Workload};

/// Bump when simulator, transformation, cost-model, or interpreter
/// *semantics* change in a way that alters virtual times without any
/// scenario input changing — it folds into every [`scenario_input_hash`],
/// so old artifacts stop matching and incremental sweeps re-simulate
/// everything. (The committed-baseline workflow is self-correcting even
/// without a bump — the golden quick-grid test forces regenerating the
/// baseline whenever times move — but privately kept artifacts are not,
/// hence the tag.)
pub const ENGINE_FINGERPRINT: &str = "overlap-engine/v1";

/// The compilation inputs that determine a cached artifact, canonically.
/// `transform: None` keys the untransformed program (model-independent);
/// `Some(..)` keys a transform by the tile request plus the canonical
/// model-capability fingerprint ([`transform_model_fingerprint`]) — so
/// models that agree on their effective capabilities share one entry, and
/// models of *any* family that differ in any capability never collide.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CompileKey {
    workload: String,
    size_id: &'static str,
    np: usize,
    transform: Option<TransformAxes>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct TransformAxes {
    tile: Option<i64>,
    /// [`transform_model_fingerprint`] of the model at this key's `np`.
    model_fp: u64,
}

/// Canonical digest of everything the transformation reads from a network
/// model: the capability view `model_caps(model, np)` — effective
/// overhead, per-byte CPU, bottleneck per-byte wire rate, latency, and the
/// conservative flag. This is a pure function of (model constants, family,
/// np), so two models — of any family — produce the same transform iff
/// their fingerprints at that `np` agree. Display names never fold in:
/// `mpich-beta:1` still shares `mpich`'s entry.
pub fn transform_model_fingerprint(model: &NetworkModel, np: usize) -> u64 {
    let caps = crate::measure::model_caps(model, np);
    let mut h = fnv1a(b"model-caps/v1");
    for bits in [
        caps.overhead().to_bits(),
        caps.cpu_per_byte().to_bits(),
        caps.wire_per_byte().to_bits(),
        caps.latency().to_bits(),
    ] {
        h = fnv1a_extend(h, &bits.to_le_bytes());
    }
    fnv1a_extend(h, &[u8::from(caps.conservative)])
}

/// A cached compilation: either the original program, or a transform
/// (the full report — strategy, tile choice, K-selection status — plus
/// the compiled pre-push program).
#[derive(Clone)]
enum Compiled {
    Original(CompiledProgram),
    Transformed(Arc<TransformOutput>, CompiledProgram),
}

/// Cache hit/miss counters (process-lifetime for the [global] cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Counter movement between two snapshots (for per-sweep reporting).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A concurrent, shard-locked compilation cache. Shards are selected by
/// the key's FNV digest, so parallel sweep workers compiling different
/// shapes almost never contend; a worker that loses the race for a shape
/// blocks briefly on that shard and then *hits*, never compiling twice.
pub struct CompileCache {
    shards: Vec<Mutex<HashMap<CompileKey, Compiled>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

const SHARDS: usize = 32;

impl Default for CompileCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CompileCache {
    pub fn new() -> CompileCache {
        CompileCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct compilation shapes currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CompileKey) -> &Mutex<HashMap<CompileKey, Compiled>> {
        let mut h = fnv1a(key.workload.as_bytes());
        h = fnv1a_extend(h, key.size_id.as_bytes());
        h = fnv1a_extend(h, &(key.np as u64).to_le_bytes());
        if let Some(t) = &key.transform {
            h = fnv1a_extend(h, format!("{:?}", t.tile).as_bytes());
            h = fnv1a_extend(h, &t.model_fp.to_le_bytes());
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// Fetch or compute under the key's shard lock. Holding the lock
    /// through the compute keeps the cache single-compile-per-shape (the
    /// second racer blocks, then hits); other shards stay available.
    fn get_or_compile(&self, key: CompileKey, compile: impl FnOnce() -> Compiled) -> Compiled {
        let shard = self.shard(&key);
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compile();
        map.insert(key, value.clone());
        value
    }

    fn contains(&self, key: &CompileKey) -> bool {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(key)
    }

    /// Would this scenario's compilations all be served from cache right
    /// now? A pure probe — hit/miss counters don't move — used for the
    /// `cache_warm` flag on [`crate::event::ProgressEvent::ScenarioFinished`].
    /// Conservative under concurrency: a shape another worker is filling
    /// at this instant reads as cold.
    pub fn warm_for(&self, spec: &ScenarioSpec) -> bool {
        use crate::spec::Variant;
        let original = CompileKey {
            workload: spec.workload.clone(),
            size_id: spec.size.id(),
            np: spec.np,
            transform: None,
        };
        let transformed = CompileKey {
            transform: Some(TransformAxes {
                tile: spec.tile_size,
                model_fp: transform_model_fingerprint(&spec.model.to_model(), spec.np),
            }),
            ..original.clone()
        };
        match spec.variant {
            Variant::Compare => self.contains(&original) && self.contains(&transformed),
            Variant::Original => self.contains(&original),
            Variant::Prepush => self.contains(&transformed),
        }
    }

    /// The compiled *original* program of `(workload, size, np)` — keyed
    /// independently of model, tile, and variant, so e.g. the three model
    /// columns of one grid row compile it once.
    pub fn original(&self, spec: &ScenarioSpec, w: &dyn Workload) -> CompiledProgram {
        let key = CompileKey {
            workload: spec.workload.clone(),
            size_id: spec.size.id(),
            np: spec.np,
            transform: None,
        };
        let got = self.get_or_compile(key, || {
            Compiled::Original(compile_workload_program(w))
        });
        match got {
            Compiled::Original(p) => p,
            Compiled::Transformed(..) => unreachable!("original key holds original program"),
        }
    }

    /// The transform of `(workload, size, np)` under `model`'s K-selection
    /// constants and the requested tile: the full [`TransformOutput`]
    /// (report and K-selection status included) plus the compiled
    /// pre-push program.
    pub fn transformed(
        &self,
        spec: &ScenarioSpec,
        w: &dyn Workload,
        model: &NetworkModel,
    ) -> (Arc<TransformOutput>, CompiledProgram) {
        let key = CompileKey {
            workload: spec.workload.clone(),
            size_id: spec.size.id(),
            np: spec.np,
            transform: Some(TransformAxes {
                tile: spec.tile_size,
                model_fp: transform_model_fingerprint(model, spec.np),
            }),
        };
        let got = self.get_or_compile(key, || {
            let out = transform_workload(w, model, spec.tile_size);
            let compiled = compile_program(&out.program, &Options::default())
                .unwrap_or_else(|e| {
                    panic!("workload `{}` transformed program must compile: {e}", w.name())
                });
            Compiled::Transformed(Arc::new(out), compiled)
        });
        match got {
            Compiled::Transformed(out, p) => (out, p),
            Compiled::Original(..) => unreachable!("transform key holds transform"),
        }
    }
}

/// Compile a workload's original program under the sweep's (default)
/// interpreter options.
fn compile_workload_program(w: &dyn Workload) -> CompiledProgram {
    compile_program(&w.program(), &Options::default())
        .unwrap_or_else(|e| panic!("workload `{}` must compile: {e}", w.name()))
}

/// The process-wide cache every sweep worker shares. Entries are small
/// (lowered programs), shapes per grid number in the dozens, and the
/// process is the natural reuse scope — repeated sweeps (tests, the
/// harness gate re-running a grid) stay warm.
pub fn global() -> &'static CompileCache {
    static CACHE: OnceLock<CompileCache> = OnceLock::new();
    CACHE.get_or_init(CompileCache::new)
}

// ------------------------------------------------------- input hashing

/// Everything the interpreter's default [`Options`] bakes into virtual
/// times: the cost constants and the semantics-preserving switch set.
fn options_fingerprint(h: u64, opts: &Options) -> u64 {
    let mut h = fnv1a_extend(h, b"opts");
    for bits in [
        opts.cost.ns_per_op.to_bits(),
        opts.cost.ns_per_stmt.to_bits(),
        opts.cost.ns_per_call.to_bits(),
    ] {
        h = fnv1a_extend(h, &bits.to_le_bytes());
    }
    // The switches are pinned byte-identical by the differential suites,
    // but fold them anyway: the hash should describe inputs, not lean on
    // theorems about them.
    fnv1a_extend(
        h,
        &[
            u8::from(opts.detect_buffer_reuse),
            u8::from(opts.trace),
            u8::from(opts.optimize),
            u8::from(opts.typed_chains),
        ],
    )
}

/// The canonical model section of the input hash: *all* constants of any
/// model family (the simulation reads them all, not just what the
/// transformer sees), plus the stable model id. The five base constants
/// fold exactly as they did before model families existed — so committed
/// `input_hash` values for uniform models (mpich, mpich-gm, rdma-ideal,
/// mpich-beta) are unchanged and v3 artifacts stay readable — and each
/// non-uniform family appends its own extra constants after them.
fn model_fingerprint(h: u64, spec: &ScenarioSpec) -> u64 {
    let model = spec.model.to_model();
    let mut h = fnv1a_extend(h, spec.model.id().as_bytes());
    for bits in [
        model.latency.as_ns(),
        model.overhead.as_ns(),
        model.gap_ns_per_byte.to_bits(),
        model.cpu_send_ns_per_byte.to_bits(),
        model.cpu_recv_ns_per_byte.to_bits(),
    ] {
        h = fnv1a_extend(h, &bits.to_le_bytes());
    }
    match &model.family {
        clustersim::NetModel::Uniform => {}
        clustersim::NetModel::Congested { links, load_factor } => {
            h = fnv1a_extend(h, b"congested");
            h = fnv1a_extend(h, &u64::from(*links).to_le_bytes());
            h = fnv1a_extend(h, &load_factor.to_bits().to_le_bytes());
        }
        clustersim::NetModel::Hetero(p) => {
            h = fnv1a_extend(h, b"hetero");
            h = fnv1a_extend(h, p.id().as_bytes());
        }
    }
    h
}

/// Content-hash one scenario's simulation inputs with an explicit
/// registry fingerprint (tests use this to prove a fingerprint change
/// invalidates every row; production callers use [`scenario_input_hash`]).
pub fn scenario_input_hash_with(
    spec: &ScenarioSpec,
    w: &dyn Workload,
    registry_fp: u64,
) -> u64 {
    let mut h = fnv1a(ENGINE_FINGERPRINT.as_bytes());
    h = fnv1a_extend(h, &registry_fp.to_le_bytes());
    // The canonical spec bytes: the same stable key the artifact and the
    // diff engine use (workload, size, np, model, tile request, variant).
    h = fnv1a_extend(h, spec.key().as_bytes());
    // The generated program and its analysis context — a generator tweak
    // moves exactly the cells whose source changed.
    h = fnv1a_extend(h, w.source().as_bytes());
    for (k, v) in w.context_pairs() {
        h = fnv1a_extend(h, k.as_bytes());
        h = fnv1a_extend(h, &v.to_le_bytes());
    }
    for a in w.output_arrays() {
        h = fnv1a_extend(h, a.as_bytes());
    }
    h = model_fingerprint(h, spec);
    options_fingerprint(h, &Options::default())
}

/// Content-hash one scenario's simulation inputs: canonical spec bytes +
/// generated workload source/context + all model constants + interpreter
/// option fingerprint + registry code fingerprint + engine revision.
/// `None` when the workload is unknown to the registry (such a scenario
/// can only become an error row, which is never reusable anyway).
pub fn scenario_input_hash(spec: &ScenarioSpec) -> Option<u64> {
    let entry = workloads::find(&spec.workload)?;
    let w = (entry.make)(spec.size, spec.np);
    Some(scenario_input_hash_with(
        spec,
        &*w,
        workloads::registry_fingerprint(),
    ))
}

/// Render an input hash the way the artifact stores it (16 hex digits).
pub fn hash_to_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Parse an artifact's `input_hash` field back.
pub fn hash_from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelSpec, SizeClass, Variant};

    fn spec(model: ModelSpec, tile: Option<i64>) -> ScenarioSpec {
        ScenarioSpec {
            workload: "direct2d".into(),
            size: SizeClass::Small,
            np: 2,
            model,
            tile_size: tile,
            variant: Variant::Compare,
        }
    }

    fn workload_of(s: &ScenarioSpec) -> Box<dyn Workload> {
        (workloads::find(&s.workload).unwrap().make)(s.size, s.np)
    }

    #[test]
    fn original_is_shared_across_models_and_tiles() {
        let cache = CompileCache::new();
        let a = spec(ModelSpec::Mpich, None);
        let b = spec(ModelSpec::MpichGm, Some(8));
        cache.original(&a, &*workload_of(&a));
        let before = cache.stats();
        cache.original(&b, &*workload_of(&b));
        let after = cache.stats();
        assert_eq!(after.since(&before), CacheStats { hits: 1, misses: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn transform_keyed_by_kselect_constants_not_model_name() {
        let cache = CompileCache::new();
        // mpich-beta:1 has exactly mpich's constants — one cache entry.
        let a = spec(ModelSpec::Mpich, None);
        let b = spec(ModelSpec::MpichBeta(1.0), None);
        let (out_a, _) = cache.transformed(&a, &*workload_of(&a), &a.model.to_model());
        let before = cache.stats();
        let (out_b, _) = cache.transformed(&b, &*workload_of(&b), &b.model.to_model());
        assert_eq!(cache.stats().since(&before), CacheStats { hits: 1, misses: 0 });
        assert!(Arc::ptr_eq(&out_a, &out_b), "one Arc-shared transform");
        // A genuinely different stack misses.
        let c = spec(ModelSpec::MpichGm, None);
        cache.transformed(&c, &*workload_of(&c), &c.model.to_model());
        assert_eq!(cache.stats().misses, 2);
        // Tile requests key separately.
        let d = spec(ModelSpec::MpichGm, Some(64));
        cache.transformed(&d, &*workload_of(&d), &d.model.to_model());
        assert_eq!(cache.stats().misses, 3);
    }

    /// Generalizes the Arc::ptr_eq pin above to every model family: two
    /// *distinct* ModelSpecs share one transform entry exactly when their
    /// canonical capability fingerprints match — never otherwise.
    #[test]
    fn distinct_models_share_transform_entries_iff_fingerprints_match() {
        use clustersim::HeteroProfile;
        let cache = CompileCache::new();
        let models = [
            ModelSpec::Mpich,
            ModelSpec::MpichGm,
            ModelSpec::RdmaIdeal,
            ModelSpec::MpichBeta(1.0), // mpich's constants — must share with it
            ModelSpec::MpichBeta(0.5),
            ModelSpec::Congested { links: 1, load: 2.0 },
            ModelSpec::Congested { links: 2, load: 2.0 },
            ModelSpec::Hetero(HeteroProfile::HalfSlow),
            ModelSpec::Hetero(HeteroProfile::Straggler),
        ];
        let outs: Vec<(String, u64, Arc<TransformOutput>)> = models
            .iter()
            .map(|m| {
                let s = spec(m.clone(), None);
                let model = m.to_model();
                let (out, _) = cache.transformed(&s, &*workload_of(&s), &model);
                (m.id(), transform_model_fingerprint(&model, s.np), out)
            })
            .collect();
        let mut shared_pairs = 0;
        for (i, (ida, fa, oa)) in outs.iter().enumerate() {
            for (idb, fb, ob) in &outs[i + 1..] {
                assert_eq!(
                    fa == fb,
                    Arc::ptr_eq(oa, ob),
                    "{ida} vs {idb}: entries must be shared iff fingerprints match"
                );
                if fa == fb {
                    shared_pairs += 1;
                }
            }
        }
        assert!(shared_pairs >= 1, "mpich / mpich-beta:1 must share");
        assert!(
            outs.iter().map(|(_, f, _)| f).collect::<std::collections::HashSet<_>>().len() >= 7,
            "the families must produce mostly-distinct fingerprints"
        );
    }

    /// The input-hash model section must cover family-specific constants:
    /// two congested levels (same base constants) and each hetero profile
    /// get distinct row hashes.
    #[test]
    fn input_hash_distinguishes_family_constants() {
        use clustersim::HeteroProfile;
        let hashes: Vec<u64> = [
            ModelSpec::MpichGm,
            ModelSpec::Congested { links: 1, load: 1.5 },
            ModelSpec::Congested { links: 1, load: 3.0 },
            ModelSpec::Congested { links: 2, load: 1.5 },
            ModelSpec::Hetero(HeteroProfile::HalfSlow),
            ModelSpec::Hetero(HeteroProfile::Straggler),
        ]
        .into_iter()
        .map(|m| scenario_input_hash(&spec(m, None)).unwrap())
        .collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len(), "all rows must hash distinctly");
    }

    #[test]
    fn cached_compilations_rerun_identically() {
        let cache = CompileCache::new();
        let s = spec(ModelSpec::MpichGm, None);
        let w = workload_of(&s);
        let model = s.model.to_model();
        let fresh_out = transform_workload(&*w, &model, None);
        let fresh = interp::run_program(&fresh_out.program, s.np, &model).unwrap();
        let (out, compiled) = cache.transformed(&s, &*w, &model);
        let (out2, compiled2) = cache.transformed(&s, &*w, &model);
        assert_eq!(fir::unparse(&out.program), fir::unparse(&fresh_out.program));
        assert!(Arc::ptr_eq(&out, &out2));
        for c in [compiled, compiled2] {
            let r = c.run(s.np, &model).unwrap();
            assert_eq!(r.outputs, fresh.outputs);
            assert_eq!(r.report.makespan(), fresh.report.makespan());
        }
    }

    #[test]
    fn input_hash_is_stable_and_axis_sensitive() {
        let base = spec(ModelSpec::MpichGm, None);
        let h = scenario_input_hash(&base).unwrap();
        assert_eq!(scenario_input_hash(&base).unwrap(), h, "deterministic");

        let mut np4 = base.clone();
        np4.np = 4;
        let mut tiled = base.clone();
        tiled.tile_size = Some(64);
        let mut variant = base.clone();
        variant.variant = Variant::Original;
        let mut model = base.clone();
        model.model = ModelSpec::Mpich;
        let mut size = base.clone();
        size.size = SizeClass::Medium;
        for (what, other) in [
            ("np", &np4),
            ("tile", &tiled),
            ("variant", &variant),
            ("model", &model),
            ("size", &size),
        ] {
            assert_ne!(
                scenario_input_hash(other).unwrap(),
                h,
                "{what} axis must move the hash"
            );
        }
        assert_eq!(scenario_input_hash(&spec_unknown()), None);
    }

    fn spec_unknown() -> ScenarioSpec {
        ScenarioSpec {
            workload: "no-such-kernel".into(),
            size: SizeClass::Small,
            np: 2,
            model: ModelSpec::Mpich,
            tile_size: None,
            variant: Variant::Compare,
        }
    }

    #[test]
    fn registry_fingerprint_folds_into_every_hash() {
        let s = spec(ModelSpec::MpichGm, None);
        let w = workload_of(&s);
        let a = scenario_input_hash_with(&s, &*w, 1);
        let b = scenario_input_hash_with(&s, &*w, 2);
        assert_ne!(a, b, "a registry-fingerprint change invalidates rows");
        assert_eq!(
            scenario_input_hash_with(&s, &*w, workloads::registry_fingerprint()),
            scenario_input_hash(&s).unwrap()
        );
    }

    #[test]
    fn warm_probe_tracks_fill_without_moving_counters() {
        let cache = CompileCache::new();
        let s = spec(ModelSpec::MpichGm, None);
        assert!(!cache.warm_for(&s));
        cache.original(&s, &*workload_of(&s));
        assert!(!cache.warm_for(&s), "compare also needs the transform");
        let mut orig_only = s.clone();
        orig_only.variant = Variant::Original;
        assert!(cache.warm_for(&orig_only), "original-only is warm already");
        cache.transformed(&s, &*workload_of(&s), &s.model.to_model());
        let before = cache.stats();
        assert!(cache.warm_for(&s));
        let mut prepush = s.clone();
        prepush.variant = Variant::Prepush;
        assert!(cache.warm_for(&prepush));
        assert_eq!(
            cache.stats().since(&before),
            CacheStats { hits: 0, misses: 0 },
            "probes never move the hit/miss counters"
        );
    }

    #[test]
    fn hex_roundtrip() {
        for h in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
            assert_eq!(hash_from_hex(&hash_to_hex(h)), Some(h));
        }
        assert_eq!(hash_from_hex("xyz"), None);
        assert_eq!(hash_from_hex("123"), None);
        assert_eq!(hash_from_hex("00000000000000000"), None); // 17 digits
    }
}
