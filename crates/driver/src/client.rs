//! The one-shot CLI client of the job core.
//!
//! `harness sweep` / `harness quick` / `harness diff` used to carry
//! their orchestration inline; now they parse flags and delegate here.
//! [`sweep_command`] submits a single job to a [`JobCore`] with a queue
//! of one, waits for it, and renders *exactly* the bytes the harness
//! always printed (pinned by the golden stdout test against the
//! committed artifact). The artifact file it writes is the job's
//! canonical artifact — the same `Arc<String>` the HTTP service serves
//! from `GET /jobs/:id/artifact` — which is how "serving may change
//! wall-clock, never a simulated byte" stays a structural property
//! rather than a promise.
//!
//! These functions are *front-end* code: they print to stdout/stderr
//! and return process exit codes (the caller exits; nothing here calls
//! `std::process::exit`). The sweep engine underneath them stays
//! silent — see [`crate::event`].

use crate::diff::DiffReport;
use crate::exec::{SweepRecord, SweepResult, SweepTiming};
use crate::grid::SweepGrid;
use crate::job::{JobCore, JobSpec, JobState};
use crate::json;
use crate::spec::ScenarioSpec;
use clustersim::SimTime;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Options for [`sweep_command`], mirroring the harness's sweep flags.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (0 = one per core).
    pub threads: usize,
    /// Where the normalized artifact goes.
    pub out: String,
    /// Also write the non-normalized artifact (with `timing`) here.
    pub wall_out: Option<String>,
    /// Diff against this artifact after the run (the regression gate);
    /// with `incremental`, also the artifact whose rows to reuse.
    pub baseline: Option<String>,
    pub tolerance: f64,
    /// Swap the compiled-in grid for a `scenarios/*.toml` file.
    pub grid: Option<String>,
    /// Write the gate's diff report as markdown here.
    pub md_out: Option<String>,
    /// Reuse baseline rows whose `input_hash` is unchanged.
    pub incremental: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            out: "BENCH_sweep.json".into(),
            wall_out: None,
            baseline: None,
            tolerance: 0.0,
            grid: None,
            md_out: None,
            incremental: false,
        }
    }
}

/// Options for [`diff_command`].
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    pub tolerance: f64,
    /// Restrict the comparison to a scenario file's expansion.
    pub grid: Option<String>,
    /// Write the report as markdown here.
    pub md_out: Option<String>,
    /// Compare host wall-clock `timing` sections instead (informational).
    pub wall: bool,
}

fn hr_string(title: &str) -> String {
    format!(
        "\n==================================================================\n\
         {title}\n\
         ==================================================================\n"
    )
}

fn hr(title: &str) {
    print!("{}", hr_string(title));
}

/// Load a declarative scenario file (`scenarios/*.toml`) into a grid.
/// On failure: the historical diagnostic on stderr, exit code 2.
fn load_grid(path: &str) -> Result<SweepGrid, i32> {
    crate::job::GridSource::GridFile(path.to_string())
        .resolve()
        .map_err(|e| {
            eprintln!("{e}");
            2
        })
}

/// Read a sweep artifact, treating any corruption (including non-UTF-8
/// bytes) as a readable error, never a panic.
fn load_artifact(path: &str) -> Result<SweepResult, i32> {
    let bytes = std::fs::read(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        2
    })?;
    json::from_json_bytes(&bytes).map_err(|e| {
        eprintln!("{path}: {e}");
        2
    })
}

/// Write the markdown diff report when `--md-out` was given.
fn write_md_report(
    md_out: &Option<String>,
    report: &DiffReport,
    baseline: &str,
    candidate: &str,
    tolerance: f64,
) -> Result<(), i32> {
    let Some(path) = md_out else { return Ok(()) };
    let md = report.render_markdown(baseline, candidate, tolerance);
    if let Err(e) = std::fs::write(path, &md) {
        eprintln!("cannot write {path}: {e}");
        return Err(1);
    }
    println!("wrote {path} (markdown diff report)");
    Ok(())
}

/// The sweep's stdout block — header rule, record table, aggregates,
/// timing line — exactly as the harness has always printed it. Public
/// so the golden test can pin these bytes against the committed
/// artifact without running a sweep.
pub fn render_sweep_stdout(result: &SweepResult) -> String {
    let mut out = hr_string(&format!(
        "sweep — {} scenarios ({} ok, {} errors) in {:.0} ms wall",
        result.summary.scenarios,
        result.summary.ok,
        result.summary.errors,
        result.summary.wall_ms
    ));
    out.push_str(&format!(
        "{:<22} {:>8} {:>3} {:>14} {:>6} {:>12} {:>12} {:>7}  strategy/status\n",
        "workload", "size", "np", "model", "K", "orig", "prepush", "gain"
    ));
    for r in &result.records {
        let k = r
            .tile_size
            .map(|k| k.to_string())
            .unwrap_or_else(|| "-".into());
        match r.error() {
            Some(e) => out.push_str(&format!(
                "{:<22} {:>8} {:>3} {:>14} {:>6} {:>12} {:>12} {:>7}  ERROR: {}\n",
                r.spec.workload,
                r.spec.size.id(),
                r.spec.np,
                r.spec.model.id(),
                k,
                "-",
                "-",
                "-",
                e.lines().next().unwrap_or("")
            )),
            None => out.push_str(&format!(
                "{:<22} {:>8} {:>3} {:>14} {:>6} {:>12} {:>12} {:>6.2}x  {}\n",
                r.spec.workload,
                r.spec.size.id(),
                r.spec.np,
                r.spec.model.id(),
                k,
                r.orig_ns.map(SimTime::from_ns).map_or("-".into(), |t| t.to_string()),
                r.prepush_ns.map(SimTime::from_ns).map_or("-".into(), |t| t.to_string()),
                r.speedup.unwrap_or(0.0),
                r.strategy.as_deref().unwrap_or("-")
            )),
        }
    }
    if let Some(g) = result.summary.geomean_speedup {
        out.push_str(&format!("\ngeomean speedup: {g:.3}x\n"));
    }
    for (model, g) in &result.summary.per_model {
        out.push_str(&format!("  {model:<14} geomean {g:.3}x\n"));
    }
    if let Some((key, s)) = &result.summary.best {
        out.push_str(&format!("best : {s:.2}x  {key}\n"));
    }
    if let Some((key, s)) = &result.summary.worst {
        out.push_str(&format!("worst: {s:.2}x  {key}\n"));
    }
    if let Some(t) = &result.timing {
        out.push_str(&format!(
            "compile cache: {} hit(s), {} miss(es); {} baseline row(s) reused\n",
            t.cache_hits, t.cache_misses, t.reused_rows
        ));
    }
    out
}

/// `harness sweep` / `harness quick`: run a grid as a single job on a
/// fresh [`JobCore`], print the record table + aggregates, write the
/// artifact(s), and run the regression gate when a baseline was given.
/// Returns the process exit code.
pub fn sweep_command(preset: SweepGrid, opts: &SweepOptions) -> i32 {
    match sweep_command_inner(preset, opts) {
        Ok(()) => 0,
        Err(code) => code,
    }
}

fn sweep_command_inner(preset: SweepGrid, opts: &SweepOptions) -> Result<(), i32> {
    if opts.md_out.is_some() && opts.baseline.is_none() {
        eprintln!("--md-out needs --baseline (the markdown report is a diff report)");
        return Err(2);
    }
    if opts.incremental && opts.baseline.is_none() {
        eprintln!("--incremental needs --baseline (the artifact whose rows to reuse)");
        return Err(2);
    }
    let grid = match &opts.grid {
        Some(path) => load_grid(path)?,
        None => preset,
    };

    // One job on a single-slot core: the CLI is the degenerate client of
    // the same machinery the sweep service runs.
    let core = JobCore::new(1);
    let mut spec = JobSpec::grid(grid.clone()).threads(opts.threads);
    if opts.incremental {
        let baseline_path = opts.baseline.as_deref().expect("checked above");
        let baseline = load_artifact(baseline_path)?;
        spec = spec.baseline(Arc::new(baseline));
    }
    let id = match core.submit(spec) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("{e}");
            core.shutdown();
            core.join();
            return Err(2);
        }
    };
    let state = core
        .wait_terminal(id, Duration::from_secs(7 * 24 * 3600))
        .expect("job was just submitted");
    core.shutdown();
    core.join();
    let result = match state {
        JobState::Done => core.result(id).expect("done job has a result"),
        JobState::Failed(msg) => {
            eprintln!("sweep failed: {msg}");
            return Err(1);
        }
        other => {
            eprintln!("sweep job ended {}", other.id());
            return Err(1);
        }
    };

    if opts.incremental {
        let baseline_path = opts.baseline.as_deref().expect("checked above");
        let status = core.status(id).expect("job exists");
        let simulated = status.finished - status.reused;
        println!(
            "incremental vs {baseline_path}: reused {} row(s), re-simulated {simulated}",
            status.reused
        );
    }
    print!("{}", render_sweep_stdout(&result));

    // Committed artifacts are normalized (host wall-clock zeroed, timing
    // dropped) so the bytes are identical across runs, machines, and
    // thread counts. The job core computed them once; the file below and
    // the service's /artifact endpoint share this string.
    let text = core.artifact(id).expect("done job has an artifact");
    if let Err(e) = std::fs::write(&opts.out, text.as_bytes()) {
        eprintln!("cannot write {}: {e}", opts.out);
        return Err(1);
    }
    println!("\nwrote {} ({} records)", opts.out, result.records.len());
    if let Some(wall_out) = &opts.wall_out {
        // The non-normalized artifact keeps per-scenario wall_ms and the
        // `timing` section — the tracked perf-trajectory data.
        let text = json::to_json_string(&result);
        if let Err(e) = std::fs::write(wall_out, &text) {
            eprintln!("cannot write {wall_out}: {e}");
            return Err(1);
        }
        if let Some(t) = &result.timing {
            println!(
                "wrote {wall_out} (timing: {:.0} ms total, pool capacity {}, \
                 worker high-water {}, cache {}h/{}m, {} reused)",
                t.wall_ms_total,
                t.pool_capacity,
                t.workers_high_water,
                t.cache_hits,
                t.cache_misses,
                t.reused_rows
            );
        }
    }
    // The committed BENCH_sweep.json is the quick-grid baseline that
    // scripts/verify.sh regenerates; warn whenever any *other* grid —
    // whichever subcommand or --grid file produced it — lands there.
    if grid != SweepGrid::quick() && opts.out == "BENCH_sweep.json" {
        eprintln!(
            "note: overwrote the quick-grid baseline at BENCH_sweep.json — \
             `git restore BENCH_sweep.json` (or rerun `harness quick`), \
             or pass --out next time"
        );
    }
    if result.summary.errors > 0 {
        return Err(1);
    }
    if let Some(baseline_path) = &opts.baseline {
        let baseline = load_artifact(baseline_path)?;
        hr(&format!(
            "regression gate — {} (baseline) vs this run, tolerance {}",
            baseline_path, opts.tolerance
        ));
        let report = crate::diff(&baseline, &result, opts.tolerance);
        print!("{}", report.render());
        write_md_report(
            &opts.md_out,
            &report,
            baseline_path,
            "this run",
            opts.tolerance,
        )?;
        if report.has_regressions() {
            eprintln!("regression gate FAILED");
            return Err(1);
        }
        println!("regression gate passed");
    }
    Ok(())
}

/// Keep only the records a grid file's expansion names (by scenario
/// key), recomputing the summary over the survivors.
fn restrict_to_grid(result: SweepResult, keys: &HashSet<String>) -> SweepResult {
    let records: Vec<SweepRecord> = result
        .records
        .into_iter()
        .filter(|r| keys.contains(&r.spec.key()))
        .collect();
    let summary = crate::summarize(&records, result.summary.wall_ms);
    SweepResult {
        records,
        summary,
        timing: None,
    }
}

/// `harness diff`: compare two sweep artifacts; exit code 1 on
/// regressions. `--grid` scopes the comparison to a scenario file's
/// expansion; `--md-out` writes the report as markdown; `--wall`
/// compares the host wall-clock `timing` sections instead.
pub fn diff_command(paths: &[String], opts: &DiffOptions) -> i32 {
    match diff_command_inner(paths, opts) {
        Ok(()) => 0,
        Err(code) => code,
    }
}

fn diff_command_inner(paths: &[String], opts: &DiffOptions) -> Result<(), i32> {
    if paths.len() != 2 {
        eprintln!(
            "usage: harness diff [--wall] <a.json> <b.json> [--tol F] [--grid FILE.toml] [--md-out PATH]"
        );
        return Err(2);
    }
    if opts.wall {
        return wall_diff(&paths[0], &paths[1]);
    }
    let mut a = load_artifact(&paths[0])?;
    let mut b = load_artifact(&paths[1])?;
    if let Some(grid_path) = &opts.grid {
        let keys: HashSet<String> = load_grid(grid_path)?
            .expand()
            .iter()
            .map(ScenarioSpec::key)
            .collect();
        a = restrict_to_grid(a, &keys);
        b = restrict_to_grid(b, &keys);
        println!(
            "(scoped to {}: {} baseline / {} candidate records match)",
            grid_path,
            a.records.len(),
            b.records.len()
        );
    }
    hr(&format!(
        "diff — {} (baseline) vs {} (candidate), tolerance {}",
        paths[0], paths[1], opts.tolerance
    ));
    let report = crate::diff(&a, &b, opts.tolerance);
    print!("{}", report.render());
    write_md_report(&opts.md_out, &report, &paths[0], &paths[1], opts.tolerance)?;
    if report.has_regressions() {
        return Err(1);
    }
    Ok(())
}

/// `diff --wall`: compare the host wall-clock `timing` sections of two
/// `--wall-out` artifacts — the per-PR perf trajectory the ROADMAP tracks
/// under `perf/`. Prints per-scenario movements (sorted by absolute delta)
/// and totals. Purely informational: wall clock varies across machines and
/// runs, so this never exits nonzero on a slowdown — it exists so a perf
/// regression is *seen* in CI output, not to fail the gate.
fn wall_diff(baseline_path: &str, candidate_path: &str) -> Result<(), i32> {
    let load_timing = |path: &str| -> Result<SweepTiming, i32> {
        let result = load_artifact(path)?;
        result.timing.ok_or_else(|| {
            eprintln!(
                "{path}: no `timing` section — wall diffs need the non-normalized \
                 --wall-out artifact (e.g. perf/PR*_quick_wall.json)"
            );
            2
        })
    };
    let a = load_timing(baseline_path)?;
    let b = load_timing(candidate_path)?;
    hr(&format!(
        "wall-clock diff — {baseline_path} (baseline) vs {candidate_path} (candidate)"
    ));
    let base: HashMap<&str, f64> = a
        .per_scenario
        .iter()
        .map(|(k, ms)| (k.as_str(), *ms))
        .collect();
    let mut rows: Vec<(&str, Option<f64>, f64)> = b
        .per_scenario
        .iter()
        .map(|(k, ms)| (k.as_str(), base.get(k.as_str()).copied(), *ms))
        .collect();
    rows.sort_by(|x, y| {
        let d = |r: &(&str, Option<f64>, f64)| r.1.map_or(f64::MAX, |old| (r.2 - old).abs());
        d(y).partial_cmp(&d(x)).expect("finite wall times")
    });
    println!(
        "{:<58} {:>10} {:>10} {:>8}",
        "scenario", "old ms", "new ms", "ratio"
    );
    for (key, old, new) in &rows {
        match old {
            Some(old) => println!(
                "{key:<58} {old:>10.1} {new:>10.1} {:>7.2}x",
                old / new.max(1e-9)
            ),
            None => println!("{key:<58} {:>10} {new:>10.1}  (new scenario)", "-"),
        }
    }
    for (key, ms) in &a.per_scenario {
        if !b.per_scenario.iter().any(|(k, _)| k == key) {
            println!("{key:<58} {ms:>10.1} {:>10}  (dropped)", "-");
        }
    }
    let matched_old: f64 = rows.iter().filter_map(|r| r.1).sum();
    let matched_new: f64 = rows.iter().filter(|r| r.1.is_some()).map(|r| r.2).sum();
    println!(
        "\ntotals: {:.0} ms -> {:.0} ms over {} matched scenario(s) ({:.2}x); \
         whole runs {:.0} ms -> {:.0} ms",
        matched_old,
        matched_new,
        rows.iter().filter(|r| r.1.is_some()).count(),
        matched_old / matched_new.max(1e-9),
        a.wall_ms_total,
        b.wall_ms_total,
    );
    // Reuse counters ride along so the perf trajectory shows the cache
    // *working* — an accidental 0%-hit regression is visible here, not
    // silent. (Pre-v3 artifacts read back as all-zero counters.)
    println!(
        "compile cache: {} -> {} hit(s), {} -> {} miss(es); reused rows {} -> {}",
        a.cache_hits, b.cache_hits, a.cache_misses, b.cache_misses, a.reused_rows, b.reused_rows,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hr_rule_matches_the_historical_width() {
        let s = hr_string("title");
        let lines: Vec<&str> = s.lines().collect();
        // Leading blank line, rule, title, rule.
        assert_eq!(lines[0], "");
        assert_eq!(lines[1], "=".repeat(66));
        assert_eq!(lines[2], "title");
        assert_eq!(lines[3], lines[1]);
    }

    #[test]
    fn render_is_stable_for_an_empty_result() {
        let result = SweepResult {
            records: Vec::new(),
            summary: crate::summarize(&[], 0.0),
            timing: None,
        };
        let s = render_sweep_stdout(&result);
        assert!(s.contains("sweep — 0 scenarios (0 ok, 0 errors) in 0 ms wall"));
        assert!(s.contains("strategy/status"));
    }
}
