//! Regression comparison between two sweep artifacts: match records by
//! scenario key, then flag status flips and virtual-time/speedup
//! regressions beyond a tolerance. Host wall-clock is deliberately
//! ignored — the simulator's virtual time is the metric the paper (and
//! this repo's perf trajectory) cares about.

use crate::exec::{SweepRecord, SweepResult};
use std::fmt::Write as _;

/// One matched scenario whose prepush virtual time moved.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    pub key: String,
    pub before_ns: u64,
    pub after_ns: u64,
    /// `after/before` — > 1 is a slowdown.
    pub ratio: f64,
}

/// Per-model aggregate movement: geomean speedup before vs after.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAggregate {
    pub model: String,
    /// Geomean speedup in the baseline (`None`: model absent there).
    pub before: Option<f64>,
    /// Geomean speedup in the candidate (`None`: model absent there).
    pub after: Option<f64>,
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Scenario keys present in `a` but missing from `b`.
    pub missing: Vec<String>,
    /// Scenario keys new in `b`.
    pub added: Vec<String>,
    /// Keys that went ok -> error (with the error description).
    pub status_changes: Vec<String>,
    /// Keys that went error -> ok (a fix, not a regression).
    pub fixed: Vec<String>,
    /// Prepush virtual time grew beyond tolerance.
    pub regressions: Vec<DiffRow>,
    /// Prepush virtual time shrank beyond tolerance.
    pub improvements: Vec<DiffRow>,
    pub unchanged: usize,
    /// Per-model geomean-speedup movement (informational, union of the
    /// models seen on either side, baseline order first).
    pub per_model: Vec<ModelAggregate>,
}

impl DiffReport {
    /// A gate should fail on these: lost scenarios, new errors, slower
    /// virtual time.
    pub fn has_regressions(&self) -> bool {
        !self.missing.is_empty()
            || !self.status_changes.is_empty()
            || !self.regressions.is_empty()
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        for k in &self.missing {
            let _ = writeln!(s, "MISSING     {k}");
        }
        for k in &self.added {
            let _ = writeln!(s, "NEW         {k}");
        }
        for k in &self.status_changes {
            let _ = writeln!(s, "BROKE       {k}");
        }
        for k in &self.fixed {
            let _ = writeln!(s, "FIXED       {k}");
        }
        let mut row = |label: &str, r: &DiffRow| {
            let _ = writeln!(
                s,
                "{label}  {:>12} -> {:>12} ns  ({:+.2}%)  {}",
                r.before_ns,
                r.after_ns,
                (r.ratio - 1.0) * 100.0,
                r.key
            );
        };
        for r in &self.regressions {
            row("REGRESSION", r);
        }
        for r in &self.improvements {
            row("IMPROVED  ", r);
        }
        if !self.per_model.is_empty() {
            let _ = writeln!(s, "per-model geomean speedup (baseline -> candidate):");
            for m in &self.per_model {
                let fmt = |v: Option<f64>| match v {
                    Some(g) => format!("{g:.3}x"),
                    None => "-".into(),
                };
                let delta = match (m.before, m.after) {
                    (Some(b), Some(a)) if b > 0.0 => {
                        format!("  ({:+.2}%)", (a / b - 1.0) * 100.0)
                    }
                    _ => String::new(),
                };
                let _ = writeln!(
                    s,
                    "  {:<16} {} -> {}{delta}",
                    m.model,
                    fmt(m.before),
                    fmt(m.after)
                );
            }
        }
        let _ = writeln!(
            s,
            "{} unchanged, {} regressions, {} improvements, {} missing, {} new, \
             {} broke, {} fixed",
            self.unchanged,
            self.regressions.len(),
            self.improvements.len(),
            self.missing.len(),
            self.added.len(),
            self.status_changes.len(),
            self.fixed.len()
        );
        s
    }
}

impl DiffReport {
    /// Render the report as a self-contained markdown document: verdict,
    /// summary counts, status flips, membership changes, virtual-time
    /// movements, and the per-model geomean table. Deterministic — byte
    /// output is a pure function of the report plus the labels, so the
    /// `--md-out` artifact is golden-testable.
    pub fn render_markdown(&self, baseline: &str, candidate: &str, tolerance: f64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# Sweep diff report\n");
        let _ = writeln!(
            s,
            "Baseline `{baseline}` vs candidate `{candidate}` — tolerance {:.2}%.\n",
            tolerance * 100.0
        );
        let _ = writeln!(
            s,
            "**Verdict: {}**\n",
            if self.has_regressions() {
                "REGRESSIONS"
            } else {
                "clean"
            }
        );
        let _ = writeln!(
            s,
            "| unchanged | regressions | improvements | missing | new | broke | fixed |"
        );
        let _ = writeln!(s, "|---:|---:|---:|---:|---:|---:|---:|");
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} | {} | {} |",
            self.unchanged,
            self.regressions.len(),
            self.improvements.len(),
            self.missing.len(),
            self.added.len(),
            self.status_changes.len(),
            self.fixed.len()
        );
        // Status-flip entries embed verbatim error text, and panic
        // payloads can be multi-line or contain backticks — neither
        // survives inside a single-line markdown code span.
        let inline = |k: &String| -> String {
            k.lines().next().unwrap_or("").replace('`', "'")
        };
        if !self.status_changes.is_empty() || !self.fixed.is_empty() {
            let _ = writeln!(s, "\n## Status flips\n");
            for k in &self.status_changes {
                let _ = writeln!(s, "- **broke** `{}`", inline(k));
            }
            for k in &self.fixed {
                let _ = writeln!(s, "- fixed `{}`", inline(k));
            }
        }
        if !self.missing.is_empty() || !self.added.is_empty() {
            let _ = writeln!(s, "\n## Membership\n");
            for k in &self.missing {
                let _ = writeln!(s, "- **missing** `{k}`");
            }
            for k in &self.added {
                let _ = writeln!(s, "- new `{k}`");
            }
        }
        if !self.regressions.is_empty() || !self.improvements.is_empty() {
            let _ = writeln!(s, "\n## Virtual-time movements\n");
            let _ = writeln!(s, "| change | scenario | before (ns) | after (ns) | Δ |");
            let _ = writeln!(s, "|---|---|---:|---:|---:|");
            for (label, rows) in [
                ("**regression**", &self.regressions),
                ("improvement", &self.improvements),
            ] {
                for r in rows {
                    let _ = writeln!(
                        s,
                        "| {label} | `{}` | {} | {} | {:+.2}% |",
                        r.key,
                        r.before_ns,
                        r.after_ns,
                        (r.ratio - 1.0) * 100.0
                    );
                }
            }
        }
        if !self.per_model.is_empty() {
            let _ = writeln!(s, "\n## Per-model geomean speedup\n");
            let _ = writeln!(s, "| model | baseline | candidate | Δ |");
            let _ = writeln!(s, "|---|---:|---:|---:|");
            for m in &self.per_model {
                let fmt = |v: Option<f64>| match v {
                    Some(g) => format!("{g:.3}x"),
                    None => "–".into(),
                };
                let delta = match (m.before, m.after) {
                    (Some(b), Some(a)) if b > 0.0 => {
                        format!("{:+.2}%", (a / b - 1.0) * 100.0)
                    }
                    _ => String::new(),
                };
                let _ = writeln!(
                    s,
                    "| {} | {} | {} | {delta} |",
                    m.model,
                    fmt(m.before),
                    fmt(m.after)
                );
            }
        }
        s
    }
}

/// The time a record is judged by: prepush when present (the optimized
/// path is what we guard), otherwise the original-variant time.
fn judged_ns(r: &SweepRecord) -> Option<u64> {
    r.prepush_ns.or(r.orig_ns)
}

/// Compare baseline `a` against candidate `b`. `tolerance` is the
/// allowed fractional growth of virtual time (0.0 = exact, the right
/// setting for this deterministic simulator).
///
/// Records pair up by scenario key *and occurrence index* — grids do not
/// dedup their axes, so an artifact may legitimately carry duplicate
/// keys (e.g. `.nps([4, 4])`), and the n-th baseline duplicate must
/// compare against the n-th candidate duplicate, not the first.
pub fn diff(a: &SweepResult, b: &SweepResult, tolerance: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let mut b_by_key: std::collections::HashMap<String, Vec<&SweepRecord>> =
        std::collections::HashMap::new();
    for rb in &b.records {
        b_by_key.entry(rb.spec.key()).or_default().push(rb);
    }
    let mut a_count: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for ra in &a.records {
        let key = ra.spec.key();
        let occurrence = a_count.entry(key.clone()).or_insert(0);
        let candidate = b_by_key.get(&key).and_then(|v| v.get(*occurrence)).copied();
        *occurrence += 1;
        let Some(rb) = candidate else {
            report.missing.push(key);
            continue;
        };
        match (ra.is_ok(), rb.is_ok()) {
            (true, false) => {
                report.status_changes.push(format!(
                    "{key}: ok -> error ({})",
                    rb.error().unwrap_or("")
                ));
                continue;
            }
            (false, true) => {
                report.fixed.push(format!("{key}: error -> ok"));
                continue;
            }
            (false, false) => {
                report.unchanged += 1;
                continue;
            }
            (true, true) => {}
        }
        let (Some(before), Some(after)) = (judged_ns(ra), judged_ns(rb)) else {
            report.unchanged += 1;
            continue;
        };
        let ratio = after as f64 / before.max(1) as f64;
        let row = DiffRow {
            key,
            before_ns: before,
            after_ns: after,
            ratio,
        };
        if ratio > 1.0 + tolerance {
            report.regressions.push(row);
        } else if ratio < 1.0 - tolerance && after != before {
            report.improvements.push(row);
        } else {
            report.unchanged += 1;
        }
    }
    // Candidate records beyond the baseline's occurrence count are new.
    let mut b_seen: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for rb in &b.records {
        let key = rb.spec.key();
        let occurrence = b_seen.entry(key.clone()).or_insert(0);
        if *occurrence >= a_count.get(&key).copied().unwrap_or(0) {
            report.added.push(key.clone());
        }
        *occurrence += 1;
    }
    // Per-model aggregates: union of both sides, baseline order first.
    for (model, before) in &a.summary.per_model {
        report.per_model.push(ModelAggregate {
            model: model.clone(),
            before: Some(*before),
            after: b
                .summary
                .per_model
                .iter()
                .find(|(m, _)| m == model)
                .map(|(_, g)| *g),
        });
    }
    for (model, after) in &b.summary.per_model {
        if !report.per_model.iter().any(|m| m.model == *model) {
            report.per_model.push(ModelAggregate {
                model: model.clone(),
                before: None,
                after: Some(*after),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{summarize, RunStatus};
    use crate::spec::{ModelSpec, ScenarioSpec, SizeClass, Variant};

    fn rec(workload: &str, prepush_ns: u64) -> SweepRecord {
        SweepRecord {
            spec: ScenarioSpec {
                workload: workload.into(),
                size: SizeClass::Small,
                np: 2,
                model: ModelSpec::Mpich,
                tile_size: None,
                variant: Variant::Compare,
            },
            status: RunStatus::Ok,
            tile_size: None,
            strategy: None,
            orig_ns: Some(2000),
            prepush_ns: Some(prepush_ns),
            orig_exposed_ns: None,
            prepush_exposed_ns: None,
            speedup: Some(2000.0 / prepush_ns as f64),
            input_hash: None,
            wall_ms: 0.0,
        }
    }

    fn result(records: Vec<SweepRecord>) -> SweepResult {
        let summary = summarize(&records, 0.0);
        SweepResult {
            records,
            summary,
            timing: None,
        }
    }

    #[test]
    fn detects_regressions_improvements_and_membership() {
        let a = result(vec![rec("w1", 1000), rec("w2", 1000), rec("w3", 1000)]);
        let b = result(vec![rec("w1", 1200), rec("w2", 900), rec("w4", 500)]);
        let d = diff(&a, &b, 0.0);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].before_ns, 1000);
        assert_eq!(d.regressions[0].after_ns, 1200);
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.missing, vec![rec("w3", 1).spec.key()]);
        assert_eq!(d.added, vec![rec("w4", 1).spec.key()]);
        assert!(d.has_regressions());
        let text = d.render();
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("+20.00%"));
    }

    #[test]
    fn tolerance_absorbs_small_drift() {
        let a = result(vec![rec("w1", 1000)]);
        let b = result(vec![rec("w1", 1040)]);
        assert!(diff(&a, &b, 0.0).has_regressions());
        let d = diff(&a, &b, 0.05);
        assert!(!d.has_regressions());
        assert_eq!(d.unchanged, 1);
    }

    #[test]
    fn breaking_a_scenario_is_a_regression_fixing_one_is_not() {
        let ok = result(vec![rec("w1", 1000)]);
        let mut broken_rec = rec("w1", 1000);
        broken_rec.status = RunStatus::Error("analysis died".into());
        let broken = result(vec![broken_rec]);

        let d = diff(&ok, &broken, 0.0);
        assert_eq!(d.status_changes.len(), 1);
        assert!(d.has_regressions());
        assert!(d.status_changes[0].contains("analysis died"));
        assert!(d.render().contains("BROKE"));

        // The other direction is a fix: the gate must stay green.
        let d = diff(&broken, &ok, 0.0);
        assert_eq!(d.fixed.len(), 1);
        assert!(!d.has_regressions());
        assert!(d.render().contains("FIXED"));
    }

    #[test]
    fn identical_results_are_clean() {
        let a = result(vec![rec("w1", 1000), rec("w2", 800)]);
        let d = diff(&a, &a.clone(), 0.0);
        assert!(!d.has_regressions());
        assert_eq!(d.unchanged, 2);
        assert!(d.improvements.is_empty());
    }

    #[test]
    fn per_model_aggregates_reported() {
        let a = result(vec![rec("w1", 1000), rec("w2", 1000)]);
        let b = result(vec![rec("w1", 800), rec("w2", 900)]);
        let d = diff(&a, &b, 0.0);
        assert_eq!(d.per_model.len(), 1);
        assert_eq!(d.per_model[0].model, "mpich");
        let before = d.per_model[0].before.unwrap();
        let after = d.per_model[0].after.unwrap();
        assert!(after > before, "candidate got faster: {before} -> {after}");
        let text = d.render();
        assert!(text.contains("per-model geomean speedup"));
        assert!(text.contains("mpich"));
    }

    #[test]
    fn markdown_report_covers_flips_movements_and_models() {
        let a = result(vec![rec("w1", 1000), rec("w2", 1000), rec("w3", 1000)]);
        let mut broke = rec("w2", 1000);
        broke.status = RunStatus::Error("died".into());
        let b = result(vec![rec("w1", 1200), broke, rec("w4", 500)]);
        let d = diff(&a, &b, 0.0);
        let md = d.render_markdown("old.json", "new.json", 0.0);
        assert!(md.starts_with("# Sweep diff report"), "{md}");
        assert!(md.contains("**Verdict: REGRESSIONS**"), "{md}");
        assert!(md.contains("`old.json`") && md.contains("`new.json`"), "{md}");
        assert!(md.contains("- **broke**") && md.contains("died"), "{md}");
        assert!(md.contains("- **missing**") && md.contains("- new"), "{md}");
        assert!(md.contains("| **regression** |") && md.contains("+20.00%"), "{md}");
        assert!(md.contains("## Per-model geomean speedup"), "{md}");
        assert!(md.contains("| mpich |"), "{md}");
        // Deterministic bytes: same inputs, same document.
        assert_eq!(md, d.render_markdown("old.json", "new.json", 0.0));

        // A clean self-diff says so and omits the empty sections.
        let clean = diff(&a, &a.clone(), 0.0).render_markdown("a", "a", 0.0);
        assert!(clean.contains("**Verdict: clean**"), "{clean}");
        assert!(!clean.contains("## Status flips"), "{clean}");
        assert!(!clean.contains("## Virtual-time movements"), "{clean}");
    }

    #[test]
    fn markdown_survives_multiline_and_backtick_panic_payloads() {
        let a = result(vec![rec("w1", 1000)]);
        let mut broke = rec("w1", 1000);
        broke.status =
            RunStatus::Error("assertion failed: `left == right`\n  left: 1\n right: 2".into());
        let b = result(vec![broke]);
        let md = diff(&a, &b, 0.0).render_markdown("a", "b", 0.0);
        let broke_line = md
            .lines()
            .find(|l| l.starts_with("- **broke**"))
            .expect("report lists the flip");
        // One list item, no raw backticks from the payload, no payload
        // newlines splitting the item.
        assert!(!broke_line.contains("`left"), "{broke_line}");
        assert!(broke_line.contains("assertion failed"), "{broke_line}");
        assert!(!md.contains("  left: 1"), "{md}");
    }

    #[test]
    fn duplicate_keys_pair_by_occurrence() {
        // Grids don't dedup axes, so duplicate keys are legal; the
        // regression hiding in the SECOND duplicate must be caught.
        let a = result(vec![rec("w1", 1000), rec("w1", 1000)]);
        let b = result(vec![rec("w1", 1000), rec("w1", 1500)]);
        let d = diff(&a, &b, 0.0);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].after_ns, 1500);
        assert_eq!(d.unchanged, 1);
        assert!(d.has_regressions());

        // Extra duplicates on either side surface as missing/new.
        let d = diff(&a, &result(vec![rec("w1", 1000)]), 0.0);
        assert_eq!(d.missing.len(), 1);
        let d = diff(&result(vec![rec("w1", 1000)]), &a, 0.0);
        assert_eq!(d.added.len(), 1);
        assert!(!d.has_regressions());
    }
}
