//! Structured progress events for the execution stack.
//!
//! Library code in this crate never writes to stdout/stderr (pinned by
//! `tests/embed_capture.rs`): anything a front end might want to show —
//! sweep started, scenario started/finished, row counts, wall totals —
//! is emitted as a [`ProgressEvent`] into an [`EventSink`] the caller
//! supplies. The one-shot CLI renders its tables from the returned
//! [`crate::SweepResult`] (exactly the bytes it always printed); the
//! sweep service appends events to per-job logs and streams them to HTTP
//! clients; tests capture them in a [`MemorySink`]. Embedding the driver
//! with a [`NullSink`] produces no output at all.
//!
//! Events are *informational*: nothing about simulation semantics — and
//! therefore nothing about artifact bytes — depends on whether anyone is
//! listening. Wall-clock fields carry host time and are as
//! non-deterministic as the `timing` section they mirror.

use crate::json::Json;
use std::sync::Mutex;

/// One structured progress event from the sweep machinery (or the job
/// core wrapping it). Scenario identity is the canonical scenario key
/// ([`crate::ScenarioSpec::key`]); there is deliberately no grid index,
/// because incremental sweeps interleave reused and fresh rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A job entered the queue (emitted by the job core, not by `exec`).
    JobAccepted {
        job: u64,
        /// Scenarios the job's grid expands to.
        scenarios: usize,
        /// Jobs ahead of this one in the FIFO queue.
        queued_ahead: usize,
    },
    /// A sweep began executing.
    SweepStarted {
        scenarios: usize,
        /// True when baseline rows may be reused (`--incremental`).
        incremental: bool,
    },
    /// One scenario began simulating.
    ScenarioStarted { key: String },
    /// One scenario finished (or was reused from an incremental
    /// baseline, in which case nothing simulated and `wall_ms` is 0).
    ScenarioFinished {
        key: String,
        ok: bool,
        /// Every compilation this scenario needs was already in the
        /// process-wide compile cache when it started (a conservative
        /// probe: concurrent fills read as cold).
        cache_warm: bool,
        /// Reused from the incremental baseline instead of simulated.
        reused: bool,
        wall_ms: f64,
    },
    /// The sweep completed; row counts, wall total, and the compile
    /// cache's hit/miss delta for the whole run.
    SweepFinished {
        scenarios: usize,
        ok: usize,
        errors: usize,
        wall_ms: f64,
        cache_hits: u64,
        cache_misses: u64,
        reused_rows: usize,
    },
}

impl ProgressEvent {
    /// Stable kind tag (the `event` field of the JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            ProgressEvent::JobAccepted { .. } => "job-accepted",
            ProgressEvent::SweepStarted { .. } => "sweep-started",
            ProgressEvent::ScenarioStarted { .. } => "scenario-started",
            ProgressEvent::ScenarioFinished { .. } => "scenario-finished",
            ProgressEvent::SweepFinished { .. } => "sweep-finished",
        }
    }

    /// The event as a JSON object (what `GET /jobs/:id/events` streams,
    /// one compact object per line).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("event".to_string(), Json::Str(self.kind().into()))];
        match self {
            ProgressEvent::JobAccepted {
                job,
                scenarios,
                queued_ahead,
            } => {
                fields.push(("job".into(), Json::Int(*job as i64)));
                fields.push(("scenarios".into(), Json::Int(*scenarios as i64)));
                fields.push(("queued_ahead".into(), Json::Int(*queued_ahead as i64)));
            }
            ProgressEvent::SweepStarted {
                scenarios,
                incremental,
            } => {
                fields.push(("scenarios".into(), Json::Int(*scenarios as i64)));
                fields.push(("incremental".into(), Json::Bool(*incremental)));
            }
            ProgressEvent::ScenarioStarted { key } => {
                fields.push(("scenario".into(), Json::Str(key.clone())));
            }
            ProgressEvent::ScenarioFinished {
                key,
                ok,
                cache_warm,
                reused,
                wall_ms,
            } => {
                fields.push(("scenario".into(), Json::Str(key.clone())));
                fields.push(("ok".into(), Json::Bool(*ok)));
                fields.push(("cache_warm".into(), Json::Bool(*cache_warm)));
                fields.push(("reused".into(), Json::Bool(*reused)));
                fields.push(("wall_ms".into(), Json::Float(*wall_ms)));
            }
            ProgressEvent::SweepFinished {
                scenarios,
                ok,
                errors,
                wall_ms,
                cache_hits,
                cache_misses,
                reused_rows,
            } => {
                fields.push(("scenarios".into(), Json::Int(*scenarios as i64)));
                fields.push(("ok".into(), Json::Int(*ok as i64)));
                fields.push(("errors".into(), Json::Int(*errors as i64)));
                fields.push(("wall_ms".into(), Json::Float(*wall_ms)));
                fields.push(("cache_hits".into(), Json::Int(*cache_hits as i64)));
                fields.push(("cache_misses".into(), Json::Int(*cache_misses as i64)));
                fields.push(("reused_rows".into(), Json::Int(*reused_rows as i64)));
            }
        }
        Json::Obj(fields)
    }
}

/// Where progress events go. Implementations must tolerate concurrent
/// emission: sweep workers run in parallel, so `ScenarioStarted` /
/// `ScenarioFinished` events for different scenarios interleave in
/// completion order (sweep-level events are totally ordered around them).
pub trait EventSink: Sync {
    fn emit(&self, event: ProgressEvent);
}

/// Discards everything — embedding the driver produces no output.
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: ProgressEvent) {}
}

/// Collects events in memory (tests, and anything that wants to render
/// after the fact).
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<ProgressEvent>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything emitted so far.
    pub fn events(&self) -> Vec<ProgressEvent> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drain the collected events.
    pub fn take(&self) -> Vec<ProgressEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: ProgressEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::write_json_compact;

    #[test]
    fn events_serialize_compactly_with_kind_tags() {
        let ev = ProgressEvent::ScenarioFinished {
            key: "direct2d/small/np2/mpich-gm".into(),
            ok: true,
            cache_warm: false,
            reused: false,
            wall_ms: 0.0,
        };
        let line = write_json_compact(&ev.to_json());
        assert!(line.starts_with("{\"event\": \"scenario-finished\""), "{line}");
        assert!(!line.contains('\n'), "compact form is single-line: {line}");
        assert!(line.contains("\"cache_warm\": false"));
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.emit(ProgressEvent::SweepStarted {
            scenarios: 2,
            incremental: false,
        });
        sink.emit(ProgressEvent::ScenarioStarted { key: "a".into() });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "sweep-started");
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn null_sink_discards() {
        NullSink.emit(ProgressEvent::ScenarioStarted { key: "x".into() });
    }
}
