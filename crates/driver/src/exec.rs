//! The parallel sweep executor. Scenarios are dealt round-robin into
//! per-worker deques; each worker pops from the front of its own deque
//! and, when empty, steals from the back of a victim's, so an expensive
//! scenario never idles the other cores. Results land in index-addressed
//! slots, making the final record order a pure function of the grid —
//! identical regardless of thread count or completion order. A panicking
//! scenario (analysis bug, equivalence failure, unknown workload) becomes
//! an *error row*, not a dead sweep.
//!
//! Threading: sweep workers run as *helper* tasks on the persistent
//! [`clustersim::pool`] (no fresh OS threads per sweep), and each
//! scenario's simulated ranks are scheduled onto the same pool under
//! ticket admission — a worker thus *is* its scenario's rank 0, and total
//! live threads stay bounded by the pool's capacity plus the largest
//! admitted scenario instead of growing with the grid.

use crate::cache::{self, CacheStats};
use crate::event::{EventSink, NullSink, ProgressEvent};
use crate::measure::{measure_cached, measure_original_cached};
use crate::spec::{ScenarioSpec, Variant};
use crate::SweepGrid;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// Outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    Ok,
    /// The scenario failed; the row records why and the sweep continues.
    Error(String),
}

/// One row of the sweep artifact: the spec plus everything measured.
/// Fields are `None` when the variant doesn't produce them (e.g. an
/// `original`-only run has no prepush time) or the scenario errored.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    pub spec: ScenarioSpec,
    pub status: RunStatus,
    /// Tile size actually used (the heuristic's choice when the spec
    /// requested `None`).
    pub tile_size: Option<i64>,
    pub strategy: Option<String>,
    pub orig_ns: Option<u64>,
    pub prepush_ns: Option<u64>,
    pub orig_exposed_ns: Option<u64>,
    pub prepush_exposed_ns: Option<u64>,
    pub speedup: Option<f64>,
    /// Content hash of the scenario's simulation inputs
    /// ([`cache::scenario_input_hash`]): the `--incremental` reuse key.
    /// `None` when the hash couldn't be computed (unknown workload) or
    /// the row came from a pre-v3 artifact. Deterministic, so it survives
    /// normalization and lives in committed artifacts.
    pub input_hash: Option<u64>,
    /// Host wall-clock spent simulating this scenario, in milliseconds.
    /// Informative only — normalized to 0 in committed artifacts so the
    /// JSON stays byte-deterministic across runs and machines.
    pub wall_ms: f64,
}

impl SweepRecord {
    pub fn is_ok(&self) -> bool {
        self.status == RunStatus::Ok
    }

    pub fn error(&self) -> Option<&str> {
        match &self.status {
            RunStatus::Ok => None,
            RunStatus::Error(e) => Some(e),
        }
    }

    fn failed(spec: &ScenarioSpec, message: String, wall_ms: f64) -> SweepRecord {
        SweepRecord {
            spec: spec.clone(),
            status: RunStatus::Error(message),
            tile_size: None,
            strategy: None,
            orig_ns: None,
            prepush_ns: None,
            orig_exposed_ns: None,
            prepush_exposed_ns: None,
            speedup: None,
            input_hash: None,
            wall_ms,
        }
    }
}

/// Sweep-wide aggregates over the `compare` records.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    pub scenarios: usize,
    pub ok: usize,
    pub errors: usize,
    /// Geometric mean of the speedups of all ok `compare` records.
    pub geomean_speedup: Option<f64>,
    /// (scenario key, speedup) extremes.
    pub best: Option<(String, f64)>,
    pub worst: Option<(String, f64)>,
    /// Per-model-id geomean speedup, in first-seen record order.
    pub per_model: Vec<(String, f64)>,
    /// Total host wall-clock of the sweep in milliseconds (normalized to
    /// 0 in committed artifacts).
    pub wall_ms: f64,
}

/// Host-side timing of one sweep — the `overlap-sweep/v2` artifact's
/// optional `timing` section. Never part of the normalized (committed)
/// form: wall-clock varies across machines and runs by design.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTiming {
    /// Total sweep wall-clock in milliseconds.
    pub wall_ms_total: f64,
    /// Rank-pool ticket capacity during the sweep.
    pub pool_capacity: usize,
    /// High-water mark of live pool worker threads (process lifetime).
    pub workers_high_water: usize,
    /// Compilation-cache hits during this sweep (delta of the process
    /// cache's counters across the run).
    pub cache_hits: u64,
    /// Compilation-cache misses (= compilations performed) this sweep.
    pub cache_misses: u64,
    /// Baseline rows reused instead of re-simulated (`--incremental`
    /// only; 0 for a plain sweep).
    pub reused_rows: usize,
    /// `(scenario key, wall_ms)` per record, in record order.
    pub per_scenario: Vec<(String, f64)>,
}

/// Everything one sweep produced: ordered records plus aggregates, plus
/// host timing when the sweep was actually executed (absent after reading
/// a normalized artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    pub records: Vec<SweepRecord>,
    pub summary: SweepSummary,
    pub timing: Option<SweepTiming>,
}

impl SweepResult {
    /// A copy with every wall-clock field zeroed and the timing section
    /// dropped: virtual times and speedups are deterministic, host
    /// wall-clock is not, so committed artifacts (and byte-equality
    /// assertions) use this form.
    pub fn normalized(&self) -> SweepResult {
        let mut out = self.clone();
        for r in &mut out.records {
            r.wall_ms = 0.0;
        }
        out.summary.wall_ms = 0.0;
        out.timing = None;
        out
    }
}

/// Compute the aggregates for a record list.
///
/// Only *ok* records with a finite, positive speedup contribute to the
/// geomeans and extremes. Error rows are skipped even when they carry a
/// `speedup` value (a parsed artifact may — records are data, not
/// provenance), so a model whose scenarios all errored simply has no
/// per-model aggregate instead of contributing a NaN-shaped one.
pub fn summarize(records: &[SweepRecord], wall_ms: f64) -> SweepSummary {
    let ok = records.iter().filter(|r| r.is_ok()).count();
    let mut best: Option<(String, f64)> = None;
    let mut worst: Option<(String, f64)> = None;
    let mut by_model: Vec<(String, Vec<f64>)> = Vec::new();
    for r in records {
        let Some(s) = r.speedup else { continue };
        if !r.is_ok() || !s.is_finite() || s <= 0.0 {
            continue;
        }
        if best.as_ref().is_none_or(|(_, b)| s > *b) {
            best = Some((r.spec.key(), s));
        }
        if worst.as_ref().is_none_or(|(_, w)| s < *w) {
            worst = Some((r.spec.key(), s));
        }
        let id = r.spec.model.id();
        match by_model.iter_mut().find(|(m, _)| *m == id) {
            Some((_, v)) => v.push(s),
            None => by_model.push((id, vec![s])),
        }
    }
    let geomean = |v: &[f64]| -> Option<f64> {
        if v.is_empty() {
            None
        } else {
            Some((v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp())
        }
    };
    let all: Vec<f64> = by_model.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    SweepSummary {
        scenarios: records.len(),
        ok,
        errors: records.len() - ok,
        geomean_speedup: geomean(&all),
        best,
        worst,
        per_model: by_model
            .iter()
            .map(|(m, v)| (m.clone(), geomean(v).unwrap_or(1.0)))
            .collect(),
        wall_ms,
    }
}

/// Run one scenario, isolating panics into an error row. Compilation is
/// served from the process-wide [`cache::global`] compile cache.
pub fn run_scenario(spec: &ScenarioSpec) -> SweepRecord {
    run_scenario_in(spec, cache::global())
}

/// [`run_scenario`] against an explicit cache (tests use private caches
/// to observe exact hit/miss counts).
pub fn run_scenario_in(spec: &ScenarioSpec, compile_cache: &cache::CompileCache) -> SweepRecord {
    let t0 = Instant::now();
    // The input hash is computed as soon as the workload exists, outside
    // the Result flow, so even a row that *errors* mid-measurement still
    // carries it (an `--incremental` re-run must see the error row's
    // identity to know its inputs moved — though error rows are never
    // reused regardless).
    let hash_slot = Cell::new(None::<u64>);
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<SweepRecord, String> {
        let entry = workloads::find(&spec.workload).ok_or_else(|| {
            let known: Vec<&str> = workloads::registry().iter().map(|e| e.name).collect();
            format!(
                "unknown workload `{}` (known: {})",
                spec.workload,
                known.join(", ")
            )
        })?;
        let w = (entry.make)(spec.size, spec.np);
        hash_slot.set(Some(cache::scenario_input_hash_with(
            spec,
            &*w,
            workloads::registry_fingerprint(),
        )));
        let model = spec.model.to_model();
        let mut rec = SweepRecord::failed(spec, String::new(), 0.0);
        rec.status = RunStatus::Ok;
        match spec.variant {
            Variant::Compare => {
                let m = measure_cached(compile_cache, spec, &*w, &model);
                rec.tile_size = m.tile_size;
                rec.strategy = m.strategy.clone();
                rec.orig_ns = Some(m.orig.as_ns());
                rec.prepush_ns = Some(m.prepush.as_ns());
                rec.orig_exposed_ns = Some(m.orig_exposed.as_ns());
                rec.prepush_exposed_ns = Some(m.prepush_exposed.as_ns());
                rec.speedup = Some(m.speedup());
            }
            Variant::Original => {
                let (makespan, exposed) =
                    measure_original_cached(compile_cache, spec, &*w, &model);
                rec.orig_ns = Some(makespan.as_ns());
                rec.orig_exposed_ns = Some(exposed.as_ns());
            }
            Variant::Prepush => {
                let (out, compiled) = compile_cache.transformed(spec, &*w, &model);
                rec.tile_size = out.report.opportunities.iter().find_map(|o| o.tile_size);
                rec.strategy = out
                    .report
                    .opportunities
                    .iter()
                    .find_map(|o| o.strategy.map(|s| s.to_string()));
                let r = compiled
                    .run(spec.np, &model)
                    .map_err(|e| format!("transformed run failed: {e}"))?;
                rec.prepush_ns = Some(r.report.makespan().as_ns());
                rec.prepush_exposed_ns = Some(r.report.max_exposed_comm().as_ns());
            }
        }
        Ok(rec)
    }));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut rec = match outcome {
        Ok(Ok(mut rec)) => {
            rec.wall_ms = wall_ms;
            rec
        }
        Ok(Err(msg)) => SweepRecord::failed(spec, msg, wall_ms),
        Err(panic) => SweepRecord::failed(spec, panic_message(panic), wall_ms),
    };
    rec.input_hash = hash_slot.get();
    rec
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "scenario panicked (non-string payload)".to_string()
    }
}

/// Expand `grid` and run every scenario on `threads` workers (0 = one per
/// available core, capped by the scenario count).
pub fn run_sweep(grid: &SweepGrid, threads: usize) -> SweepResult {
    run_sweep_with(grid, threads, &NullSink)
}

/// [`run_sweep`] with structured progress reported into `sink` (sweep
/// started/finished plus per-scenario events; see [`crate::event`]).
/// The sink observes, never steers: results are identical whatever it is.
pub fn run_sweep_with(grid: &SweepGrid, threads: usize, sink: &dyn EventSink) -> SweepResult {
    let specs = grid.expand();
    sink.emit(ProgressEvent::SweepStarted {
        scenarios: specs.len(),
        incremental: false,
    });
    let t0 = Instant::now();
    let cache_before = cache::global().stats();
    let records = run_specs_with(&specs, threads, sink);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let result = finish_sweep(records, wall_ms, cache_before, 0);
    emit_finished(sink, &result);
    result
}

fn emit_finished(sink: &dyn EventSink, result: &SweepResult) {
    let t = result.timing.as_ref();
    sink.emit(ProgressEvent::SweepFinished {
        scenarios: result.summary.scenarios,
        ok: result.summary.ok,
        errors: result.summary.errors,
        wall_ms: result.summary.wall_ms,
        cache_hits: t.map_or(0, |t| t.cache_hits),
        cache_misses: t.map_or(0, |t| t.cache_misses),
        reused_rows: t.map_or(0, |t| t.reused_rows),
    });
}

fn finish_sweep(
    records: Vec<SweepRecord>,
    wall_ms: f64,
    cache_before: CacheStats,
    reused_rows: usize,
) -> SweepResult {
    let summary = summarize(&records, wall_ms);
    let cache_delta = cache::global().stats().since(&cache_before);
    let pool_stats = clustersim::pool::stats();
    let timing = SweepTiming {
        wall_ms_total: wall_ms,
        pool_capacity: clustersim::pool::capacity(),
        workers_high_water: pool_stats.workers_high_water,
        cache_hits: cache_delta.hits,
        cache_misses: cache_delta.misses,
        reused_rows,
        per_scenario: records
            .iter()
            .map(|r| (r.spec.key(), r.wall_ms))
            .collect(),
    };
    SweepResult {
        records,
        summary,
        timing: Some(timing),
    }
}

/// What [`run_sweep_incremental`] did: the merged result plus, per
/// record, whether it was reused from the baseline (true) or freshly
/// simulated (false).
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalOutcome {
    pub result: SweepResult,
    /// Parallel to `result.records`.
    pub reused: Vec<bool>,
}

/// Expand `grid` and re-simulate only the cells whose inputs moved since
/// `baseline`; everything else is reused from the baseline row.
///
/// A baseline row is reusable for a cell iff all of:
/// - its spec key equals the cell's key,
/// - its status is ok — error rows are *never* reused, even with a
///   matching hash (the error may have been environmental, and a reused
///   error teaches nothing), and
/// - it carries an `input_hash` equal to the cell's freshly computed one
///   (a missing hash — pre-v3 baseline, unknown workload — is a miss).
///
/// Virtual times are a deterministic function of the hashed inputs, so
/// the merged result normalizes byte-identically to a cold full run;
/// reused rows get `wall_ms = 0` (no host time was spent on them).
pub fn run_sweep_incremental(
    grid: &SweepGrid,
    threads: usize,
    baseline: &SweepResult,
) -> IncrementalOutcome {
    run_sweep_incremental_with(grid, threads, baseline, &NullSink)
}

/// [`run_sweep_incremental`] with progress events: reused rows emit a
/// `ScenarioFinished { reused: true }` (nothing simulated, no matching
/// `ScenarioStarted`), fresh cells emit the usual started/finished pair.
pub fn run_sweep_incremental_with(
    grid: &SweepGrid,
    threads: usize,
    baseline: &SweepResult,
    sink: &dyn EventSink,
) -> IncrementalOutcome {
    let specs = grid.expand();
    sink.emit(ProgressEvent::SweepStarted {
        scenarios: specs.len(),
        incremental: true,
    });
    let t0 = Instant::now();
    let cache_before = cache::global().stats();

    let by_key: HashMap<String, &SweepRecord> = baseline
        .records
        .iter()
        .map(|r| (r.spec.key(), r))
        .collect();

    let mut merged: Vec<Option<SweepRecord>> = vec![None; specs.len()];
    let mut reused = vec![false; specs.len()];
    let mut fresh_idx = Vec::new();
    let mut fresh_specs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let reusable = cache::scenario_input_hash(spec).and_then(|h| {
            by_key
                .get(&spec.key())
                .filter(|b| b.is_ok() && b.input_hash == Some(h))
        });
        match reusable {
            Some(row) => {
                let mut row = (*row).clone();
                row.wall_ms = 0.0;
                sink.emit(ProgressEvent::ScenarioFinished {
                    key: row.spec.key(),
                    ok: row.is_ok(),
                    cache_warm: false,
                    reused: true,
                    wall_ms: 0.0,
                });
                merged[i] = Some(row);
                reused[i] = true;
            }
            None => {
                fresh_idx.push(i);
                fresh_specs.push(spec.clone());
            }
        }
    }

    let fresh = run_specs_with(&fresh_specs, threads, sink);
    for (i, rec) in fresh_idx.into_iter().zip(fresh) {
        merged[i] = Some(rec);
    }
    let records: Vec<SweepRecord> = merged
        .into_iter()
        .map(|r| r.expect("every cell is either reused or freshly run"))
        .collect();

    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reused_rows = reused.iter().filter(|r| **r).count();
    let outcome = IncrementalOutcome {
        result: finish_sweep(records, wall_ms, cache_before, reused_rows),
        reused,
    };
    emit_finished(sink, &outcome.result);
    outcome
}

/// Run an explicit scenario list in parallel; records come back in spec
/// order regardless of which worker finished which scenario when.
pub fn run_specs(specs: &[ScenarioSpec], threads: usize) -> Vec<SweepRecord> {
    run_specs_with(specs, threads, &NullSink)
}

/// Run one scenario, emitting the started/finished event pair around it.
fn run_scenario_reported(spec: &ScenarioSpec, sink: &dyn EventSink) -> SweepRecord {
    sink.emit(ProgressEvent::ScenarioStarted { key: spec.key() });
    let cache_warm = cache::global().warm_for(spec);
    let rec = run_scenario(spec);
    sink.emit(ProgressEvent::ScenarioFinished {
        key: rec.spec.key(),
        ok: rec.is_ok(),
        cache_warm,
        reused: false,
        wall_ms: rec.wall_ms,
    });
    rec
}

/// [`run_specs`] with per-scenario progress events. Events for different
/// scenarios interleave in completion order; the *records* still come
/// back in spec order.
pub fn run_specs_with(
    specs: &[ScenarioSpec],
    threads: usize,
    sink: &dyn EventSink,
) -> Vec<SweepRecord> {
    if specs.is_empty() {
        return Vec::new();
    }
    let nthreads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .min(specs.len())
    .max(1);

    if nthreads == 1 {
        return specs
            .iter()
            .map(|spec| run_scenario_reported(spec, sink))
            .collect();
    }

    // Round-robin deal into per-worker deques.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..nthreads)
        .map(|w| Mutex::new((w..specs.len()).step_by(nthreads).collect()))
        .collect();
    let slots: Vec<Mutex<Option<SweepRecord>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();

    // Worker loops run as *helper* tasks on the persistent pool (the
    // first on this thread): no fresh OS threads per sweep, and each
    // worker becomes rank 0 of the scenarios it runs.
    let workers: Vec<Box<dyn FnOnce() + Send + '_>> = (0..nthreads)
        .map(|me| {
            let deques = &deques;
            let slots = &slots;
            Box::new(move || loop {
                // Own work first (front), then steal from a victim (back).
                let mut next = deques[me].lock().unwrap().pop_front();
                if next.is_none() {
                    for v in 1..nthreads {
                        next = deques[(me + v) % nthreads].lock().unwrap().pop_back();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                let Some(idx) = next else { break };
                let rec = run_scenario_reported(&specs[idx], sink);
                *slots[idx].lock().unwrap() = Some(rec);
            }) as _
        })
        .collect();
    clustersim::pool::scope_helpers(workers);

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every scenario index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelSpec, SizeClass};

    fn tiny_spec(workload: &str) -> ScenarioSpec {
        ScenarioSpec {
            workload: workload.into(),
            size: SizeClass::Small,
            np: 2,
            model: ModelSpec::MpichGm,
            tile_size: None,
            variant: Variant::Compare,
        }
    }

    #[test]
    fn unknown_workload_is_an_error_row_not_a_dead_sweep() {
        let specs = vec![tiny_spec("no-such-kernel"), tiny_spec("direct2d")];
        let recs = run_specs(&specs, 2);
        assert_eq!(recs.len(), 2);
        assert!(recs[0].error().unwrap().contains("unknown workload"));
        assert!(recs[1].is_ok());
        assert!(recs[1].speedup.is_some());
    }

    #[test]
    fn variants_populate_the_matching_fields() {
        let mut orig = tiny_spec("direct2d");
        orig.variant = Variant::Original;
        let mut pre = tiny_spec("direct2d");
        pre.variant = Variant::Prepush;
        let recs = run_specs(&[orig, pre], 1);
        assert!(recs[0].orig_ns.is_some() && recs[0].prepush_ns.is_none());
        assert!(recs[1].prepush_ns.is_some() && recs[1].orig_ns.is_none());
        assert!(recs[1].strategy.is_some());
        assert!(recs[0].speedup.is_none() && recs[1].speedup.is_none());
    }

    #[test]
    fn summary_aggregates_compare_records() {
        let recs = run_specs(&[tiny_spec("direct2d"), tiny_spec("indirect")], 2);
        let s = summarize(&recs, 12.5);
        assert_eq!(s.scenarios, 2);
        assert_eq!(s.ok, 2);
        assert_eq!(s.errors, 0);
        assert!(s.geomean_speedup.unwrap() > 0.0);
        assert_eq!(s.per_model.len(), 1);
        assert_eq!(s.per_model[0].0, "mpich-gm");
        assert_eq!(s.wall_ms, 12.5);
        assert!(s.best.is_some() && s.worst.is_some());
    }

    #[test]
    fn summary_skips_error_rows_and_degenerate_speedups() {
        // An artifact (records are data — they may come from a file, not
        // a fresh run) where one model's rows all errored yet still carry
        // speedup values, plus ok rows with NaN/zero speedups: none of
        // these may leak into the aggregates.
        let mut errored = SweepRecord {
            status: RunStatus::Error("sim exploded".into()),
            ..run_scenario(&tiny_spec("direct2d"))
        };
        errored.spec.model = ModelSpec::Mpich;
        errored.speedup = Some(7.5); // stale value on an error row
        let mut nan_row = run_scenario(&tiny_spec("direct2d"));
        nan_row.speedup = Some(f64::NAN);
        let mut zero_row = run_scenario(&tiny_spec("direct2d"));
        zero_row.speedup = Some(0.0);
        let good = run_scenario(&tiny_spec("indirect"));
        let good_speedup = good.speedup.unwrap();

        let s = summarize(&[errored, nan_row, zero_row, good], 0.0);
        assert_eq!(s.scenarios, 4);
        assert_eq!(s.errors, 1);
        // Only the good row aggregates: one model (mpich-gm), no NaN.
        assert_eq!(s.per_model.len(), 1);
        assert_eq!(s.per_model[0].0, "mpich-gm");
        assert!(s.per_model[0].1.is_finite());
        assert_eq!(s.geomean_speedup, Some(good_speedup));
        assert_eq!(s.best.as_ref().unwrap().1, good_speedup);
        assert_eq!(s.worst.as_ref().unwrap().1, good_speedup);

        // A model whose rows ALL errored: no aggregate at all.
        let mut only_err = run_scenario(&tiny_spec("direct2d"));
        only_err.status = RunStatus::Error("boom".into());
        only_err.speedup = Some(2.0);
        let s = summarize(&[only_err], 0.0);
        assert!(s.per_model.is_empty());
        assert_eq!(s.geomean_speedup, None);
        assert!(s.best.is_none() && s.worst.is_none());
    }

    #[test]
    fn records_carry_input_hashes() {
        let ok = run_scenario(&tiny_spec("direct2d"));
        assert_eq!(ok.input_hash, cache::scenario_input_hash(&ok.spec));
        assert!(ok.input_hash.is_some());
        // Unknown workload: no generator, no hash.
        let unknown = run_scenario(&tiny_spec("no-such-kernel"));
        assert_eq!(unknown.input_hash, None);
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid::new()
            .workloads(["direct2d", "indirect"])
            .size(SizeClass::Small)
            .nps([2])
            .models([ModelSpec::MpichGm])
    }

    #[test]
    fn incremental_with_unchanged_inputs_reuses_every_row() {
        let cold = run_sweep(&tiny_grid(), 1);
        let inc = run_sweep_incremental(&tiny_grid(), 1, &cold);
        assert!(inc.reused.iter().all(|r| *r), "nothing moved → all reused");
        assert_eq!(inc.result.normalized(), cold.normalized());
        let t = inc.result.timing.as_ref().unwrap();
        assert_eq!(t.reused_rows, cold.records.len());
        assert_eq!(
            (t.cache_hits, t.cache_misses),
            (0, 0),
            "a fully reused sweep never touches the compile cache"
        );
        // Reused rows spent no host time.
        assert!(inc.result.records.iter().all(|r| r.wall_ms == 0.0));
    }

    #[test]
    fn incremental_never_reuses_error_rows_or_rows_without_hashes() {
        let cold = run_sweep(&tiny_grid(), 1);

        // Baseline row errored (hash intact): must re-simulate.
        let mut poisoned = cold.clone();
        poisoned.records[0].status = RunStatus::Error("flaky host".into());
        let inc = run_sweep_incremental(&tiny_grid(), 1, &poisoned);
        assert!(!inc.reused[0], "error row is a miss even with a matching hash");
        assert!(inc.reused[1]);
        assert!(inc.result.records[0].is_ok(), "re-simulation healed the row");
        assert_eq!(inc.result.normalized(), cold.normalized());
        assert_eq!(inc.result.timing.as_ref().unwrap().reused_rows, 1);

        // Baseline row lacks input_hash (pre-v3 artifact): must re-simulate.
        let mut unhashed = cold.clone();
        unhashed.records[1].input_hash = None;
        let inc = run_sweep_incremental(&tiny_grid(), 1, &unhashed);
        assert!(inc.reused[0] && !inc.reused[1]);
        assert_eq!(inc.result.normalized(), cold.normalized());

        // Baseline row's hash is stale (inputs moved): must re-simulate.
        let mut stale = cold.clone();
        stale.records[0].input_hash = Some(0xdead_beef);
        let inc = run_sweep_incremental(&tiny_grid(), 1, &stale);
        assert!(!inc.reused[0] && inc.reused[1]);
        assert_eq!(inc.result.normalized(), cold.normalized());

        // Baseline row missing entirely (new cell): must simulate.
        let mut shrunk = cold.clone();
        shrunk.records.remove(0);
        let inc = run_sweep_incremental(&tiny_grid(), 1, &shrunk);
        assert!(!inc.reused[0] && inc.reused[1]);
        assert_eq!(inc.result.normalized(), cold.normalized());
    }

    #[test]
    fn sweeps_emit_structured_progress_events() {
        use crate::event::MemorySink;
        let sink = MemorySink::new();
        let cold = run_sweep_with(&tiny_grid(), 2, &sink);
        let events = sink.take();
        assert_eq!(events[0].kind(), "sweep-started");
        assert_eq!(events.last().unwrap().kind(), "sweep-finished");
        let started: Vec<&ProgressEvent> =
            events.iter().filter(|e| e.kind() == "scenario-started").collect();
        let finished: Vec<&ProgressEvent> =
            events.iter().filter(|e| e.kind() == "scenario-finished").collect();
        assert_eq!(started.len(), cold.records.len());
        assert_eq!(finished.len(), cold.records.len());
        assert!(finished.iter().all(|e| matches!(
            e,
            ProgressEvent::ScenarioFinished { ok: true, reused: false, .. }
        )));
        if let ProgressEvent::SweepFinished { scenarios, ok, errors, .. } =
            events.last().unwrap()
        {
            assert_eq!((*scenarios, *ok, *errors), (cold.records.len(), cold.summary.ok, 0));
        }

        // Incremental with nothing moved: only reused finishes, no starts.
        let sink = MemorySink::new();
        let inc = run_sweep_incremental_with(&tiny_grid(), 1, &cold, &sink);
        assert_eq!(inc.result.normalized(), cold.normalized());
        let events = sink.take();
        assert!(events.iter().all(|e| e.kind() != "scenario-started"));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(
                    e,
                    ProgressEvent::ScenarioFinished { reused: true, .. }
                ))
                .count(),
            cold.records.len()
        );
        // The sink observed; it never steered: same bytes as the plain run.
        let silent = run_sweep(&tiny_grid(), 2);
        assert_eq!(silent.normalized(), cold.normalized());
    }

    #[test]
    fn normalized_zeroes_wall_clock_only() {
        let result = run_sweep(
            &SweepGrid::new()
                .workloads(["direct2d"])
                .size(SizeClass::Small)
                .nps([2])
                .models([ModelSpec::MpichGm]),
            1,
        );
        let n = result.normalized();
        assert!(n.records.iter().all(|r| r.wall_ms == 0.0));
        assert_eq!(n.summary.wall_ms, 0.0);
        assert!(result.timing.is_some(), "executed sweeps carry timing");
        assert!(n.timing.is_none(), "normalized artifacts drop timing");
        assert_eq!(n.records[0].orig_ns, result.records[0].orig_ns);
        assert_eq!(n.summary.geomean_speedup, result.summary.geomean_speedup);
    }
}
