//! Cartesian sweep grids. A [`SweepGrid`] names one axis per spec field;
//! [`SweepGrid::expand`] takes the cartesian product in a fixed axis
//! order (workload → np → model → tile size → variant), applies the
//! registered filters, and yields the deterministic scenario list the
//! executor runs.
//!
//! Filters are [`FilterSpec`] values — plain data, not function pointers
//! — so a grid round-trips through the `scenarios/*.toml` files (see
//! [`crate::toml`]) without loss: file → grid → file is byte-identical.

use crate::spec::{ModelSpec, ScenarioSpec, SizeClass, Variant};

/// A scenario filter as *data*: every variant is expressible in a
/// scenario file by its [`FilterSpec::kind`] name, and its decision is a
/// pure function of the [`ScenarioSpec`] (plus, for
/// [`FilterSpec::OverlapGuaranteed`], the static workload registry).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterSpec {
    /// Keep scenarios with `np >= n`.
    MinNp(usize),
    /// Keep scenarios with `np <= n`.
    MaxNp(usize),
    /// Keep scenarios whose workload is one of the named families.
    WorkloadIn(Vec<String>),
    /// Keep `np <= max_np` everywhere except the `exempt` workloads — the
    /// full grid's gate that reserves the expensive large-np rows for the
    /// all-peers families.
    NpCapExcept { max_np: usize, exempt: Vec<String> },
    /// Restrict one model column to `np <= max_np` (scoping an expensive
    /// or ablation-only stack without dropping it from the model axis).
    ModelNpCap { model: String, max_np: usize },
    /// Explicit (non-auto) tile sizes run only inside the named scope;
    /// auto rows (`tile_size = None`) always pass. This is how the full
    /// grid carries a U-curve tile axis without multiplying every row.
    TileAxisScope {
        workloads: Vec<String>,
        nps: Vec<usize>,
        models: Vec<String>,
    },
    /// Keep scenarios where the workload registry guarantees overlap at
    /// this rank count (`min_overlap_np`, see [`workloads::RegistryEntry`]).
    OverlapGuaranteed,
}

impl FilterSpec {
    /// Every kind name the scenario-file loader accepts, for error
    /// messages and docs.
    pub const KINDS: [&'static str; 7] = [
        "min-np",
        "max-np",
        "workload-in",
        "np-cap-except",
        "model-np-cap",
        "tile-axis-scope",
        "overlap-guaranteed",
    ];

    /// The stable kind name used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            FilterSpec::MinNp(_) => "min-np",
            FilterSpec::MaxNp(_) => "max-np",
            FilterSpec::WorkloadIn(_) => "workload-in",
            FilterSpec::NpCapExcept { .. } => "np-cap-except",
            FilterSpec::ModelNpCap { .. } => "model-np-cap",
            FilterSpec::TileAxisScope { .. } => "tile-axis-scope",
            FilterSpec::OverlapGuaranteed => "overlap-guaranteed",
        }
    }

    /// Does this filter keep the scenario?
    pub fn accepts(&self, s: &ScenarioSpec) -> bool {
        match self {
            FilterSpec::MinNp(n) => s.np >= *n,
            FilterSpec::MaxNp(n) => s.np <= *n,
            FilterSpec::WorkloadIn(names) => names.contains(&s.workload),
            FilterSpec::NpCapExcept { max_np, exempt } => {
                s.np <= *max_np || exempt.contains(&s.workload)
            }
            FilterSpec::ModelNpCap { model, max_np } => {
                s.model.id() != *model || s.np <= *max_np
            }
            FilterSpec::TileAxisScope {
                workloads,
                nps,
                models,
            } => {
                s.tile_size.is_none()
                    || (workloads.contains(&s.workload)
                        && nps.contains(&s.np)
                        && models.iter().any(|m| *m == s.model.id()))
            }
            FilterSpec::OverlapGuaranteed => workloads::find(&s.workload)
                .and_then(|e| e.min_overlap_np)
                .is_some_and(|min_np| s.np >= min_np),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    pub workloads: Vec<String>,
    pub size: SizeClass,
    pub nps: Vec<usize>,
    pub models: Vec<ModelSpec>,
    /// Requested tile sizes; `None` = the model-informed heuristic.
    pub tile_sizes: Vec<Option<i64>>,
    pub variants: Vec<Variant>,
    filters: Vec<FilterSpec>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            workloads: Vec::new(),
            size: SizeClass::Standard,
            nps: Vec::new(),
            models: Vec::new(),
            tile_sizes: vec![None],
            variants: vec![Variant::Compare],
            filters: Vec::new(),
        }
    }
}

impl SweepGrid {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    pub fn size(mut self, size: SizeClass) -> Self {
        self.size = size;
        self
    }

    pub fn nps(mut self, nps: impl IntoIterator<Item = usize>) -> Self {
        self.nps = nps.into_iter().collect();
        self
    }

    pub fn models(mut self, models: impl IntoIterator<Item = ModelSpec>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    pub fn tile_sizes(mut self, ks: impl IntoIterator<Item = Option<i64>>) -> Self {
        self.tile_sizes = ks.into_iter().collect();
        self
    }

    pub fn variants(mut self, vs: impl IntoIterator<Item = Variant>) -> Self {
        self.variants = vs.into_iter().collect();
        self
    }

    /// Keep only scenarios the filter accepts. Filters compose (all must
    /// accept).
    pub fn filter(mut self, f: FilterSpec) -> Self {
        self.filters.push(f);
        self
    }

    /// The registered filters, in registration order (the scenario-file
    /// writer serializes them in this order).
    pub fn filters(&self) -> &[FilterSpec] {
        &self.filters
    }

    /// Number of points before filtering: the product of axis lengths.
    pub fn unfiltered_len(&self) -> usize {
        self.workloads.len()
            * self.nps.len()
            * self.models.len()
            * self.tile_sizes.len()
            * self.variants.len()
    }

    /// The deterministic scenario list: cartesian product in axis order,
    /// then filters.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::with_capacity(self.unfiltered_len());
        for w in &self.workloads {
            for &np in &self.nps {
                for model in &self.models {
                    for &k in &self.tile_sizes {
                        for &variant in &self.variants {
                            let spec = ScenarioSpec {
                                workload: w.clone(),
                                size: self.size,
                                np,
                                model: model.clone(),
                                tile_size: k,
                                variant,
                            };
                            if self.filters.iter().all(|f| f.accepts(&spec)) {
                                out.push(spec);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Workload families that extend to the large-np rows of the full
    /// grid: the Fig. 4 all-peers exchanges, whose scaling behaviour the
    /// paper's argument rests on. The rest of the registry is pinned at
    /// the paper's np {4, 8} to keep the sweep's wall-clock in check.
    pub const HIGH_NP_WORKLOADS: [&'static str; 3] = ["direct2d", "fft", "adi"];

    /// The full evaluation grid (`harness sweep`, mirrored by
    /// `scenarios/full.toml`): every registry workload at Figure-1 scale
    /// on the paper's two stacks plus the `rdma-ideal` upper-bound column
    /// at np {4, 8}; np {16, 32} rows for the *whole* registry and
    /// np = 64 rows for the all-peers families
    /// ([`Self::HIGH_NP_WORKLOADS`]) on the two paper stacks; `direct2d`
    /// scaling rows on MPICH-GM at np {128, 256, 512} (np = 128 was the
    /// first grid point the block-summarized interpreter made
    /// affordable; the giant rows ride the resumable rank engine, which
    /// decouples thread count from np, plus strong-scaled problem
    /// sizes); and an explicit tile-size axis {64, 512, 4096} around
    /// the heuristic's choice (the U-curve) for the all-peers families
    /// at np = 8 on MPICH-GM.
    ///
    /// Since the pluggable model layer landed, the grid also carries the
    /// non-uniform columns at the paper's np {4, 8}: congested MPICH-GM at
    /// two contention levels (`congested:2:1.5`, `congested:2:3` — a
    /// 2-link switch at 1.5× and 3× background load) and the `half-slow`
    /// heterogeneous profile. Like `rdma-ideal`, each is scoped by a
    /// `ModelNpCap` filter so the contention/heterogeneity question is
    /// answered at Figure-1 scale without multiplying the large-np rows.
    pub fn full() -> Self {
        let high_np: Vec<String> =
            Self::HIGH_NP_WORKLOADS.iter().map(|w| w.to_string()).collect();
        let mut grid = SweepGrid::new()
            .workloads(workloads::registry().iter().map(|e| e.name))
            .size(SizeClass::Standard)
            .nps([4, 8, 16, 32, 64, 128, 256, 512])
            .models([
                ModelSpec::Mpich,
                ModelSpec::MpichGm,
                ModelSpec::RdmaIdeal,
                ModelSpec::Congested { links: 2, load: 1.5 },
                ModelSpec::Congested { links: 2, load: 3.0 },
                ModelSpec::Hetero(clustersim::HeteroProfile::HalfSlow),
            ])
            .tile_sizes([None, Some(64), Some(512), Some(4096)])
            .filter(FilterSpec::NpCapExcept {
                max_np: 32,
                exempt: high_np.clone(),
            })
            .filter(FilterSpec::NpCapExcept {
                max_np: 64,
                exempt: vec!["direct2d".to_string()],
            })
            .filter(FilterSpec::ModelNpCap {
                model: "rdma-ideal".into(),
                max_np: 8,
            })
            .filter(FilterSpec::ModelNpCap {
                model: "mpich".into(),
                max_np: 64,
            });
        for scoped in ["congested:2:1.5", "congested:2:3", "hetero:half-slow"] {
            grid = grid.filter(FilterSpec::ModelNpCap {
                model: scoped.into(),
                max_np: 8,
            });
        }
        grid.filter(FilterSpec::TileAxisScope {
            workloads: high_np,
            nps: vec![8],
            models: vec!["mpich-gm".into()],
        })
    }

    /// A tiny smoke grid (seconds, even in debug builds): two workload
    /// families at small size, np = 2, both stacks. This is what
    /// `harness quick`, the verify gate, and the golden test run
    /// (mirrored by `scenarios/quick.toml`).
    pub fn quick() -> Self {
        SweepGrid::new()
            .workloads(["direct2d", "indirect"])
            .size(SizeClass::Small)
            .nps([2])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
    }

    /// Figure 1's grid: the two paper workloads at Figure-1 scale, np = 8,
    /// both stacks (mirrored by `scenarios/fig1.toml`).
    pub fn fig1() -> Self {
        SweepGrid::new()
            .workloads(["direct2d", "indirect"])
            .size(SizeClass::Standard)
            .nps([8])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
    }

    /// The scaling ablation's grid: speedup vs rank count for the Fig. 4
    /// exchange (mirrored by `scenarios/scaling.toml`).
    pub fn scaling() -> Self {
        SweepGrid::new()
            .workloads(["direct2d"])
            .size(SizeClass::Standard)
            .nps([2, 4, 8, 16, 32])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
    }

    /// The §3.5 interchange ablation's grid (mirrored by
    /// `scenarios/interchange.toml`).
    pub fn interchange() -> Self {
        SweepGrid::new()
            .workloads(["interchange-legal", "interchange-blocked"])
            .size(SizeClass::Standard)
            .nps([4])
            .models([ModelSpec::MpichGm])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_cartesian_product_in_axis_order() {
        let g = SweepGrid::new()
            .workloads(["a", "b"])
            .nps([2, 4])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
            .tile_sizes([None, Some(8)]);
        let specs = g.expand();
        assert_eq!(specs.len(), g.unfiltered_len());
        assert_eq!(specs.len(), 2 * 2 * 2 * 2);
        // Workload is the slowest axis, variant the fastest.
        assert_eq!(specs[0].workload, "a");
        assert_eq!(specs[0].np, 2);
        assert_eq!(specs[0].tile_size, None);
        assert_eq!(specs[1].tile_size, Some(8));
        assert_eq!(specs[8].workload, "b");
        // Determinism: same grid, same list.
        assert_eq!(specs, g.expand());
    }

    #[test]
    fn filters_compose() {
        let g = SweepGrid::new()
            .workloads(["a", "b"])
            .nps([2, 4, 8])
            .models([ModelSpec::Mpich])
            .filter(FilterSpec::MinNp(4))
            .filter(FilterSpec::WorkloadIn(vec!["a".into()]));
        let specs = g.expand();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.workload == "a" && s.np >= 4));
    }

    #[test]
    fn filter_specs_decide_as_documented() {
        let spec = |workload: &str, np: usize, model: ModelSpec, k: Option<i64>| ScenarioSpec {
            workload: workload.into(),
            size: SizeClass::Standard,
            np,
            model,
            tile_size: k,
            variant: Variant::Compare,
        };
        let cap = FilterSpec::NpCapExcept {
            max_np: 8,
            exempt: vec!["fft".into()],
        };
        assert!(cap.accepts(&spec("direct", 8, ModelSpec::Mpich, None)));
        assert!(!cap.accepts(&spec("direct", 16, ModelSpec::Mpich, None)));
        assert!(cap.accepts(&spec("fft", 64, ModelSpec::Mpich, None)));

        let col = FilterSpec::ModelNpCap {
            model: "rdma-ideal".into(),
            max_np: 8,
        };
        assert!(col.accepts(&spec("fft", 64, ModelSpec::Mpich, None)));
        assert!(col.accepts(&spec("fft", 8, ModelSpec::RdmaIdeal, None)));
        assert!(!col.accepts(&spec("fft", 16, ModelSpec::RdmaIdeal, None)));

        let tiles = FilterSpec::TileAxisScope {
            workloads: vec!["fft".into()],
            nps: vec![8],
            models: vec!["mpich-gm".into()],
        };
        // Auto rows always pass; explicit tiles only inside the scope.
        assert!(tiles.accepts(&spec("direct", 4, ModelSpec::Mpich, None)));
        assert!(tiles.accepts(&spec("fft", 8, ModelSpec::MpichGm, Some(64))));
        assert!(!tiles.accepts(&spec("fft", 4, ModelSpec::MpichGm, Some(64))));
        assert!(!tiles.accepts(&spec("fft", 8, ModelSpec::Mpich, Some(64))));

        // The registry guarantee: interchange-legal needs np >= 4;
        // interchange-blocked is guaranteed from np >= 2 now that the
        // per-column fallback goes through the K-selection predictor.
        let og = FilterSpec::OverlapGuaranteed;
        assert!(og.accepts(&spec("direct2d", 2, ModelSpec::MpichGm, None)));
        assert!(!og.accepts(&spec("interchange-legal", 2, ModelSpec::MpichGm, None)));
        assert!(og.accepts(&spec("interchange-legal", 4, ModelSpec::MpichGm, None)));
        assert!(og.accepts(&spec("interchange-blocked", 8, ModelSpec::MpichGm, None)));
    }

    #[test]
    fn kind_names_are_stable_and_complete() {
        let all = [
            FilterSpec::MinNp(1),
            FilterSpec::MaxNp(1),
            FilterSpec::WorkloadIn(vec![]),
            FilterSpec::NpCapExcept {
                max_np: 1,
                exempt: vec![],
            },
            FilterSpec::ModelNpCap {
                model: String::new(),
                max_np: 1,
            },
            FilterSpec::TileAxisScope {
                workloads: vec![],
                nps: vec![],
                models: vec![],
            },
            FilterSpec::OverlapGuaranteed,
        ];
        assert_eq!(all.len(), FilterSpec::KINDS.len());
        for f in &all {
            assert!(FilterSpec::KINDS.contains(&f.kind()), "{} unlisted", f.kind());
        }
    }

    #[test]
    fn presets_are_nonempty_and_resolvable() {
        for g in [
            SweepGrid::full(),
            SweepGrid::quick(),
            SweepGrid::fig1(),
            SweepGrid::scaling(),
            SweepGrid::interchange(),
        ] {
            let specs = g.expand();
            assert!(!specs.is_empty());
            for s in &specs {
                assert!(
                    workloads::find(&s.workload).is_some(),
                    "preset names unknown workload {}",
                    s.workload
                );
            }
        }
    }

    #[test]
    fn full_grid_carries_the_rdma_column_and_tile_axis() {
        let specs = SweepGrid::full().expand();
        // rdma-ideal appears, but only at the paper's np {4, 8}.
        let rdma: Vec<_> = specs
            .iter()
            .filter(|s| s.model == ModelSpec::RdmaIdeal)
            .collect();
        assert!(!rdma.is_empty());
        assert!(rdma.iter().all(|s| s.np <= 8));
        assert_eq!(rdma.len(), workloads::registry().len() * 2);
        // The tile axis: three explicit sizes per all-peers family at
        // np = 8 on MPICH-GM, nowhere else.
        let tiled: Vec<_> = specs.iter().filter(|s| s.tile_size.is_some()).collect();
        assert_eq!(tiled.len(), SweepGrid::HIGH_NP_WORKLOADS.len() * 3);
        assert!(tiled
            .iter()
            .all(|s| s.np == 8 && s.model == ModelSpec::MpichGm));
        // np {16, 32} now covers the whole registry; np = 64 stays
        // reserved for the all-peers families.
        for np in [16usize, 32] {
            let rows = specs.iter().filter(|s| s.np == np).count();
            assert_eq!(rows, workloads::registry().len() * 2, "np={np} rows");
        }
        assert!(specs
            .iter()
            .filter(|s| s.np > 32)
            .all(|s| SweepGrid::HIGH_NP_WORKLOADS.contains(&s.workload.as_str())));
        // Exactly one scaling row each at np {128, 256, 512}:
        // direct2d on MPICH-GM.
        for np in [128usize, 256, 512] {
            let big: Vec<_> = specs.iter().filter(|s| s.np == np).collect();
            assert_eq!(big.len(), 1, "np={np} rows");
            assert_eq!(big[0].workload, "direct2d");
            assert_eq!(big[0].model, ModelSpec::MpichGm);
        }
    }

    #[test]
    fn full_grid_carries_the_congested_and_hetero_columns() {
        let specs = SweepGrid::full().expand();
        // Two contention levels plus one heterogeneity profile, each over
        // the whole registry at the paper's np {4, 8} — scoped exactly
        // like the rdma-ideal column, and never on the explicit tile axis.
        for m in [
            ModelSpec::Congested { links: 2, load: 1.5 },
            ModelSpec::Congested { links: 2, load: 3.0 },
            ModelSpec::Hetero(clustersim::HeteroProfile::HalfSlow),
        ] {
            let col: Vec<_> = specs.iter().filter(|s| s.model == m).collect();
            assert_eq!(
                col.len(),
                workloads::registry().len() * 2,
                "{} rows",
                m.id()
            );
            assert!(col.iter().all(|s| s.np <= 8 && s.tile_size.is_none()));
        }
    }
}
