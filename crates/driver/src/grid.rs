//! Cartesian sweep grids. A [`SweepGrid`] names one axis per spec field;
//! [`SweepGrid::expand`] takes the cartesian product in a fixed axis
//! order (workload → np → model → tile size → variant), applies the
//! registered filters, and yields the deterministic scenario list the
//! executor runs.

use crate::spec::{ModelSpec, ScenarioSpec, SizeClass, Variant};

/// A filter is a plain function pointer so grids stay `Clone` and their
/// expansion stays a pure function of the grid value.
pub type Filter = fn(&ScenarioSpec) -> bool;

#[derive(Clone)]
pub struct SweepGrid {
    pub workloads: Vec<String>,
    pub size: SizeClass,
    pub nps: Vec<usize>,
    pub models: Vec<ModelSpec>,
    /// Requested tile sizes; `None` = the model-informed heuristic.
    pub tile_sizes: Vec<Option<i64>>,
    pub variants: Vec<Variant>,
    filters: Vec<Filter>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            workloads: Vec::new(),
            size: SizeClass::Standard,
            nps: Vec::new(),
            models: Vec::new(),
            tile_sizes: vec![None],
            variants: vec![Variant::Compare],
            filters: Vec::new(),
        }
    }
}

impl SweepGrid {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    pub fn size(mut self, size: SizeClass) -> Self {
        self.size = size;
        self
    }

    pub fn nps(mut self, nps: impl IntoIterator<Item = usize>) -> Self {
        self.nps = nps.into_iter().collect();
        self
    }

    pub fn models(mut self, models: impl IntoIterator<Item = ModelSpec>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    pub fn tile_sizes(mut self, ks: impl IntoIterator<Item = Option<i64>>) -> Self {
        self.tile_sizes = ks.into_iter().collect();
        self
    }

    pub fn variants(mut self, vs: impl IntoIterator<Item = Variant>) -> Self {
        self.variants = vs.into_iter().collect();
        self
    }

    /// Keep only scenarios the predicate accepts. Filters compose (all
    /// must accept).
    pub fn filter(mut self, f: Filter) -> Self {
        self.filters.push(f);
        self
    }

    /// Number of points before filtering: the product of axis lengths.
    pub fn unfiltered_len(&self) -> usize {
        self.workloads.len()
            * self.nps.len()
            * self.models.len()
            * self.tile_sizes.len()
            * self.variants.len()
    }

    /// The deterministic scenario list: cartesian product in axis order,
    /// then filters.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::with_capacity(self.unfiltered_len());
        for w in &self.workloads {
            for &np in &self.nps {
                for model in &self.models {
                    for &k in &self.tile_sizes {
                        for &variant in &self.variants {
                            let spec = ScenarioSpec {
                                workload: w.clone(),
                                size: self.size,
                                np,
                                model: model.clone(),
                                tile_size: k,
                                variant,
                            };
                            if self.filters.iter().all(|f| f(&spec)) {
                                out.push(spec);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Workload families that extend to the large-np rows of the full
    /// grid: the Fig. 4 all-peers exchanges, whose scaling behaviour the
    /// paper's argument rests on. The rest of the registry is pinned at
    /// the paper's np {4, 8} to keep the sweep's wall-clock in check.
    pub const HIGH_NP_WORKLOADS: [&'static str; 3] = ["direct2d", "fft", "adi"];

    /// The full evaluation grid: every registry workload at Figure-1
    /// scale on the paper's two stacks at np {4, 8}, plus np {16, 32, 64}
    /// rows for the all-peers families ([`Self::HIGH_NP_WORKLOADS`]).
    /// This is what `harness sweep` runs.
    pub fn full() -> Self {
        SweepGrid::new()
            .workloads(workloads::registry().iter().map(|e| e.name))
            .size(SizeClass::Standard)
            .nps([4, 8, 16, 32, 64])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
            .filter(|s| s.np <= 8 || Self::HIGH_NP_WORKLOADS.contains(&s.workload.as_str()))
    }

    /// A tiny smoke grid (seconds, even in debug builds): two workload
    /// families at small size, np = 2, both stacks. This is what
    /// `harness quick`, the verify gate, and the golden test run.
    pub fn quick() -> Self {
        SweepGrid::new()
            .workloads(["direct2d", "indirect"])
            .size(SizeClass::Small)
            .nps([2])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_cartesian_product_in_axis_order() {
        let g = SweepGrid::new()
            .workloads(["a", "b"])
            .nps([2, 4])
            .models([ModelSpec::Mpich, ModelSpec::MpichGm])
            .tile_sizes([None, Some(8)]);
        let specs = g.expand();
        assert_eq!(specs.len(), g.unfiltered_len());
        assert_eq!(specs.len(), 2 * 2 * 2 * 2);
        // Workload is the slowest axis, variant the fastest.
        assert_eq!(specs[0].workload, "a");
        assert_eq!(specs[0].np, 2);
        assert_eq!(specs[0].tile_size, None);
        assert_eq!(specs[1].tile_size, Some(8));
        assert_eq!(specs[8].workload, "b");
        // Determinism: same grid, same list.
        assert_eq!(specs, g.expand());
    }

    #[test]
    fn filters_compose() {
        let g = SweepGrid::new()
            .workloads(["a", "b"])
            .nps([2, 4, 8])
            .models([ModelSpec::Mpich])
            .filter(|s| s.np >= 4)
            .filter(|s| s.workload == "a");
        let specs = g.expand();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.workload == "a" && s.np >= 4));
    }

    #[test]
    fn presets_are_nonempty_and_resolvable() {
        for g in [SweepGrid::full(), SweepGrid::quick()] {
            let specs = g.expand();
            assert!(!specs.is_empty());
            for s in &specs {
                assert!(
                    workloads::find(&s.workload).is_some(),
                    "preset names unknown workload {}",
                    s.workload
                );
            }
        }
    }
}
