//! The job core: sweeps as queued, observable jobs.
//!
//! [`JobCore`] owns a bounded FIFO queue of [`JobSpec`]s and a single
//! worker thread that drains it. Every front end — the one-shot CLI
//! (`driver::client`), the HTTP sweep service (`crates/service`), tests
//! — is a *client* of this type: submit, then poll [`JobCore::status`],
//! block on [`JobCore::wait_terminal`], or stream
//! [`JobCore::events_since`]. The worker runs each job through the same
//! [`crate::run_sweep_with`] / [`crate::run_sweep_incremental_with`]
//! entry points the CLI always used, with a sink that appends
//! [`ProgressEvent`]s to the job's log, so a job's artifact bytes are
//! identical to what a direct in-process sweep produces.
//!
//! Admission control is deliberately blunt: at most `capacity` jobs may
//! be *queued* (a running job doesn't count). A submit beyond that is
//! rejected with [`SubmitError::QueueFull`] carrying a retry hint —
//! callers get backpressure instead of unbounded memory growth.
//!
//! Shutdown drains, never aborts: [`JobCore::shutdown`] cancels every
//! still-queued job, refuses new submissions, and lets the worker finish
//! the job it is running before exiting. Simulated time is untouched —
//! a drained job's artifact is byte-identical to an undisturbed one.

use crate::event::{EventSink, ProgressEvent};
use crate::exec::{run_sweep_incremental_with, run_sweep_with, SweepResult};
use crate::grid::SweepGrid;
use crate::json;
use crate::spec::ScenarioSpec;
use crate::toml::grid_from_toml;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Job identifiers are dense and start at 1 (the first submitted job is
/// job 1), so URLs and logs stay human-readable.
pub type JobId = u64;

/// Where a job's grid comes from. Everything resolves to a [`SweepGrid`]
/// at submission time, so a rejected grid never occupies a queue slot.
#[derive(Debug, Clone, PartialEq)]
pub enum GridSource {
    /// An already-built grid (in-process clients, presets).
    Grid(SweepGrid),
    /// Inline `overlap-grid/v1` TOML text (the HTTP `grid_toml` field).
    GridToml(String),
    /// A `scenarios/*.toml` path, read at submission time.
    GridFile(String),
    /// A single scenario, run as a one-point grid.
    Scenario(Box<ScenarioSpec>),
}

impl GridSource {
    /// Resolve to a grid. Error strings for file sources match the CLI's
    /// historical diagnostics byte-for-byte, so moving `harness` onto the
    /// job core changed no output.
    pub fn resolve(&self) -> Result<SweepGrid, String> {
        match self {
            GridSource::Grid(g) => Ok(g.clone()),
            GridSource::GridToml(text) => grid_from_toml(text),
            GridSource::GridFile(path) => {
                let bytes = std::fs::read(path)
                    .map_err(|e| format!("cannot read grid file {path}: {e}"))?;
                let text = String::from_utf8(bytes)
                    .map_err(|e| format!("{path}: grid file is not valid UTF-8: {e}"))?;
                grid_from_toml(&text).map_err(|e| format!("{path}: {e}"))
            }
            GridSource::Scenario(spec) => Ok(SweepGrid::new()
                .workloads([spec.workload.clone()])
                .size(spec.size)
                .nps([spec.np])
                .models([spec.model.clone()])
                .tile_sizes([spec.tile_size])
                .variants([spec.variant])),
        }
    }
}

/// Everything a job needs to run.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub source: GridSource,
    /// Worker threads for the sweep (0 = one per core), as in
    /// [`crate::run_sweep`].
    pub threads: usize,
    /// Incremental baseline: rows whose input hash matches are reused
    /// instead of re-simulated, exactly `harness sweep --incremental`.
    pub baseline: Option<Arc<SweepResult>>,
}

impl JobSpec {
    pub fn new(source: GridSource) -> JobSpec {
        JobSpec {
            source,
            threads: 0,
            baseline: None,
        }
    }

    pub fn grid(grid: SweepGrid) -> JobSpec {
        JobSpec::new(GridSource::Grid(grid))
    }

    pub fn threads(mut self, threads: usize) -> JobSpec {
        self.threads = threads;
        self
    }

    pub fn baseline(mut self, baseline: Arc<SweepResult>) -> JobSpec {
        self.baseline = Some(baseline);
        self
    }
}

/// Per-job lifecycle. `Queued → Running → Done | Failed`; a queued job
/// may instead go to `Cancelled` (explicitly, or by shutdown). Running
/// jobs are never aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
    Cancelled,
}

impl JobState {
    /// Stable lowercase tag (what the HTTP API reports).
    pub fn id(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Terminal states emit no further events.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The queue is at capacity; try again after the hinted delay.
    QueueFull { capacity: usize, retry_after_s: u64 },
    /// The core is draining; no new work is admitted.
    ShuttingDown,
    /// The grid source did not resolve (unreadable file, bad TOML, …).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull {
                capacity,
                retry_after_s,
            } => write!(
                f,
                "job queue full ({capacity} queued); retry after {retry_after_s}s"
            ),
            SubmitError::ShuttingDown => write!(f, "shutting down; not accepting jobs"),
            SubmitError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

/// A point-in-time snapshot of one job, safe to serialize while the
/// worker keeps running. Progress counters come from the event stream;
/// wall/cache figures appear once the job is `Done`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    pub id: JobId,
    pub state: JobState,
    /// Scenarios the grid expands to.
    pub scenarios: usize,
    /// Scenarios finished so far (simulated or reused).
    pub finished: usize,
    pub ok: usize,
    pub errors: usize,
    /// Rows reused from the incremental baseline.
    pub reused: usize,
    /// Events logged so far (the high-water mark for
    /// [`JobCore::events_since`]).
    pub events: usize,
    /// Total sweep wall-clock in ms (0 until `Done`).
    pub wall_ms: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

struct Job {
    grid: SweepGrid,
    threads: usize,
    baseline: Option<Arc<SweepResult>>,
    scenarios: usize,
    state: JobState,
    events: Vec<ProgressEvent>,
    finished: usize,
    ok: usize,
    errors: usize,
    reused: usize,
    result: Option<Arc<SweepResult>>,
    /// Canonical normalized artifact bytes (`BENCH` JSON), computed once
    /// at completion.
    artifact: Option<Arc<String>>,
}

struct State {
    jobs: Vec<Job>,
    /// Indices into `jobs`, FIFO.
    queue: VecDeque<usize>,
    shutting_down: bool,
    worker_done: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled on any job change (clients wait here).
    clients: Condvar,
    /// Signalled when work arrives or shutdown starts (worker waits here).
    work: Condvar,
    capacity: usize,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sink the worker hands to the sweep: append to the job's event
/// log, fold scenario completions into the progress counters, wake
/// waiting clients.
struct JobSink {
    inner: Arc<Inner>,
    idx: usize,
}

impl EventSink for JobSink {
    fn emit(&self, event: ProgressEvent) {
        let mut st = self.inner.lock();
        if let ProgressEvent::ScenarioFinished { ok, reused, .. } = &event {
            let job = &mut st.jobs[self.idx];
            job.finished += 1;
            if *ok {
                job.ok += 1;
            } else {
                job.errors += 1;
            }
            if *reused {
                job.reused += 1;
            }
        }
        st.jobs[self.idx].events.push(event);
        self.inner.clients.notify_all();
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "sweep panicked".to_string()
    }
}

/// The sweep-service core. See the module docs for the model.
pub struct JobCore {
    inner: Arc<Inner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl JobCore {
    /// A core with a live worker thread and room for `capacity` queued
    /// jobs (minimum 1).
    pub fn new(capacity: usize) -> JobCore {
        let core = JobCore::new_inert(capacity);
        let inner = Arc::clone(&core.inner);
        {
            let mut st = inner.lock();
            st.worker_done = false;
        }
        let handle = std::thread::Builder::new()
            .name("sweep-job-worker".into())
            .spawn(move || worker_loop(&inner))
            .expect("spawn job worker");
        *core.worker.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        core
    }

    /// A core with *no* worker: jobs queue but never run. Tests use this
    /// to exercise admission control and cancellation deterministically.
    pub fn new_inert(capacity: usize) -> JobCore {
        JobCore {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    jobs: Vec::new(),
                    queue: VecDeque::new(),
                    shutting_down: false,
                    worker_done: true,
                }),
                clients: Condvar::new(),
                work: Condvar::new(),
                capacity: capacity.max(1),
            }),
            worker: Mutex::new(None),
        }
    }

    /// Admit a job, or say why not. The grid resolves here — a bad grid
    /// never occupies a slot — and the job's first event
    /// ([`ProgressEvent::JobAccepted`]) is logged before this returns.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let grid = spec.source.resolve().map_err(SubmitError::Invalid)?;
        let scenarios = grid.expand().len();
        let mut st = self.inner.lock();
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.inner.capacity,
                retry_after_s: 1,
            });
        }
        let idx = st.jobs.len();
        let id = (idx + 1) as JobId;
        let queued_ahead = st.queue.len();
        st.jobs.push(Job {
            grid,
            threads: spec.threads,
            baseline: spec.baseline,
            scenarios,
            state: JobState::Queued,
            events: vec![ProgressEvent::JobAccepted {
                job: id,
                scenarios,
                queued_ahead,
            }],
            finished: 0,
            ok: 0,
            errors: 0,
            reused: 0,
            result: None,
            artifact: None,
        });
        st.queue.push_back(idx);
        self.inner.work.notify_one();
        self.inner.clients.notify_all();
        Ok(id)
    }

    fn idx(st: &State, id: JobId) -> Option<usize> {
        let idx = id.checked_sub(1)? as usize;
        (idx < st.jobs.len()).then_some(idx)
    }

    /// Snapshot one job (`None` for an unknown id).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.lock();
        let idx = Self::idx(&st, id)?;
        let job = &st.jobs[idx];
        let timing = job.result.as_ref().and_then(|r| r.timing.as_ref());
        Some(JobStatus {
            id,
            state: job.state.clone(),
            scenarios: job.scenarios,
            finished: job.finished,
            ok: job.ok,
            errors: job.errors,
            reused: job.reused,
            events: job.events.len(),
            wall_ms: job.result.as_ref().map_or(0.0, |r| r.summary.wall_ms),
            cache_hits: timing.map_or(0, |t| t.cache_hits),
            cache_misses: timing.map_or(0, |t| t.cache_misses),
        })
    }

    /// Jobs currently waiting (not counting a running one).
    pub fn queue_len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Block until the job reaches a terminal state or `timeout`
    /// elapses; returns the state either way (`None` for unknown ids).
    pub fn wait_terminal(&self, id: JobId, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.lock();
        let idx = Self::idx(&st, id)?;
        loop {
            if st.jobs[idx].state.is_terminal() {
                return Some(st.jobs[idx].state.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(st.jobs[idx].state.clone());
            }
            st = self
                .inner
                .clients
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Events logged at index `from` onward. Blocks until at least one
    /// new event exists, the job is terminal, or `timeout` elapses;
    /// returns the (possibly empty) tail and whether the job is
    /// terminal. `None` for unknown ids.
    pub fn events_since(
        &self,
        id: JobId,
        from: usize,
        timeout: Duration,
    ) -> Option<(Vec<ProgressEvent>, bool)> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.lock();
        let idx = Self::idx(&st, id)?;
        loop {
            let job = &st.jobs[idx];
            let terminal = job.state.is_terminal();
            if job.events.len() > from || terminal {
                let tail = job.events[from.min(job.events.len())..].to_vec();
                return Some((tail, terminal));
            }
            let now = Instant::now();
            if now >= deadline {
                return Some((Vec::new(), false));
            }
            st = self
                .inner
                .clients
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// The job's completed sweep (`None` unless `Done`).
    pub fn result(&self, id: JobId) -> Option<Arc<SweepResult>> {
        let st = self.inner.lock();
        let idx = Self::idx(&st, id)?;
        st.jobs[idx].result.clone()
    }

    /// The job's canonical normalized artifact bytes (`None` unless
    /// `Done`). Byte-identical to `harness` writing the same grid.
    pub fn artifact(&self, id: JobId) -> Option<Arc<String>> {
        let st = self.inner.lock();
        let idx = Self::idx(&st, id)?;
        st.jobs[idx].artifact.clone()
    }

    /// Cancel a *queued* job. Running and terminal jobs are untouched
    /// (returns false).
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.lock();
        let Some(idx) = Self::idx(&st, id) else {
            return false;
        };
        if st.jobs[idx].state != JobState::Queued {
            return false;
        }
        st.queue.retain(|&i| i != idx);
        st.jobs[idx].state = JobState::Cancelled;
        self.inner.clients.notify_all();
        true
    }

    /// Begin draining: refuse new submissions, cancel everything still
    /// queued, and let the worker finish its current job. Non-blocking;
    /// poll [`JobCore::is_finished`] or call [`JobCore::join`].
    pub fn shutdown(&self) {
        let mut st = self.inner.lock();
        st.shutting_down = true;
        while let Some(idx) = st.queue.pop_front() {
            st.jobs[idx].state = JobState::Cancelled;
        }
        if self
            .worker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_none()
        {
            st.worker_done = true;
        }
        self.inner.work.notify_all();
        self.inner.clients.notify_all();
    }

    /// True once the worker has exited (only after [`JobCore::shutdown`];
    /// inert cores are trivially finished).
    pub fn is_finished(&self) -> bool {
        self.inner.lock().worker_done
    }

    /// Block until the worker exits (call [`JobCore::shutdown`] first,
    /// or this waits forever).
    pub fn join(&self) {
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        // Claim the next job, or exit once draining and drained.
        let (idx, grid, threads, baseline) = {
            let mut st = inner.lock();
            loop {
                if let Some(idx) = st.queue.pop_front() {
                    st.jobs[idx].state = JobState::Running;
                    inner.clients.notify_all();
                    let job = &st.jobs[idx];
                    break (idx, job.grid.clone(), job.threads, job.baseline.clone());
                }
                if st.shutting_down {
                    st.worker_done = true;
                    inner.clients.notify_all();
                    return;
                }
                st = inner
                    .work
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let sink = JobSink {
            inner: Arc::clone(inner),
            idx,
        };
        // Scenario panics already become error rows inside the sweep;
        // this guard only catches a whole-sweep failure, which becomes
        // JobState::Failed instead of killing the worker.
        let outcome = catch_unwind(AssertUnwindSafe(|| match &baseline {
            Some(b) => run_sweep_incremental_with(&grid, threads, b, &sink).result,
            None => run_sweep_with(&grid, threads, &sink),
        }));
        let mut st = inner.lock();
        match outcome {
            Ok(result) => {
                let artifact = Arc::new(json::to_json_string(&result.normalized()));
                let job = &mut st.jobs[idx];
                job.result = Some(Arc::new(result));
                job.artifact = Some(artifact);
                job.state = JobState::Done;
            }
            Err(p) => {
                st.jobs[idx].state = JobState::Failed(panic_message(p));
            }
        }
        inner.clients.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sweep;
    use crate::spec::{ModelSpec, SizeClass};

    fn tiny_grid() -> SweepGrid {
        SweepGrid::new()
            .workloads(["direct2d"])
            .size(SizeClass::Small)
            .nps([2])
            .models([ModelSpec::MpichGm])
    }

    const WAIT: Duration = Duration::from_secs(120);

    #[test]
    fn job_runs_to_done_with_byte_identical_artifact() {
        let core = JobCore::new(4);
        let id = core.submit(JobSpec::grid(tiny_grid()).threads(1)).unwrap();
        assert_eq!(core.wait_terminal(id, WAIT), Some(JobState::Done));
        let status = core.status(id).unwrap();
        assert_eq!(status.scenarios, 1);
        assert_eq!((status.finished, status.ok, status.errors), (1, 1, 0));
        let artifact = core.artifact(id).unwrap();
        let direct = json::to_json_string(&run_sweep(&tiny_grid(), 1).normalized());
        assert_eq!(*artifact, direct, "job artifact differs from direct sweep");
        // The event log terminates: job-accepted first, sweep-finished last.
        let (events, terminal) = core.events_since(id, 0, WAIT).unwrap();
        assert!(terminal);
        assert_eq!(events.first().unwrap().kind(), "job-accepted");
        assert_eq!(events.last().unwrap().kind(), "sweep-finished");
        core.shutdown();
        core.join();
        assert!(core.is_finished());
    }

    #[test]
    fn incremental_baseline_reuses_rows() {
        let core = JobCore::new(4);
        let baseline = Arc::new(run_sweep(&tiny_grid(), 1));
        let id = core
            .submit(JobSpec::grid(tiny_grid()).threads(1).baseline(Arc::clone(&baseline)))
            .unwrap();
        assert_eq!(core.wait_terminal(id, WAIT), Some(JobState::Done));
        let status = core.status(id).unwrap();
        assert_eq!(status.reused, 1, "unchanged row should be reused");
        assert_eq!(
            core.result(id).unwrap().normalized(),
            baseline.normalized()
        );
        core.shutdown();
        core.join();
    }

    #[test]
    fn admission_control_is_fifo_and_bounded() {
        let core = JobCore::new_inert(2);
        let a = core.submit(JobSpec::grid(tiny_grid())).unwrap();
        let b = core.submit(JobSpec::grid(tiny_grid())).unwrap();
        assert_eq!((a, b), (1, 2));
        match core.submit(JobSpec::grid(tiny_grid())) {
            Err(SubmitError::QueueFull {
                capacity,
                retry_after_s,
            }) => {
                assert_eq!(capacity, 2);
                assert!(retry_after_s >= 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // queued_ahead in the acceptance event reflects FIFO position.
        let (events_b, _) = core.events_since(b, 0, Duration::ZERO).unwrap();
        assert_eq!(
            events_b[0],
            ProgressEvent::JobAccepted {
                job: 2,
                scenarios: 1,
                queued_ahead: 1
            }
        );
        // Cancelling a queued job frees its slot.
        assert!(core.cancel(a));
        assert_eq!(core.status(a).unwrap().state, JobState::Cancelled);
        assert!(!core.cancel(a), "cancel is not idempotent-true");
        assert!(core.submit(JobSpec::grid(tiny_grid())).is_ok());
    }

    #[test]
    fn invalid_sources_never_occupy_a_slot() {
        let core = JobCore::new_inert(1);
        let err = core
            .submit(JobSpec::new(GridSource::GridFile(
                "no/such/grid.toml".into(),
            )))
            .unwrap_err();
        match err {
            SubmitError::Invalid(msg) => {
                assert!(
                    msg.starts_with("cannot read grid file no/such/grid.toml:"),
                    "{msg}"
                );
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert_eq!(core.queue_len(), 0);
        assert!(core.submit(JobSpec::grid(tiny_grid())).is_ok());
    }

    #[test]
    fn shutdown_cancels_queued_and_refuses_new() {
        let core = JobCore::new_inert(4);
        let a = core.submit(JobSpec::grid(tiny_grid())).unwrap();
        let b = core.submit(JobSpec::grid(tiny_grid())).unwrap();
        core.shutdown();
        assert_eq!(core.status(a).unwrap().state, JobState::Cancelled);
        assert_eq!(core.status(b).unwrap().state, JobState::Cancelled);
        assert_eq!(
            core.submit(JobSpec::grid(tiny_grid())),
            Err(SubmitError::ShuttingDown)
        );
        assert!(core.is_finished());
        // Terminal jobs report terminal through the event API immediately.
        let (_, terminal) = core.events_since(a, 0, Duration::ZERO).unwrap();
        assert!(terminal);
    }

    #[test]
    fn shutdown_drains_the_running_job() {
        let core = JobCore::new(4);
        let id = core.submit(JobSpec::grid(tiny_grid()).threads(1)).unwrap();
        core.shutdown();
        core.join();
        // The running (or about-to-run) job completed; it was not aborted.
        let state = core.status(id).unwrap().state;
        assert!(
            state == JobState::Done || state == JobState::Cancelled,
            "drained job ended {state:?}"
        );
        if state == JobState::Done {
            let direct = json::to_json_string(&run_sweep(&tiny_grid(), 1).normalized());
            assert_eq!(*core.artifact(id).unwrap(), direct);
        }
        assert!(core.is_finished());
    }

    #[test]
    fn unknown_ids_are_none_everywhere() {
        let core = JobCore::new_inert(1);
        assert!(core.status(0).is_none());
        assert!(core.status(7).is_none());
        assert!(core.wait_terminal(7, Duration::ZERO).is_none());
        assert!(core.events_since(7, 0, Duration::ZERO).is_none());
        assert!(core.artifact(7).is_none());
        assert!(core.result(7).is_none());
        assert!(!core.cancel(7));
    }

    #[test]
    fn scenario_source_runs_a_one_point_grid() {
        let spec = ScenarioSpec {
            workload: "direct2d".into(),
            size: SizeClass::Small,
            np: 2,
            model: ModelSpec::MpichGm,
            tile_size: None,
            variant: crate::spec::Variant::Compare,
        };
        let grid = GridSource::Scenario(Box::new(spec.clone())).resolve().unwrap();
        assert_eq!(grid.expand(), vec![spec]);
    }
}
