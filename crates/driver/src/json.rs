//! Dependency-free JSON for the `BENCH_sweep.json` artifact: a minimal
//! value type, a recursive-descent parser, a pretty writer with stable
//! key order, and the mapping to/from [`SweepResult`].
//!
//! Schema (`overlap-sweep/v3`): one object with `schema`, `records` (one
//! object per scenario, in grid order), `summary`, and an *optional*
//! `timing` section (total/per-scenario host wall-clock plus rank-pool
//! and compile-cache figures). All virtual times are integer nanoseconds;
//! wall-clock fields are host time and are what `normalized()`
//! zeroes/drops so committed artifacts stay byte-deterministic. Each
//! record carries an `input_hash` — the deterministic content hash of its
//! simulation inputs ([`crate::cache::scenario_input_hash`], 16 hex
//! digits) that `harness sweep --incremental` keys row reuse on; it is
//! *not* host-dependent and survives normalization. The reader also
//! accepts the v2 schema (no `input_hash`, no cache timing fields — both
//! default to absent/0) and v1 (additionally no `timing`), so historical
//! baselines keep diffing. The writer is canonical:
//! `write(read(write(x)))` equals `write(x)` byte for byte.

use crate::cache::{hash_from_hex, hash_to_hex};
use crate::exec::{summarize, RunStatus, SweepRecord, SweepResult, SweepTiming};
use crate::spec::{ModelSpec, ScenarioSpec, SizeClass, Variant};
use std::fmt::Write as _;

/// The schema tag the writer emits.
pub const SCHEMA: &str = "overlap-sweep/v3";

/// Previous schemas, still accepted by the reader.
pub const SCHEMA_V2: &str = "overlap-sweep/v2";
pub const SCHEMA_V1: &str = "overlap-sweep/v1";

/// A JSON value. Objects keep insertion order (the writer's key order is
/// part of the artifact's byte-level stability).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------- writer

use crate::text::{consume_scalar, write_escaped};

fn write_value(out: &mut String, v: &Json, indent: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        // Rust's shortest-roundtrip Display keeps parse(write(f)) == f,
        // which is what makes re-serialization byte-stable.
        Json::Float(f) => {
            let _ = write!(out, "{f}");
        }
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&"  ".repeat(indent + 1));
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-print with two-space indent and a trailing newline.
pub fn write_json(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out.push('\n');
    out
}

fn write_value_compact(out: &mut String, v: &Json) {
    match v {
        Json::Null | Json::Bool(_) | Json::Int(_) | Json::Float(_) | Json::Str(_) => {
            write_value(out, v, 0)
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_escaped(out, k);
                out.push_str(": ");
                write_value_compact(out, v);
            }
            out.push('}');
        }
    }
}

/// Single-line form (no trailing newline): what the service streams as
/// one event per line. Parses back identically to the pretty form.
pub fn write_json_compact(v: &Json) -> String {
    let mut out = String::new();
    write_value_compact(&mut out, v);
    out
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Containers deeper than this are a parse error, not a stack overflow.
/// Real artifacts nest 4-5 levels; 128 is far beyond any legitimate
/// document while keeping recursion bounded on hostile input.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        format!("JSON parse error at byte {} (line {line}): {msg}", self.pos)
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!(
                "containers nested deeper than {MAX_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // The artifact may arrive as raw file bytes
                    // (`parse_json_bytes`), so a malformed sequence is a
                    // parse *error*, never a panic.
                    let (next, chunk) = consume_scalar(self.bytes, self.pos)
                        .map_err(|()| self.err("invalid UTF-8 in string"))?;
                    self.pos = next;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // The scan above only consumes ASCII bytes, but keep the error
        // path anyway: the artifact reader must never panic on input.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.consume_lit("null", Json::Null),
            Some(b't') => self.consume_lit("true", Json::Bool(true)),
            Some(b'f') => self.consume_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.enter()?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.enter()?;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }
}

/// Parse a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    parse_json_bytes(text.as_bytes())
}

/// Parse a complete JSON document from raw bytes (e.g. a file read with
/// `std::fs::read`). Malformed UTF-8 inside strings is a parse error
/// with a byte/line position, not a panic.
pub fn parse_json_bytes(bytes: &[u8]) -> Result<Json, String> {
    let mut p = Parser { bytes, pos: 0, depth: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

// ------------------------------------------------- SweepResult <-> Json

fn opt_int(v: Option<u64>) -> Json {
    v.map_or(Json::Null, |n| Json::Int(n as i64))
}

fn opt_i64(v: Option<i64>) -> Json {
    v.map_or(Json::Null, Json::Int)
}

fn opt_str(v: &Option<String>) -> Json {
    v.as_ref().map_or(Json::Null, |s| Json::Str(s.clone()))
}

/// `{}`-formatted floats parse back as `Int` when integral; accept both.
fn float_field(v: f64) -> Json {
    Json::Float(v)
}

fn record_to_json(r: &SweepRecord) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(r.spec.workload.clone())),
        ("size".into(), Json::Str(r.spec.size.id().into())),
        ("np".into(), Json::Int(r.spec.np as i64)),
        ("model".into(), Json::Str(r.spec.model.id())),
        ("requested_tile_size".into(), opt_i64(r.spec.tile_size)),
        ("variant".into(), Json::Str(r.spec.variant.id().into())),
        (
            "status".into(),
            Json::Str(if r.is_ok() { "ok" } else { "error" }.into()),
        ),
        (
            "error".into(),
            r.error().map_or(Json::Null, |e| Json::Str(e.into())),
        ),
        ("tile_size".into(), opt_i64(r.tile_size)),
        ("strategy".into(), opt_str(&r.strategy)),
        ("orig_ns".into(), opt_int(r.orig_ns)),
        ("prepush_ns".into(), opt_int(r.prepush_ns)),
        ("orig_exposed_ns".into(), opt_int(r.orig_exposed_ns)),
        ("prepush_exposed_ns".into(), opt_int(r.prepush_exposed_ns)),
        (
            "speedup".into(),
            r.speedup.map_or(Json::Null, float_field),
        ),
        (
            "input_hash".into(),
            r.input_hash
                .map_or(Json::Null, |h| Json::Str(hash_to_hex(h))),
        ),
        ("wall_ms".into(), float_field(r.wall_ms)),
    ])
}

fn extreme_to_json(v: &Option<(String, f64)>) -> Json {
    match v {
        None => Json::Null,
        Some((key, s)) => Json::Obj(vec![
            ("scenario".into(), Json::Str(key.clone())),
            ("speedup".into(), float_field(*s)),
        ]),
    }
}

/// Serialize a sweep result to the canonical artifact text.
pub fn to_json_string(result: &SweepResult) -> String {
    let s = &result.summary;
    let summary = Json::Obj(vec![
        ("scenarios".into(), Json::Int(s.scenarios as i64)),
        ("ok".into(), Json::Int(s.ok as i64)),
        ("errors".into(), Json::Int(s.errors as i64)),
        (
            "geomean_speedup".into(),
            s.geomean_speedup.map_or(Json::Null, float_field),
        ),
        ("best".into(), extreme_to_json(&s.best)),
        ("worst".into(), extreme_to_json(&s.worst)),
        (
            "per_model".into(),
            Json::Arr(
                s.per_model
                    .iter()
                    .map(|(m, g)| {
                        Json::Obj(vec![
                            ("model".into(), Json::Str(m.clone())),
                            ("geomean_speedup".into(), float_field(*g)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("wall_ms".into(), float_field(s.wall_ms)),
    ]);
    let mut fields = vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "records".into(),
            Json::Arr(result.records.iter().map(record_to_json).collect()),
        ),
        ("summary".into(), summary),
    ];
    if let Some(t) = &result.timing {
        fields.push((
            "timing".into(),
            Json::Obj(vec![
                ("wall_ms_total".into(), float_field(t.wall_ms_total)),
                ("pool_capacity".into(), Json::Int(t.pool_capacity as i64)),
                (
                    "workers_high_water".into(),
                    Json::Int(t.workers_high_water as i64),
                ),
                ("cache_hits".into(), Json::Int(t.cache_hits as i64)),
                ("cache_misses".into(), Json::Int(t.cache_misses as i64)),
                ("reused_rows".into(), Json::Int(t.reused_rows as i64)),
                (
                    "per_scenario".into(),
                    Json::Arr(
                        t.per_scenario
                            .iter()
                            .map(|(key, ms)| {
                                Json::Obj(vec![
                                    ("scenario".into(), Json::Str(key.clone())),
                                    ("wall_ms".into(), float_field(*ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    write_json(&Json::Obj(fields))
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing field `{key}`"))
}

fn record_from_json(v: &Json, idx: usize) -> Result<SweepRecord, String> {
    let what = format!("record {idx}");
    let getstr = |key: &str| -> Result<String, String> {
        field(v, key, &what)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("{what}: `{key}` must be a string"))
    };
    let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
        match field(v, key, &what)? {
            Json::Null => Ok(None),
            j => j
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("{what}: `{key}` must be a non-negative integer")),
        }
    };
    let workload = getstr("workload")?;
    let size = SizeClass::parse(&getstr("size")?)
        .ok_or_else(|| format!("{what}: bad size class"))?;
    let np = field(v, "np", &what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: `np` must be an integer"))? as usize;
    let model = ModelSpec::parse(&getstr("model")?).map_err(|e| format!("{what}: {e}"))?;
    let requested = match field(v, "requested_tile_size", &what)? {
        Json::Null => None,
        Json::Int(i) => Some(*i),
        _ => return Err(format!("{what}: bad `requested_tile_size`")),
    };
    let variant = Variant::parse(&getstr("variant")?)
        .ok_or_else(|| format!("{what}: bad variant"))?;
    let status = match getstr("status")?.as_str() {
        "ok" => RunStatus::Ok,
        "error" => RunStatus::Error(match field(v, "error", &what)? {
            Json::Str(e) => e.clone(),
            _ => String::new(),
        }),
        other => return Err(format!("{what}: bad status `{other}`")),
    };
    let tile_size = match field(v, "tile_size", &what)? {
        Json::Null => None,
        Json::Int(i) => Some(*i),
        _ => return Err(format!("{what}: bad `tile_size`")),
    };
    let strategy = match field(v, "strategy", &what)? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return Err(format!("{what}: bad `strategy`")),
    };
    let speedup = match field(v, "speedup", &what)? {
        Json::Null => None,
        j => Some(
            j.as_f64()
                .ok_or_else(|| format!("{what}: `speedup` must be a number"))?,
        ),
    };
    // Absent in v1/v2 artifacts (not just null): default to None.
    let input_hash = match v.get("input_hash") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(
            hash_from_hex(s)
                .ok_or_else(|| format!("{what}: `input_hash` must be 16 hex digits"))?,
        ),
        Some(_) => return Err(format!("{what}: bad `input_hash`")),
    };
    let wall_ms = field(v, "wall_ms", &what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: `wall_ms` must be a number"))?;
    Ok(SweepRecord {
        spec: ScenarioSpec {
            workload,
            size,
            np,
            model,
            tile_size: requested,
            variant,
        },
        status,
        tile_size,
        strategy,
        orig_ns: opt_u64("orig_ns")?,
        prepush_ns: opt_u64("prepush_ns")?,
        orig_exposed_ns: opt_u64("orig_exposed_ns")?,
        prepush_exposed_ns: opt_u64("prepush_exposed_ns")?,
        speedup,
        input_hash,
        wall_ms,
    })
}

/// Parse an artifact back into a [`SweepResult`]. The summary is
/// recomputed from the records (it is derived data), except `wall_ms`,
/// which is taken from the file. Accepts the current `overlap-sweep/v3`
/// schema and the historical v2 (no `input_hash`/cache timing) and v1
/// (additionally no `timing`).
pub fn from_json_string(text: &str) -> Result<SweepResult, String> {
    from_json_bytes(text.as_bytes())
}

/// [`from_json_string`] over raw file bytes: what the harness feeds
/// `std::fs::read` results into, so a corrupted (even non-UTF-8)
/// artifact surfaces as a readable error instead of a panic.
pub fn from_json_bytes(bytes: &[u8]) -> Result<SweepResult, String> {
    let doc = parse_json_bytes(bytes)?;
    let schema = field(&doc, "schema", "document")?
        .as_str()
        .ok_or("document: `schema` must be a string")?;
    if schema != SCHEMA && schema != SCHEMA_V2 && schema != SCHEMA_V1 {
        return Err(format!(
            "unsupported schema `{schema}` (this reader understands `{SCHEMA}`, `{SCHEMA_V2}`, \
             and `{SCHEMA_V1}`)"
        ));
    }
    let records_json = match field(&doc, "records", "document")? {
        Json::Arr(items) => items,
        _ => return Err("document: `records` must be an array".into()),
    };
    let mut records = Vec::with_capacity(records_json.len());
    for (i, r) in records_json.iter().enumerate() {
        records.push(record_from_json(r, i)?);
    }
    let wall_ms = field(&doc, "summary", "document")?
        .get("wall_ms")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let summary = summarize(&records, wall_ms);
    let timing = match doc.get("timing") {
        None | Some(Json::Null) => None,
        Some(t) => Some(timing_from_json(t)?),
    };
    Ok(SweepResult {
        records,
        summary,
        timing,
    })
}

fn timing_from_json(t: &Json) -> Result<SweepTiming, String> {
    let what = "timing";
    let wall_ms_total = field(t, "wall_ms_total", what)?
        .as_f64()
        .ok_or("timing: `wall_ms_total` must be a number")?;
    let pool_capacity = field(t, "pool_capacity", what)?
        .as_u64()
        .ok_or("timing: `pool_capacity` must be an integer")? as usize;
    let workers_high_water = field(t, "workers_high_water", what)?
        .as_u64()
        .ok_or("timing: `workers_high_water` must be an integer")?
        as usize;
    // Absent before v3: zero, not an error.
    let opt_count = |key: &str| -> Result<u64, String> {
        match t.get(key) {
            None | Some(Json::Null) => Ok(0),
            Some(j) => j
                .as_u64()
                .ok_or_else(|| format!("timing: `{key}` must be a non-negative integer")),
        }
    };
    let cache_hits = opt_count("cache_hits")?;
    let cache_misses = opt_count("cache_misses")?;
    let reused_rows = opt_count("reused_rows")? as usize;
    let per_scenario = match field(t, "per_scenario", what)? {
        Json::Arr(items) => items
            .iter()
            .map(|item| -> Result<(String, f64), String> {
                let key = field(item, "scenario", "timing row")?
                    .as_str()
                    .ok_or("timing row: `scenario` must be a string")?
                    .to_string();
                let ms = field(item, "wall_ms", "timing row")?
                    .as_f64()
                    .ok_or("timing row: `wall_ms` must be a number")?;
                Ok((key, ms))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("timing: `per_scenario` must be an array".into()),
    };
    Ok(SweepTiming {
        wall_ms_total,
        pool_capacity,
        workers_high_water,
        cache_hits,
        cache_misses,
        reused_rows,
        per_scenario,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Variant;

    #[test]
    fn hostile_bracket_nesting_is_an_error_not_an_overflow() {
        // Two megabytes of `[` must come back as a parse error with a
        // position, not abort the process.
        let hostile = "[".repeat(2_000_000);
        let err = parse_json(&hostile).unwrap_err();
        assert!(err.contains("nested deeper"), "unexpected error: {err}");
        let objs = "{\"k\":".repeat(2_000_000);
        let err = parse_json(&objs).unwrap_err();
        assert!(err.contains("nested deeper"), "unexpected error: {err}");
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let doc = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        parse_json(&doc).unwrap();
    }

    fn sample_record(workload: &str, speedup: Option<f64>) -> SweepRecord {
        SweepRecord {
            spec: ScenarioSpec {
                workload: workload.into(),
                size: SizeClass::Small,
                np: 2,
                model: ModelSpec::MpichGm,
                tile_size: Some(8),
                variant: Variant::Compare,
            },
            status: RunStatus::Ok,
            tile_size: Some(8),
            strategy: Some("fig4-all-peers".into()),
            orig_ns: Some(1000),
            prepush_ns: Some(800),
            orig_exposed_ns: Some(100),
            prepush_exposed_ns: Some(50),
            speedup,
            input_hash: Some(0x0123_4567_89ab_cdef),
            wall_ms: 0.0,
        }
    }

    fn sample_result() -> SweepResult {
        let records = vec![
            sample_record("direct2d", Some(1.25)),
            SweepRecord {
                status: RunStatus::Error("boom \"quoted\"\nline2".into()),
                orig_ns: None,
                prepush_ns: None,
                orig_exposed_ns: None,
                prepush_exposed_ns: None,
                speedup: None,
                tile_size: None,
                strategy: None,
                ..sample_record("indirect", None)
            },
        ];
        let summary = summarize(&records, 0.0);
        SweepResult {
            records,
            summary,
            timing: None,
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let result = sample_result();
        let text = to_json_string(&result);
        let back = from_json_string(&text).unwrap();
        assert_eq!(back, result);
        assert_eq!(to_json_string(&back), text);
    }

    #[test]
    fn integral_floats_survive_the_int_detour() {
        // speedup 2.0 writes as `2`, reads back as Int, and must still
        // re-serialize identically.
        let mut result = sample_result();
        result.records[0].speedup = Some(2.0);
        result.summary = summarize(&result.records, 0.0);
        let text = to_json_string(&result);
        let back = from_json_string(&text).unwrap();
        assert_eq!(back.records[0].speedup, Some(2.0));
        assert_eq!(to_json_string(&back), text);
    }

    #[test]
    fn v2_artifacts_still_read_with_hashes_and_cache_stats_defaulted() {
        // A v3 artifact rewritten to v2 shape: no `input_hash` on records,
        // no cache fields in timing. The reader must accept it, defaulting
        // input_hash to None (so `--incremental` treats every row as a
        // miss) and the cache counters to 0.
        let mut result = sample_result();
        result.timing = Some(SweepTiming {
            wall_ms_total: 1.5,
            pool_capacity: 8,
            workers_high_water: 4,
            cache_hits: 3,
            cache_misses: 2,
            reused_rows: 1,
            per_scenario: vec![("k".into(), 1.5)],
        });
        let v3 = to_json_string(&result);
        let v2 = v3
            .replace(SCHEMA, SCHEMA_V2)
            .lines()
            .filter(|l| {
                !l.contains("\"input_hash\"")
                    && !l.contains("\"cache_hits\"")
                    && !l.contains("\"cache_misses\"")
                    && !l.contains("\"reused_rows\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Dropping lines leaves a trailing comma before `"wall_ms"`; the
        // writer always comma-terminates the dropped lines' predecessors,
        // so the filtered text is still valid JSON.
        let back = from_json_string(&v2).unwrap();
        assert!(back.records.iter().all(|r| r.input_hash.is_none()));
        let t = back.timing.unwrap();
        assert_eq!((t.cache_hits, t.cache_misses, t.reused_rows), (0, 0, 0));

        // And a malformed hash is an error, not a silent None.
        let bad = v3.replace("0123456789abcdef", "not-hex-not-16");
        assert!(from_json_string(&bad)
            .unwrap_err()
            .contains("input_hash"));
    }

    #[test]
    fn timing_roundtrips_cache_stats() {
        let mut result = sample_result();
        result.timing = Some(SweepTiming {
            wall_ms_total: 2.0,
            pool_capacity: 16,
            workers_high_water: 9,
            cache_hits: 40,
            cache_misses: 14,
            reused_rows: 94,
            per_scenario: vec![],
        });
        let text = to_json_string(&result);
        let back = from_json_string(&text).unwrap();
        assert_eq!(back.timing, result.timing);
        assert_eq!(to_json_string(&back), text);
    }

    #[test]
    fn parser_reports_readable_errors() {
        assert!(parse_json("{\"a\": }").unwrap_err().contains("line 1"));
        assert!(parse_json("[1, 2").unwrap_err().contains("expected"));
        assert!(from_json_string("{\"schema\": \"other/v9\", \"records\": [], \"summary\": {}}")
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse_json(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_json("{} x").is_err());
    }

    #[test]
    fn malformed_non_utf8_bytes_error_instead_of_panicking() {
        // A lone 0xFF inside a string: not a continuation byte, not a
        // valid scalar — must be a parse error, not a panic.
        let e = parse_json_bytes(b"{\"s\": \"\xFF\"}").unwrap_err();
        assert!(e.contains("invalid UTF-8"), "{e}");
        // A truncated multi-byte sequence (0xC3 lead with no tail).
        let e = parse_json_bytes(b"[\"\xC3\"]").unwrap_err();
        assert!(e.contains("invalid UTF-8"), "{e}");
        // An overlong-style continuation run spliced mid-string.
        let e = parse_json_bytes(b"{\"k\": \"a\xE2\x28\xA1b\"}").unwrap_err();
        assert!(e.contains("invalid UTF-8"), "{e}");
        // The same corruption through the full artifact reader.
        let e = from_json_bytes(b"{\"schema\": \"overlap-sweep/v2\", \"records\": [\"\xFF\"]}")
            .unwrap_err();
        assert!(e.contains("invalid UTF-8"), "{e}");
    }

    #[test]
    fn arbitrary_byte_soup_never_panics() {
        // Fuzz-ish sweep: every 1- and 2-byte prefix of the byte range
        // plus a few structured corruptions. The only acceptable
        // outcomes are Ok or Err — a panic here is the bug this guards.
        for b in 0u8..=255 {
            let _ = parse_json_bytes(&[b]);
            let _ = parse_json_bytes(&[b'"', b]);
            let _ = parse_json_bytes(&[b'"', b'\\', b]);
            let _ = parse_json_bytes(&[b'[', b, b']']);
        }
        let valid = to_json_string(&sample_result());
        let bytes = valid.as_bytes();
        // Corrupt each position of a real artifact in turn (stride keeps
        // the test fast; corruption classes repeat long before that).
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.to_vec();
            corrupted[i] = 0xFF;
            let _ = from_json_bytes(&corrupted);
            corrupted[i] = 0xC3;
            let _ = from_json_bytes(&corrupted);
        }
    }

    #[test]
    fn byte_and_str_entry_points_agree_on_valid_input() {
        let text = to_json_string(&sample_result());
        assert_eq!(
            parse_json(&text).unwrap(),
            parse_json_bytes(text.as_bytes()).unwrap()
        );
        assert_eq!(
            from_json_string(&text).unwrap(),
            from_json_bytes(text.as_bytes()).unwrap()
        );
    }
}
