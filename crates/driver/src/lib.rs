//! # driver — the declarative scenario-sweep engine
//!
//! The paper's evaluation is a grid: workloads × rank counts × network
//! models × tile sizes. This crate turns every figure, ablation, and
//! future scenario into *data*:
//!
//! - [`ScenarioSpec`] names one point of the grid (workload by registry
//!   name, size class, np, [`ModelSpec`], tile size K, [`Variant`]);
//! - [`SweepGrid`] expands axes cartesian-product-style, with
//!   [`FilterSpec`] filters (plain data, so grids serialize), in a
//!   deterministic order;
//! - [`toml`] loads/writes grids as declarative `scenarios/*.toml` files
//!   (`overlap-grid/v1`, a dependency-free TOML subset) — new scenario
//!   families need a file edit, not a recompile;
//! - [`run_sweep`] executes scenarios on work-stealing workers scheduled
//!   onto the persistent `clustersim` rank pool, isolating per-scenario
//!   panics into error rows and returning records in grid order
//!   regardless of completion order;
//! - [`json`] reads/writes the dependency-free `overlap-sweep/v2`
//!   artifact (`BENCH_sweep.json`), including the optional host-timing
//!   section (reader also accepts v1);
//! - [`diff`](diff()) compares two artifacts and flags virtual-time
//!   regressions.
//!
//! The facade re-exports this crate as `overlap_suite::sweep`.
//!
//! ```
//! use driver::{run_sweep, ModelSpec, SizeClass, SweepGrid};
//!
//! let grid = SweepGrid::new()
//!     .workloads(["direct2d"])
//!     .size(SizeClass::Small)
//!     .nps([2])
//!     .models([ModelSpec::MpichGm]);
//! let result = run_sweep(&grid, 0); // 0 = one worker per core
//! assert_eq!(result.records.len(), 1);
//! assert!(result.records[0].speedup.unwrap() > 0.0);
//! let artifact = driver::json::to_json_string(&result.normalized());
//! let back = driver::json::from_json_string(&artifact).unwrap();
//! assert_eq!(back, result.normalized());
//! ```

pub mod analyze;
pub mod cache;
pub mod client;
pub mod diff;
pub mod event;
pub mod exec;
pub mod grid;
pub mod job;
pub mod json;
pub mod measure;
pub mod spec;
mod text;
pub mod toml;

pub use analyze::{analyze_registry, AnalyzeRow};
pub use cache::{scenario_input_hash, CacheStats, CompileCache};
pub use diff::{diff, DiffReport, DiffRow};
pub use event::{EventSink, MemorySink, NullSink, ProgressEvent};
pub use exec::{
    run_scenario, run_scenario_in, run_specs, run_specs_with, run_sweep,
    run_sweep_incremental, run_sweep_incremental_with, run_sweep_with, summarize,
    IncrementalOutcome, RunStatus, SweepRecord, SweepResult, SweepSummary, SweepTiming,
};
pub use grid::{FilterSpec, SweepGrid};
pub use job::{GridSource, JobCore, JobId, JobSpec, JobState, JobStatus, SubmitError};
pub use toml::{grid_from_toml, grid_to_toml};
pub use measure::{measure, measure_original, transform_workload, Measurement};
pub use spec::{ModelSpec, ScenarioSpec, SizeClass, Variant};
