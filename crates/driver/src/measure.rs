//! The transform→interp→clustersim pipeline for one scenario: transform a
//! workload with the model-informed K heuristic, execute original and
//! pre-push variants on the simulated cluster, check output equivalence
//! (§4) as a side effect, and report the virtual-time figures the paper's
//! tables are built from. (Moved here from `overlap_bench` so the sweep
//! executor and the bench layer share one implementation.)

use crate::cache::CompileCache;
use crate::spec::ScenarioSpec;
use clustersim::{NetModel, NetworkModel, SimTime};
use compuniformer::kselect::ModelCaps;
use compuniformer::{transform, Options, TransformOutput, UserOracle};
use interp::{run_program, RunResult};
use workloads::Workload;

/// Measured figures for one (workload, np, model) point.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub workload: &'static str,
    /// Display name of the network model (owned: beta-sweep and
    /// congested/hetero names embed their parameters).
    pub model: String,
    pub np: usize,
    /// The tile size actually used (heuristic or requested).
    pub tile_size: Option<i64>,
    /// The communication strategy the transformation chose.
    pub strategy: Option<String>,
    pub orig: SimTime,
    pub prepush: SimTime,
    pub orig_exposed: SimTime,
    pub prepush_exposed: SimTime,
}

impl Measurement {
    pub fn speedup(&self) -> f64 {
        self.orig.as_ns() as f64 / self.prepush.as_ns().max(1) as f64
    }
}

/// Capability view of `model` for the K-selection predictor ([`ModelCaps`]):
/// effective constants under the family's assumed contention at `np` ranks.
///
/// - Uniform families expose their raw constants (exactly the four values
///   the predictor historically read);
/// - congested families expose the *bottleneck* stage's per-byte rate —
///   the link share when it is slower than the NIC — so K is chosen for
///   the bandwidth a transfer actually gets;
/// - heterogeneous families expose the worst rank's effective constants
///   (the slowest rank bounds every synchronizing exchange).
///
/// Any future family this mapping does not understand must set
/// `conservative: true` so feasible sites decline instead of shipping an
/// uncalibrated prediction.
pub fn model_caps(model: &NetworkModel, np: usize) -> ModelCaps {
    let base = ModelCaps {
        overhead_ns: Some(model.overhead.as_ns() as f64),
        cpu_ns_per_byte: Some(model.cpu_send_ns_per_byte),
        wire_ns_per_byte: Some(model.gap_ns_per_byte),
        latency_ns: Some(model.latency.as_ns() as f64),
        conservative: false,
    };
    match &model.family {
        NetModel::Uniform => base,
        NetModel::Congested { .. } => ModelCaps {
            wire_ns_per_byte: Some(model.effective_gap_ns_per_byte(np)),
            ..base
        },
        NetModel::Hetero(p) => {
            let (cpu, nic) = p.max_factors(np);
            ModelCaps {
                overhead_ns: base.overhead_ns.map(|o| o * cpu),
                cpu_ns_per_byte: base.cpu_ns_per_byte.map(|c| c * cpu),
                wire_ns_per_byte: base.wire_ns_per_byte.map(|w| w * nic),
                ..base
            }
        }
    }
}

/// Transform a workload with the model-informed K heuristic.
pub fn transform_workload(
    w: &dyn Workload,
    model: &NetworkModel,
    tile_size: Option<i64>,
) -> TransformOutput {
    let context = w.context();
    let np = context.get("np").unwrap_or(8).max(1) as usize;
    let opts = Options {
        tile_size,
        context,
        oracle: UserOracle::AssumeSafe,
        kselect_model: model_caps(model, np),
        ..Default::default()
    };
    transform(&w.program(), &opts)
        .unwrap_or_else(|e| panic!("workload `{}` must transform: {e}", w.name()))
}

/// Run original + transformed under `model`, verify equivalence, measure.
pub fn measure(
    w: &dyn Workload,
    np: usize,
    model: &NetworkModel,
    tile_size: Option<i64>,
) -> Measurement {
    let program = w.program();
    let out = transform_workload(w, model, tile_size);

    let base = run_program(&program, np, model)
        .unwrap_or_else(|e| panic!("`{}` original failed: {e}", w.name()));
    let pre = run_program(&out.program, np, model)
        .unwrap_or_else(|e| panic!("`{}` transformed failed: {e}", w.name()));

    check_equivalence(w, np, &out, &base, &pre);
    build_measurement(w, np, model, &out, &base, &pre)
}

/// [`measure`], but with parse → transform → lower → opt → typecheck
/// served from `cache`: only the two simulations run. Equivalence is
/// still asserted on every call — reuse skips *compilation*, never the
/// §4 gate.
pub fn measure_cached(
    cache: &CompileCache,
    spec: &ScenarioSpec,
    w: &dyn Workload,
    model: &NetworkModel,
) -> Measurement {
    let np = spec.np;
    let base = cache
        .original(spec, w)
        .run(np, model)
        .unwrap_or_else(|e| panic!("`{}` original failed: {e}", w.name()));
    let (out, compiled) = cache.transformed(spec, w, model);
    let pre = compiled
        .run(np, model)
        .unwrap_or_else(|e| panic!("`{}` transformed failed: {e}", w.name()));

    check_equivalence(w, np, &out, &base, &pre);
    build_measurement(w, np, model, &out, &base, &pre)
}

/// Equivalence gate (§4): benchmarks must compute identical answers.
fn check_equivalence(
    w: &dyn Workload,
    np: usize,
    out: &TransformOutput,
    base: &RunResult,
    pre: &RunResult,
) {
    let excluded = out.report.incomparable_arrays();
    for rank in 0..np {
        for name in w.output_arrays() {
            if excluded.contains(&name.as_str()) {
                continue;
            }
            assert_eq!(
                base.outputs[rank].arrays.get(&name),
                pre.outputs[rank].arrays.get(&name),
                "`{}` rank {rank} array `{name}` differs",
                w.name()
            );
        }
    }
}

fn build_measurement(
    w: &dyn Workload,
    np: usize,
    model: &NetworkModel,
    out: &TransformOutput,
    base: &RunResult,
    pre: &RunResult,
) -> Measurement {
    Measurement {
        workload: w.name(),
        model: model.name.to_string(),
        np,
        tile_size: out.report.opportunities.iter().find_map(|o| o.tile_size),
        strategy: out
            .report
            .opportunities
            .iter()
            .find_map(|o| o.strategy.map(|s| s.to_string())),
        orig: base.report.makespan(),
        prepush: pre.report.makespan(),
        orig_exposed: base.report.max_exposed_comm(),
        prepush_exposed: pre.report.max_exposed_comm(),
    }
}

/// Virtual times of the untransformed program only (for
/// [`crate::spec::Variant::Original`] scenarios).
pub fn measure_original(w: &dyn Workload, np: usize, model: &NetworkModel) -> (SimTime, SimTime) {
    let r = run_program(&w.program(), np, model)
        .unwrap_or_else(|e| panic!("`{}` original failed: {e}", w.name()));
    (r.report.makespan(), r.report.max_exposed_comm())
}

/// [`measure_original`] with the compiled program served from `cache`.
pub fn measure_original_cached(
    cache: &CompileCache,
    spec: &ScenarioSpec,
    w: &dyn Workload,
    model: &NetworkModel,
) -> (SimTime, SimTime) {
    let r = cache
        .original(spec, w)
        .run(spec.np, model)
        .unwrap_or_else(|e| panic!("`{}` original failed: {e}", w.name()));
    (r.report.makespan(), r.report.max_exposed_comm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_times_strategy_and_tile() {
        let w = workloads::direct2d::Direct2d::small(2);
        let m = measure(&w, 2, &NetworkModel::mpich_gm(), Some(8));
        assert!(m.orig > SimTime::ZERO);
        assert!(m.prepush > SimTime::ZERO);
        assert_eq!(m.np, 2);
        assert_eq!(m.tile_size, Some(8));
        assert!(m.strategy.is_some());
        assert!(m.speedup() > 0.0);
    }

    #[test]
    fn cached_measure_matches_uncached_exactly() {
        use crate::spec::{ModelSpec, SizeClass, Variant};
        let spec = ScenarioSpec {
            workload: "direct2d".into(),
            size: SizeClass::Small,
            np: 2,
            model: ModelSpec::MpichGm,
            tile_size: Some(8),
            variant: Variant::Compare,
        };
        let w = workloads::direct2d::Direct2d::small(2);
        let model = spec.model.to_model();
        let cold = measure(&w, spec.np, &model, spec.tile_size);
        let cache = CompileCache::new();
        // First call fills the cache, second is all-hit: both must agree
        // with the uncached path on every figure.
        for _ in 0..2 {
            let warm = measure_cached(&cache, &spec, &w, &model);
            assert_eq!(warm.orig, cold.orig);
            assert_eq!(warm.prepush, cold.prepush);
            assert_eq!(warm.orig_exposed, cold.orig_exposed);
            assert_eq!(warm.prepush_exposed, cold.prepush_exposed);
            assert_eq!(warm.tile_size, cold.tile_size);
            assert_eq!(warm.strategy, cold.strategy);
        }
        assert_eq!(cache.stats().hits, 2, "second call hits both entries");

        let (mo, eo) = measure_original(&w, spec.np, &model);
        let (mc, ec) = measure_original_cached(&cache, &spec, &w, &model);
        assert_eq!((mo, eo), (mc, ec));
    }

    #[test]
    fn measure_original_runs_without_transforming() {
        let w = workloads::direct::Direct1d::small(2);
        let (makespan, exposed) = measure_original(&w, 2, &NetworkModel::mpich());
        assert!(makespan > SimTime::ZERO);
        assert!(exposed <= makespan);
    }
}
