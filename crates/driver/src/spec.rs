//! Declarative scenario specifications. A [`ScenarioSpec`] is plain data
//! — workload *name*, size class, rank count, a [`ModelSpec`] naming a
//! network model, requested tile size, and variant — so grids, JSON
//! artifacts, and diff keys can describe scenarios without holding live
//! programs or models.

use clustersim::{HeteroProfile, NetworkModel};
pub use workloads::SizeClass;

/// Which program variants a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Transform, run both variants, assert output equivalence (§4), and
    /// report both virtual times plus the speedup. The default.
    Compare,
    /// Run only the untransformed program.
    Original,
    /// Transform and run only the pre-push program (no equivalence gate).
    Prepush,
}

impl Variant {
    pub fn id(self) -> &'static str {
        match self {
            Variant::Compare => "compare",
            Variant::Original => "original",
            Variant::Prepush => "prepush",
        }
    }

    pub fn parse(s: &str) -> Option<Variant> {
        match s {
            "compare" => Some(Variant::Compare),
            "original" => Some(Variant::Original),
            "prepush" => Some(Variant::Prepush),
            _ => None,
        }
    }
}

/// A network model named as data. `to_model` materializes the live
/// [`NetworkModel`]; `id`/`parse` give the stable string form used in
/// grids and JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    Mpich,
    MpichGm,
    RdmaIdeal,
    /// `NetworkModel::mpich_with_beta_scaled(factor)`: the per-byte CPU
    /// involvement sweep between TCP-like and RDMA-like stacks.
    MpichBeta(f64),
    /// `NetworkModel::mpich_gm_congested(links, load)`: MPICH-GM behind a
    /// shared switch link — `links` physical links serve all ranks and
    /// `load` scales the link's per-byte time for background traffic.
    Congested { links: u32, load: f64 },
    /// `NetworkModel::mpich_gm_hetero(profile)`: MPICH-GM on a
    /// heterogeneous cluster with a named per-rank speed profile.
    Hetero(HeteroProfile),
}

/// One-line summary of every valid model id and family, for parse errors
/// and `--model` help.
pub const MODEL_FORMS: &str = "valid ids: mpich, mpich-gm, rdma-ideal; \
     families: mpich-beta:<factor> (factor finite, >= 0 — e.g. mpich-beta:0.5), \
     congested:<links>:<load> (links >= 1, load finite, > 0 — e.g. congested:2:1.5), \
     hetero:<profile> (profiles: half-slow, straggler — e.g. hetero:half-slow)";

impl ModelSpec {
    pub fn to_model(&self) -> NetworkModel {
        match self {
            ModelSpec::Mpich => NetworkModel::mpich(),
            ModelSpec::MpichGm => NetworkModel::mpich_gm(),
            ModelSpec::RdmaIdeal => NetworkModel::rdma_ideal(),
            ModelSpec::MpichBeta(f) => NetworkModel::mpich_with_beta_scaled(*f),
            ModelSpec::Congested { links, load } => {
                NetworkModel::mpich_gm_congested(*links, *load)
            }
            ModelSpec::Hetero(p) => NetworkModel::mpich_gm_hetero(*p),
        }
    }

    pub fn id(&self) -> String {
        match self {
            ModelSpec::Mpich => "mpich".into(),
            ModelSpec::MpichGm => "mpich-gm".into(),
            ModelSpec::RdmaIdeal => "rdma-ideal".into(),
            ModelSpec::MpichBeta(f) => format!("mpich-beta:{f}"),
            ModelSpec::Congested { links, load } => format!("congested:{links}:{load}"),
            ModelSpec::Hetero(p) => format!("hetero:{}", p.id()),
        }
    }

    pub fn parse(s: &str) -> Result<ModelSpec, String> {
        match s {
            "mpich" => Ok(ModelSpec::Mpich),
            "mpich-gm" => Ok(ModelSpec::MpichGm),
            "rdma-ideal" => Ok(ModelSpec::RdmaIdeal),
            _ => {
                if let Some(rest) = s.strip_prefix("mpich-beta:") {
                    let f = rest
                        .parse::<f64>()
                        .map_err(|e| format!("bad beta factor in `{s}`: {e} ({MODEL_FORMS})"))?;
                    if !f.is_finite() || f < 0.0 {
                        return Err(format!(
                            "bad beta factor in `{s}`: must be finite and >= 0, got {f}"
                        ));
                    }
                    Ok(ModelSpec::MpichBeta(f))
                } else if let Some(rest) = s.strip_prefix("congested:") {
                    let (links_s, load_s) = rest.split_once(':').ok_or_else(|| {
                        format!("`{s}` needs congested:<links>:<load> ({MODEL_FORMS})")
                    })?;
                    let links = links_s
                        .parse::<u32>()
                        .map_err(|e| format!("bad link count in `{s}`: {e} ({MODEL_FORMS})"))?;
                    if links == 0 {
                        return Err(format!("bad link count in `{s}`: must be >= 1"));
                    }
                    let load = load_s
                        .parse::<f64>()
                        .map_err(|e| format!("bad load factor in `{s}`: {e} ({MODEL_FORMS})"))?;
                    if !load.is_finite() || load <= 0.0 {
                        return Err(format!(
                            "bad load factor in `{s}`: must be finite and > 0, got {load}"
                        ));
                    }
                    Ok(ModelSpec::Congested { links, load })
                } else if let Some(rest) = s.strip_prefix("hetero:") {
                    HeteroProfile::from_id(rest).map(ModelSpec::Hetero).ok_or_else(|| {
                        let known: Vec<&str> =
                            HeteroProfile::ALL.iter().map(|p| p.id()).collect();
                        format!(
                            "unknown hetero profile `{rest}` in `{s}` (profiles: {})",
                            known.join(", ")
                        )
                    })
                } else {
                    Err(format!("unknown model `{s}` ({MODEL_FORMS})"))
                }
            }
        }
    }

    /// The three preset stacks (no beta sweep points or new-family
    /// columns — `harness analyze` and the differential suites iterate
    /// exactly these).
    pub fn presets() -> Vec<ModelSpec> {
        vec![ModelSpec::Mpich, ModelSpec::MpichGm, ModelSpec::RdmaIdeal]
    }
}

/// One point of the evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Workload registry name (see [`workloads::registry`]).
    pub workload: String,
    pub size: SizeClass,
    pub np: usize,
    pub model: ModelSpec,
    /// Requested tile size K; `None` lets the model-informed heuristic
    /// pick (the chosen value is reported back in the record).
    pub tile_size: Option<i64>,
    pub variant: Variant,
}

impl ScenarioSpec {
    /// Stable identity string: the diff key and the label used in reports.
    pub fn key(&self) -> String {
        let k = match self.tile_size {
            Some(k) => k.to_string(),
            None => "auto".into(),
        };
        format!(
            "{}/{} np={} model={} K={} {}",
            self.workload,
            self.size.id(),
            self.np,
            self.model.id(),
            k,
            self.variant.id()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_ids_roundtrip() {
        for m in [
            ModelSpec::Mpich,
            ModelSpec::MpichGm,
            ModelSpec::RdmaIdeal,
            ModelSpec::MpichBeta(0.125),
            ModelSpec::MpichBeta(2.0),
            ModelSpec::Congested { links: 1, load: 2.0 },
            ModelSpec::Congested { links: 4, load: 1.25 },
            ModelSpec::Hetero(HeteroProfile::HalfSlow),
            ModelSpec::Hetero(HeteroProfile::Straggler),
        ] {
            assert_eq!(ModelSpec::parse(&m.id()).unwrap(), m);
        }
        assert!(ModelSpec::parse("ethernet").is_err());
        assert!(ModelSpec::parse("mpich-beta:abc").is_err());
    }

    #[test]
    fn parse_rejects_degenerate_factors_with_actionable_errors() {
        // NaN / negative beta factors parse as f64 but are invalid models.
        let e = ModelSpec::parse("mpich-beta:NaN").unwrap_err();
        assert!(e.contains("finite and >= 0"), "{e}");
        let e = ModelSpec::parse("mpich-beta:-1").unwrap_err();
        assert!(e.contains("finite and >= 0"), "{e}");
        // Zero beta is legal (the model-sweep ablation uses it).
        assert_eq!(ModelSpec::parse("mpich-beta:0").unwrap(), ModelSpec::MpichBeta(0.0));

        // Congested: zero links, non-positive or non-finite load.
        let e = ModelSpec::parse("congested:0:1.5").unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = ModelSpec::parse("congested:2:0").unwrap_err();
        assert!(e.contains("finite and > 0"), "{e}");
        let e = ModelSpec::parse("congested:2:inf").unwrap_err();
        assert!(e.contains("finite and > 0"), "{e}");
        let e = ModelSpec::parse("congested:2").unwrap_err();
        assert!(e.contains("congested:<links>:<load>"), "{e}");

        // Unknown hetero profiles list the known ones.
        let e = ModelSpec::parse("hetero:turbo").unwrap_err();
        assert!(e.contains("half-slow") && e.contains("straggler"), "{e}");

        // Unknown ids list every valid id and family.
        let e = ModelSpec::parse("ethernet").unwrap_err();
        assert!(e.contains("unknown model `ethernet`"), "{e}");
        for needle in ["mpich-gm", "rdma-ideal", "mpich-beta:", "congested:", "hetero:"] {
            assert!(e.contains(needle), "error should mention {needle}: {e}");
        }
    }

    #[test]
    fn new_family_specs_materialize_their_models() {
        let m = ModelSpec::Congested { links: 2, load: 1.5 }.to_model();
        assert_eq!(m.link_share_ns_per_byte(8), Some(24.0));
        let h = ModelSpec::Hetero(HeteroProfile::HalfSlow).to_model();
        assert_eq!(h.rank_factors(3, 4), (2.0, 2.0));
    }

    #[test]
    fn model_spec_materializes_the_right_presets() {
        assert_eq!(ModelSpec::Mpich.to_model().name, "MPICH");
        assert_eq!(ModelSpec::MpichGm.to_model().name, "MPICH-GM");
        let b = ModelSpec::MpichBeta(0.0).to_model();
        assert_eq!(b.cpu_send_ns_per_byte, 0.0);
    }

    #[test]
    fn variant_ids_roundtrip() {
        for v in [Variant::Compare, Variant::Original, Variant::Prepush] {
            assert_eq!(Variant::parse(v.id()), Some(v));
        }
        assert_eq!(Variant::parse("both"), None);
    }

    #[test]
    fn key_is_stable_and_readable() {
        let s = ScenarioSpec {
            workload: "direct2d".into(),
            size: SizeClass::Standard,
            np: 8,
            model: ModelSpec::MpichGm,
            tile_size: None,
            variant: Variant::Compare,
        };
        assert_eq!(s.key(), "direct2d/standard np=8 model=mpich-gm K=auto compare");
    }
}
