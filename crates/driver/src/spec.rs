//! Declarative scenario specifications. A [`ScenarioSpec`] is plain data
//! — workload *name*, size class, rank count, a [`ModelSpec`] naming a
//! network model, requested tile size, and variant — so grids, JSON
//! artifacts, and diff keys can describe scenarios without holding live
//! programs or models.

use clustersim::NetworkModel;
pub use workloads::SizeClass;

/// Which program variants a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Transform, run both variants, assert output equivalence (§4), and
    /// report both virtual times plus the speedup. The default.
    Compare,
    /// Run only the untransformed program.
    Original,
    /// Transform and run only the pre-push program (no equivalence gate).
    Prepush,
}

impl Variant {
    pub fn id(self) -> &'static str {
        match self {
            Variant::Compare => "compare",
            Variant::Original => "original",
            Variant::Prepush => "prepush",
        }
    }

    pub fn parse(s: &str) -> Option<Variant> {
        match s {
            "compare" => Some(Variant::Compare),
            "original" => Some(Variant::Original),
            "prepush" => Some(Variant::Prepush),
            _ => None,
        }
    }
}

/// A network model named as data. `to_model` materializes the live
/// [`NetworkModel`]; `id`/`parse` give the stable string form used in
/// grids and JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    Mpich,
    MpichGm,
    RdmaIdeal,
    /// `NetworkModel::mpich_with_beta_scaled(factor)`: the per-byte CPU
    /// involvement sweep between TCP-like and RDMA-like stacks.
    MpichBeta(f64),
}

impl ModelSpec {
    pub fn to_model(&self) -> NetworkModel {
        match self {
            ModelSpec::Mpich => NetworkModel::mpich(),
            ModelSpec::MpichGm => NetworkModel::mpich_gm(),
            ModelSpec::RdmaIdeal => NetworkModel::rdma_ideal(),
            ModelSpec::MpichBeta(f) => NetworkModel::mpich_with_beta_scaled(*f),
        }
    }

    pub fn id(&self) -> String {
        match self {
            ModelSpec::Mpich => "mpich".into(),
            ModelSpec::MpichGm => "mpich-gm".into(),
            ModelSpec::RdmaIdeal => "rdma-ideal".into(),
            ModelSpec::MpichBeta(f) => format!("mpich-beta:{f}"),
        }
    }

    pub fn parse(s: &str) -> Result<ModelSpec, String> {
        match s {
            "mpich" => Ok(ModelSpec::Mpich),
            "mpich-gm" => Ok(ModelSpec::MpichGm),
            "rdma-ideal" => Ok(ModelSpec::RdmaIdeal),
            _ => {
                if let Some(rest) = s.strip_prefix("mpich-beta:") {
                    rest.parse::<f64>()
                        .map(ModelSpec::MpichBeta)
                        .map_err(|e| format!("bad beta factor in `{s}`: {e}"))
                } else {
                    Err(format!(
                        "unknown model `{s}` (expected mpich, mpich-gm, rdma-ideal, \
                         or mpich-beta:<factor>)"
                    ))
                }
            }
        }
    }

    /// The three preset stacks (no beta sweep points).
    pub fn presets() -> Vec<ModelSpec> {
        vec![ModelSpec::Mpich, ModelSpec::MpichGm, ModelSpec::RdmaIdeal]
    }
}

/// One point of the evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Workload registry name (see [`workloads::registry`]).
    pub workload: String,
    pub size: SizeClass,
    pub np: usize,
    pub model: ModelSpec,
    /// Requested tile size K; `None` lets the model-informed heuristic
    /// pick (the chosen value is reported back in the record).
    pub tile_size: Option<i64>,
    pub variant: Variant,
}

impl ScenarioSpec {
    /// Stable identity string: the diff key and the label used in reports.
    pub fn key(&self) -> String {
        let k = match self.tile_size {
            Some(k) => k.to_string(),
            None => "auto".into(),
        };
        format!(
            "{}/{} np={} model={} K={} {}",
            self.workload,
            self.size.id(),
            self.np,
            self.model.id(),
            k,
            self.variant.id()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_ids_roundtrip() {
        for m in [
            ModelSpec::Mpich,
            ModelSpec::MpichGm,
            ModelSpec::RdmaIdeal,
            ModelSpec::MpichBeta(0.125),
            ModelSpec::MpichBeta(2.0),
        ] {
            assert_eq!(ModelSpec::parse(&m.id()).unwrap(), m);
        }
        assert!(ModelSpec::parse("ethernet").is_err());
        assert!(ModelSpec::parse("mpich-beta:abc").is_err());
    }

    #[test]
    fn model_spec_materializes_the_right_presets() {
        assert_eq!(ModelSpec::Mpich.to_model().name, "MPICH");
        assert_eq!(ModelSpec::MpichGm.to_model().name, "MPICH-GM");
        let b = ModelSpec::MpichBeta(0.0).to_model();
        assert_eq!(b.cpu_send_ns_per_byte, 0.0);
    }

    #[test]
    fn variant_ids_roundtrip() {
        for v in [Variant::Compare, Variant::Original, Variant::Prepush] {
            assert_eq!(Variant::parse(v.id()), Some(v));
        }
        assert_eq!(Variant::parse("both"), None);
    }

    #[test]
    fn key_is_stable_and_readable() {
        let s = ScenarioSpec {
            workload: "direct2d".into(),
            size: SizeClass::Standard,
            np: 8,
            model: ModelSpec::MpichGm,
            tile_size: None,
            variant: Variant::Compare,
        };
        assert_eq!(s.key(), "direct2d/standard np=8 model=mpich-gm K=auto compare");
    }
}
