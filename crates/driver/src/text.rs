//! Low-level text helpers shared by the two dependency-free file
//! formats ([`crate::json`], [`crate::toml`]): the escape set for
//! double-quoted strings (identical for JSON strings and TOML basic
//! strings) and byte-level UTF-8 scalar scanning. One implementation,
//! so an escaping or validation fix lands in both readers at once.

use std::fmt::Write as _;

/// Append `s` as a double-quoted, escaped string.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Consume one UTF-8 scalar at `start` (a lead byte plus its
/// continuation bytes), returning the position past it and the validated
/// text. `Err` on malformed sequences — parsers turn that into a
/// positioned parse error, never a panic.
pub(crate) fn consume_scalar(bytes: &[u8], start: usize) -> Result<(usize, &str), ()> {
    let mut pos = start + 1;
    while bytes.get(pos).is_some_and(|b| b & 0xC0 == 0x80) {
        pos += 1;
    }
    match std::str::from_utf8(&bytes[start..pos]) {
        Ok(chunk) => Ok((pos, chunk)),
        Err(_) => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_quotes_and_backslashes() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}é");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001é\"");
    }

    #[test]
    fn consume_scalar_accepts_multibyte_and_rejects_malformed() {
        let bytes = "aé€".as_bytes();
        let (p, s) = consume_scalar(bytes, 0).unwrap();
        assert_eq!((p, s), (1, "a"));
        let (p, s) = consume_scalar(bytes, 1).unwrap();
        assert_eq!((p, s), (3, "é"));
        let (p, s) = consume_scalar(bytes, 3).unwrap();
        assert_eq!((p, s), (6, "€"));
        assert!(consume_scalar(b"\xFFx", 0).is_err());
        assert!(consume_scalar(b"\xC3", 0).is_err()); // truncated tail
        assert!(consume_scalar(b"a\xE2\x28\xA1b", 1).is_err());
    }
}
