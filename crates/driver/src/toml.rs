//! Dependency-free TOML-subset reader/writer for **scenario grid files**
//! (`scenarios/*.toml`): the sibling of [`crate::json`], with the same
//! zero-dependency discipline (no registry is reachable from this
//! environment, so both file formats are implemented in-tree).
//!
//! The accepted subset is exactly what grid files need, no more:
//!
//! - top-level `key = value` pairs, one-level `[table]` headers, and
//!   `[[array-of-tables]]` headers (no dotted keys, no nesting);
//! - bare keys (`[A-Za-z0-9_-]+`);
//! - values: basic `"strings"` (with `\" \\ \n \r \t \uXXXX` escapes),
//!   integers, floats, booleans, and (possibly multi-line) arrays —
//!   arrays may mix strings and integers, which the `tile_sizes` axis
//!   uses for `["auto", 64, ...]`;
//! - `#` comments and blank lines anywhere between statements.
//!
//! Grid files carry the `overlap-grid/v1` schema: a `schema` key, one
//! `[grid]` table naming the axes, and zero or more `[[filter]]` tables
//! naming [`FilterSpec`]s by kind. [`grid_to_toml`] writes the canonical
//! form; `grid_from_toml(grid_to_toml(g)) == g` and, for files already in
//! canonical form, `grid_to_toml(grid_from_toml(text)) == text` byte for
//! byte — the committed `scenarios/*.toml` are canonical and a golden
//! test pins that round-trip.
//!
//! Every rejection names the offending line and what was expected, so a
//! typo in a scenario file reads as a diagnostic, not a shrug.

use crate::grid::{FilterSpec, SweepGrid};
use crate::spec::{ModelSpec, SizeClass, Variant};
use std::fmt::Write as _;

/// The schema tag grid files carry.
pub const GRID_SCHEMA: &str = "overlap-grid/v1";

/// A TOML value (the accepted subset).
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Arr(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Arr(_) => "array",
        }
    }
}

/// `key = value` entries of one table, with the line each key appeared on
/// (for actionable diagnostics). Insertion order is preserved.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlTable {
    pub entries: Vec<(String, TomlValue, usize)>,
}

impl TomlTable {
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }
}

/// One `[name]` or `[[name]]` section of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlSection {
    pub name: String,
    /// `true` for `[[name]]` (array-of-tables element).
    pub is_array: bool,
    pub line: usize,
    pub table: TomlTable,
}

/// A parsed document: top-level keys plus sections in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlDoc {
    pub root: TomlTable,
    pub sections: Vec<TomlSection>,
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    depth: usize,
}

/// Arrays nested deeper than this are a parse error, not a stack
/// overflow. The grid schema uses depth 1 (value lists); 32 is generous.
const MAX_DEPTH: usize = 32;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("scenario file parse error at line {}: {msg}", self.line)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skip spaces/tabs and a trailing `#` comment, but stop at newline.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'#') {
            while self.peek().is_some_and(|b| b != b'\n') {
                self.pos += 1;
            }
        }
    }

    /// Skip whitespace, newlines, and comments (between statements and
    /// inside arrays).
    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a statement: only whitespace/comment may remain on the line.
    /// Accepts LF and CRLF endings — hand-edited files arrive both ways.
    fn expect_end_of_line(&mut self) -> Result<(), String> {
        self.skip_inline_ws();
        if self.peek() == Some(b'\r') && self.bytes.get(self.pos + 1) == Some(&b'\n') {
            self.pos += 1;
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err(&format!(
                "unexpected `{}` after value (one statement per line)",
                b.escape_ascii()
            ))),
        }
    }

    fn parse_bare_key(&mut self) -> Result<String, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a key ([A-Za-z0-9_-]+)"));
        }
        // Keys are scanned byte-wise over ASCII classes, so this slice is
        // always valid UTF-8; keep the error path anyway (subset parsers
        // should never panic on input).
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(str::to_string)
            .map_err(|_| self.err("key is not valid UTF-8"))
    }

    fn parse_basic_string(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let (next, chunk) = crate::text::consume_scalar(self.bytes, self.pos)
                        .map_err(|()| self.err("invalid UTF-8 in string"))?;
                    self.pos = next;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<TomlValue, String> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("number is not valid UTF-8"))?;
        if is_float {
            text.parse::<f64>()
                .map(TomlValue::Float)
                .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(TomlValue::Int)
                .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_value(&mut self) -> Result<TomlValue, String> {
        match self.peek() {
            None => Err(self.err("expected a value")),
            Some(b'"') => Ok(TomlValue::Str(self.parse_basic_string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                if self.depth > MAX_DEPTH {
                    return Err(
                        self.err(&format!("arrays nested deeper than {MAX_DEPTH} levels"))
                    );
                }
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(TomlValue::Arr(items));
                        }
                        None => return Err(self.err("unterminated array")),
                        _ => {}
                    }
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(TomlValue::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b't') | Some(b'f') => {
                for (lit, v) in [("true", true), ("false", false)] {
                    if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                        self.pos += lit.len();
                        return Ok(TomlValue::Bool(v));
                    }
                }
                Err(self.err("expected `true` or `false`"))
            }
            Some(b) if b == b'+' || b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!(
                "unexpected `{}` (values are strings, numbers, booleans, or arrays; \
                 bare words must be quoted)",
                b as char
            ))),
        }
    }

    fn parse_doc(&mut self) -> Result<TomlDoc, String> {
        let mut doc = TomlDoc::default();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Ok(doc),
                Some(b'[') => {
                    let line = self.line;
                    self.pos += 1;
                    let is_array = self.peek() == Some(b'[');
                    if is_array {
                        self.pos += 1;
                    }
                    let name = self.parse_bare_key()?;
                    if self.peek() != Some(b']') {
                        return Err(self.err("expected `]` closing the section header"));
                    }
                    self.pos += 1;
                    if is_array {
                        if self.peek() != Some(b']') {
                            return Err(self.err("expected `]]` closing the section header"));
                        }
                        self.pos += 1;
                    }
                    self.expect_end_of_line()?;
                    doc.sections.push(TomlSection {
                        name,
                        is_array,
                        line,
                        table: TomlTable::default(),
                    });
                }
                Some(_) => {
                    let line = self.line;
                    let key = self.parse_bare_key()?;
                    self.skip_inline_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(&format!("expected `=` after key `{key}`")));
                    }
                    self.pos += 1;
                    self.skip_inline_ws();
                    let value = self.parse_value()?;
                    self.expect_end_of_line()?;
                    let table = match doc.sections.last_mut() {
                        Some(s) => &mut s.table,
                        None => &mut doc.root,
                    };
                    if table.entries.iter().any(|(k, _, _)| *k == key) {
                        self.line = line;
                        return Err(self.err(&format!("duplicate key `{key}`")));
                    }
                    table.entries.push((key, value, line));
                }
            }
        }
    }
}

/// Parse a TOML-subset document (see the module docs for the subset).
pub fn parse_toml(text: &str) -> Result<TomlDoc, String> {
    Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line: 1,
        depth: 0,
    }
    .parse_doc()
}

// ----------------------------------------------------------- grid loader

fn expected_list(keys: &[&str]) -> String {
    keys.join(", ")
}

fn reject_unknown_keys(table: &TomlTable, what: &str, allowed: &[&str]) -> Result<(), String> {
    for (k, _, line) in &table.entries {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "line {line}: unknown key `{k}` in {what} (expected one of: {})",
                expected_list(allowed)
            ));
        }
    }
    Ok(())
}

fn require<'a>(table: &'a TomlTable, what: &str, key: &str) -> Result<&'a TomlValue, String> {
    table
        .get(key)
        .ok_or_else(|| format!("{what}: missing required key `{key}`"))
}

fn as_str<'a>(v: &'a TomlValue, what: &str, key: &str) -> Result<&'a str, String> {
    match v {
        TomlValue::Str(s) => Ok(s),
        other => Err(format!(
            "{what}: `{key}` must be a string, got {}",
            other.type_name()
        )),
    }
}

fn string_list(v: &TomlValue, what: &str, key: &str) -> Result<Vec<String>, String> {
    match v {
        TomlValue::Arr(items) => items
            .iter()
            .map(|item| as_str(item, what, key).map(str::to_string))
            .collect(),
        other => Err(format!(
            "{what}: `{key}` must be an array of strings, got {}",
            other.type_name()
        )),
    }
}

fn usize_list(v: &TomlValue, what: &str, key: &str) -> Result<Vec<usize>, String> {
    match v {
        TomlValue::Arr(items) => items
            .iter()
            .map(|item| match item {
                TomlValue::Int(i) if *i > 0 => Ok(*i as usize),
                TomlValue::Int(i) => {
                    Err(format!("{what}: `{key}` entries must be positive, got {i}"))
                }
                other => Err(format!(
                    "{what}: `{key}` must be an array of integers, got a {} entry",
                    other.type_name()
                )),
            })
            .collect(),
        other => Err(format!(
            "{what}: `{key}` must be an array of integers, got {}",
            other.type_name()
        )),
    }
}

fn as_usize(v: &TomlValue, what: &str, key: &str) -> Result<usize, String> {
    match v {
        TomlValue::Int(i) if *i > 0 => Ok(*i as usize),
        TomlValue::Int(i) => Err(format!("{what}: `{key}` must be positive, got {i}")),
        other => Err(format!(
            "{what}: `{key}` must be an integer, got {}",
            other.type_name()
        )),
    }
}

const GRID_KEYS: [&str; 6] = ["workloads", "size", "nps", "models", "tile_sizes", "variants"];

fn grid_from_doc(doc: &TomlDoc) -> Result<SweepGrid, String> {
    reject_unknown_keys(&doc.root, "the document root", &["schema"])?;
    let schema = as_str(require(&doc.root, "document", "schema")?, "document", "schema")?;
    if schema != GRID_SCHEMA {
        return Err(format!(
            "unsupported grid schema `{schema}` (this reader understands `{GRID_SCHEMA}`)"
        ));
    }

    let mut grid_table: Option<&TomlSection> = None;
    let mut filter_tables: Vec<&TomlSection> = Vec::new();
    for section in &doc.sections {
        match (section.name.as_str(), section.is_array) {
            ("grid", false) => {
                if grid_table.replace(section).is_some() {
                    return Err(format!("line {}: duplicate [grid] section", section.line));
                }
            }
            ("grid", true) => {
                return Err(format!(
                    "line {}: [grid] is a single table, not an array — write `[grid]`",
                    section.line
                ));
            }
            ("filter", true) => filter_tables.push(section),
            ("filter", false) => {
                return Err(format!(
                    "line {}: filters are an array of tables — write `[[filter]]`",
                    section.line
                ));
            }
            (other, _) => {
                return Err(format!(
                    "line {}: unknown section [{other}] (expected [grid] or [[filter]])",
                    section.line
                ));
            }
        }
    }
    let grid_table = grid_table.ok_or("scenario file has no [grid] section")?;
    let g = &grid_table.table;
    reject_unknown_keys(g, "[grid]", &GRID_KEYS)?;

    let what = "[grid]";
    let workloads = string_list(require(g, what, "workloads")?, what, "workloads")?;
    let size_text = as_str(require(g, what, "size")?, what, "size")?;
    let size = SizeClass::parse(size_text).ok_or_else(|| {
        format!("{what}: unknown size class `{size_text}` (expected small, medium, or standard)")
    })?;
    let nps = usize_list(require(g, what, "nps")?, what, "nps")?;
    let models = string_list(require(g, what, "models")?, what, "models")?
        .iter()
        .map(|m| ModelSpec::parse(m).map_err(|e| format!("{what}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    let tile_sizes = match g.get("tile_sizes") {
        None => vec![None],
        Some(TomlValue::Arr(items)) => items
            .iter()
            .map(|item| match item {
                TomlValue::Str(s) if s == "auto" => Ok(None),
                TomlValue::Int(i) if *i > 0 => Ok(Some(*i)),
                TomlValue::Int(i) => {
                    Err(format!("{what}: tile sizes must be positive, got {i}"))
                }
                other => Err(format!(
                    "{what}: `tile_sizes` entries must be \"auto\" or a positive \
                     integer, got a {}",
                    other.type_name()
                )),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(other) => {
            return Err(format!(
                "{what}: `tile_sizes` must be an array, got {}",
                other.type_name()
            ))
        }
    };
    let variants = match g.get("variants") {
        None => vec![Variant::Compare],
        Some(v) => string_list(v, what, "variants")?
            .iter()
            .map(|s| {
                Variant::parse(s).ok_or_else(|| {
                    format!(
                        "{what}: unknown variant `{s}` (expected compare, original, \
                         or prepush)"
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };

    // An empty axis would expand to a zero-scenario sweep that "succeeds"
    // while writing an empty artifact — reject it like any other mistake.
    for (key, len) in [
        ("workloads", workloads.len()),
        ("nps", nps.len()),
        ("models", models.len()),
        ("tile_sizes", tile_sizes.len()),
        ("variants", variants.len()),
    ] {
        if len == 0 {
            return Err(format!(
                "{what}: `{key}` must not be empty (an empty axis expands to a \
                 zero-scenario sweep)"
            ));
        }
    }

    let mut grid = SweepGrid::new()
        .workloads(workloads)
        .size(size)
        .nps(nps)
        .models(models)
        .tile_sizes(tile_sizes)
        .variants(variants);
    for section in filter_tables {
        grid = grid.filter(filter_from_table(section)?);
    }
    Ok(grid)
}

fn filter_from_table(section: &TomlSection) -> Result<FilterSpec, String> {
    let t = &section.table;
    let what = format!("[[filter]] at line {}", section.line);
    let kind = as_str(require(t, &what, "kind")?, &what, "kind")?;
    let check = |allowed: &[&str]| reject_unknown_keys(t, &format!("{what} ({kind})"), allowed);
    match kind {
        "min-np" => {
            check(&["kind", "np"])?;
            Ok(FilterSpec::MinNp(as_usize(require(t, &what, "np")?, &what, "np")?))
        }
        "max-np" => {
            check(&["kind", "np"])?;
            Ok(FilterSpec::MaxNp(as_usize(require(t, &what, "np")?, &what, "np")?))
        }
        "workload-in" => {
            check(&["kind", "workloads"])?;
            Ok(FilterSpec::WorkloadIn(string_list(
                require(t, &what, "workloads")?,
                &what,
                "workloads",
            )?))
        }
        "np-cap-except" => {
            check(&["kind", "max_np", "exempt"])?;
            Ok(FilterSpec::NpCapExcept {
                max_np: as_usize(require(t, &what, "max_np")?, &what, "max_np")?,
                exempt: string_list(require(t, &what, "exempt")?, &what, "exempt")?,
            })
        }
        "model-np-cap" => {
            check(&["kind", "model", "max_np"])?;
            let model = as_str(require(t, &what, "model")?, &what, "model")?;
            // Validate the model id eagerly so a typo is caught at load
            // time, not as a silently never-matching filter.
            ModelSpec::parse(model).map_err(|e| format!("{what}: {e}"))?;
            Ok(FilterSpec::ModelNpCap {
                model: model.to_string(),
                max_np: as_usize(require(t, &what, "max_np")?, &what, "max_np")?,
            })
        }
        "tile-axis-scope" => {
            check(&["kind", "workloads", "nps", "models"])?;
            let models = string_list(require(t, &what, "models")?, &what, "models")?;
            for m in &models {
                ModelSpec::parse(m).map_err(|e| format!("{what}: {e}"))?;
            }
            Ok(FilterSpec::TileAxisScope {
                workloads: string_list(require(t, &what, "workloads")?, &what, "workloads")?,
                nps: usize_list(require(t, &what, "nps")?, &what, "nps")?,
                models,
            })
        }
        "overlap-guaranteed" => {
            check(&["kind"])?;
            Ok(FilterSpec::OverlapGuaranteed)
        }
        other => Err(format!(
            "{what}: unknown filter kind `{other}` (known kinds: {})",
            expected_list(&FilterSpec::KINDS)
        )),
    }
}

/// Load a [`SweepGrid`] from scenario-file text.
pub fn grid_from_toml(text: &str) -> Result<SweepGrid, String> {
    grid_from_doc(&parse_toml(text)?)
}

// ----------------------------------------------------------- grid writer

// JSON strings and TOML basic strings share one escape set; the single
// implementation lives in `crate::text`.
use crate::text::write_escaped as write_toml_str;

fn write_string_array(out: &mut String, key: &str, items: &[String]) {
    let _ = write!(out, "{key} = [");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_toml_str(out, item);
    }
    out.push_str("]\n");
}

fn write_usize_array(out: &mut String, key: &str, items: &[usize]) {
    let _ = write!(out, "{key} = [");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{item}");
    }
    out.push_str("]\n");
}

/// Serialize a grid to the canonical scenario-file text (the form the
/// committed `scenarios/*.toml` are kept in).
pub fn grid_to_toml(grid: &SweepGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema = \"{GRID_SCHEMA}\"");
    out.push_str("\n[grid]\n");
    write_string_array(&mut out, "workloads", &grid.workloads);
    let _ = writeln!(out, "size = \"{}\"", grid.size.id());
    write_usize_array(&mut out, "nps", &grid.nps);
    write_string_array(
        &mut out,
        "models",
        &grid.models.iter().map(ModelSpec::id).collect::<Vec<_>>(),
    );
    out.push_str("tile_sizes = [");
    for (i, k) in grid.tile_sizes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match k {
            None => out.push_str("\"auto\""),
            Some(k) => {
                let _ = write!(out, "{k}");
            }
        }
    }
    out.push_str("]\n");
    write_string_array(
        &mut out,
        "variants",
        &grid
            .variants
            .iter()
            .map(|v| v.id().to_string())
            .collect::<Vec<_>>(),
    );
    for f in grid.filters() {
        out.push_str("\n[[filter]]\n");
        let _ = writeln!(out, "kind = \"{}\"", f.kind());
        match f {
            FilterSpec::MinNp(n) | FilterSpec::MaxNp(n) => {
                let _ = writeln!(out, "np = {n}");
            }
            FilterSpec::WorkloadIn(names) => {
                write_string_array(&mut out, "workloads", names);
            }
            FilterSpec::NpCapExcept { max_np, exempt } => {
                let _ = writeln!(out, "max_np = {max_np}");
                write_string_array(&mut out, "exempt", exempt);
            }
            FilterSpec::ModelNpCap { model, max_np } => {
                let _ = writeln!(out, "model = \"{model}\"");
                let _ = writeln!(out, "max_np = {max_np}");
            }
            FilterSpec::TileAxisScope {
                workloads,
                nps,
                models,
            } => {
                write_string_array(&mut out, "workloads", workloads);
                write_usize_array(&mut out, "nps", nps);
                write_string_array(&mut out, "models", models);
            }
            FilterSpec::OverlapGuaranteed => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_array_nesting_is_an_error_not_an_overflow() {
        let hostile = format!("[grid]\nx = {}", "[".repeat(1_000_000));
        let err = parse_toml(&hostile).unwrap_err();
        assert!(err.contains("nested deeper"), "unexpected error: {err}");
    }

    #[test]
    fn parses_the_subset() {
        let doc = parse_toml(
            "# header comment\n\
             schema = \"overlap-grid/v1\"\n\
             \n\
             [grid]\n\
             workloads = [\"a\", \"b\"]  # inline comment\n\
             nps = [\n  2,\n  4, # big\n]\n\
             flag = true\n\
             ratio = 1.5\n\
             \n\
             [[filter]]\n\
             kind = \"min-np\"\n\
             np = 4\n",
        )
        .unwrap();
        assert_eq!(
            doc.root.get("schema"),
            Some(&TomlValue::Str("overlap-grid/v1".into()))
        );
        assert_eq!(doc.sections.len(), 2);
        let grid = &doc.sections[0];
        assert_eq!(grid.name, "grid");
        assert!(!grid.is_array);
        assert_eq!(
            grid.table.get("nps"),
            Some(&TomlValue::Arr(vec![TomlValue::Int(2), TomlValue::Int(4)]))
        );
        assert_eq!(grid.table.get("flag"), Some(&TomlValue::Bool(true)));
        assert_eq!(grid.table.get("ratio"), Some(&TomlValue::Float(1.5)));
        assert!(doc.sections[1].is_array);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let e = parse_toml("a = 1\nb = \n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = parse_toml("a = 1\na = 2\n").unwrap_err();
        assert!(e.contains("duplicate key `a`") && e.contains("line 2"), "{e}");
        let e = parse_toml("a = 1 b = 2\n").unwrap_err();
        assert!(e.contains("one statement per line"), "{e}");
        let e = parse_toml("a = bare\n").unwrap_err();
        assert!(e.contains("quoted"), "{e}");
        let e = parse_toml("[grid\n").unwrap_err();
        assert!(e.contains("expected `]`"), "{e}");
        let e = parse_toml("a = \"unterminated\n").unwrap_err();
        assert!(e.contains("unterminated string"), "{e}");
    }

    #[test]
    fn crlf_files_load_identically_to_lf() {
        let lf = minimal_grid_text();
        let crlf = lf.replace('\n', "\r\n");
        assert_eq!(
            grid_from_toml(&crlf).unwrap(),
            grid_from_toml(lf).unwrap(),
            "CRLF endings must parse like LF"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        for (key, broken) in [
            ("workloads", "workloads = []"),
            ("nps", "nps = []"),
            ("models", "models = []"),
        ] {
            let text = minimal_grid_text()
                .lines()
                .map(|l| if l.starts_with(key) { broken } else { l })
                .collect::<Vec<_>>()
                .join("\n");
            let e = grid_from_toml(&text).unwrap_err();
            assert!(
                e.contains(&format!("`{key}` must not be empty")),
                "{key}: {e}"
            );
        }
        let text = format!("{}tile_sizes = []\n", minimal_grid_text());
        let e = grid_from_toml(&text).unwrap_err();
        assert!(e.contains("`tile_sizes` must not be empty"), "{e}");
    }

    fn minimal_grid_text() -> &'static str {
        "schema = \"overlap-grid/v1\"\n\n[grid]\nworkloads = [\"direct2d\"]\n\
         size = \"small\"\nnps = [2]\nmodels = [\"mpich-gm\"]\n"
    }

    #[test]
    fn loads_a_minimal_grid_with_defaults() {
        let grid = grid_from_toml(minimal_grid_text()).unwrap();
        assert_eq!(grid.workloads, vec!["direct2d"]);
        assert_eq!(grid.size, SizeClass::Small);
        assert_eq!(grid.tile_sizes, vec![None]); // default
        assert_eq!(grid.variants, vec![Variant::Compare]); // default
        assert_eq!(grid.expand().len(), 1);
    }

    #[test]
    fn every_preset_roundtrips_file_to_grid_to_file() {
        for grid in [
            SweepGrid::full(),
            SweepGrid::quick(),
            SweepGrid::fig1(),
            SweepGrid::scaling(),
            SweepGrid::interchange(),
        ] {
            let text = grid_to_toml(&grid);
            let back = grid_from_toml(&text)
                .unwrap_or_else(|e| panic!("canonical text failed to load: {e}\n{text}"));
            assert_eq!(back, grid, "grid drifted through the file form:\n{text}");
            assert_eq!(grid_to_toml(&back), text, "writer is not canonical");
        }
    }

    #[test]
    fn mixed_tile_size_axis_roundtrips() {
        let grid = SweepGrid::new()
            .workloads(["direct2d"])
            .nps([8])
            .models([ModelSpec::MpichGm, ModelSpec::MpichBeta(0.125)])
            .tile_sizes([None, Some(64), Some(4096)]);
        let text = grid_to_toml(&grid);
        assert!(text.contains("tile_sizes = [\"auto\", 64, 4096]"), "{text}");
        assert!(text.contains("mpich-beta:0.125"), "{text}");
        assert_eq!(grid_from_toml(&text).unwrap(), grid);
    }

    #[test]
    fn unknown_keys_and_kinds_are_rejected_with_guidance() {
        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"small\"\n\
             nps = [2]\nmodels = [\"mpich\"]\nsizes = [\"small\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("unknown key `sizes`"), "{e}");
        assert!(e.contains("tile_sizes"), "suggests the valid keys: {e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"small\"\n\
             nps = [2]\nmodels = [\"mpich\"]\n[[filter]]\nkind = \"np-at-least\"\nnp = 4\n",
        )
        .unwrap_err();
        assert!(e.contains("unknown filter kind `np-at-least`"), "{e}");
        assert!(e.contains("min-np"), "lists the known kinds: {e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"small\"\n\
             nps = [2]\nmodels = [\"ethernet\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("unknown model `ethernet`"), "{e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"tiny\"\n\
             nps = [2]\nmodels = [\"mpich\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("unknown size class `tiny`"), "{e}");

        let e = grid_from_toml("schema = \"overlap-grid/v2\"\n").unwrap_err();
        assert!(e.contains("unsupported grid schema"), "{e}");

        let e = grid_from_toml("schema = \"overlap-grid/v1\"\n").unwrap_err();
        assert!(e.contains("no [grid] section"), "{e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[[grid]]\nworkloads = [\"a\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("write `[grid]`"), "{e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"small\"\n\
             nps = [2]\nmodels = [\"mpich\"]\n[filter]\nkind = \"min-np\"\nnp = 2\n",
        )
        .unwrap_err();
        assert!(e.contains("write `[[filter]]`"), "{e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"small\"\n\
             nps = [2]\nmodels = [\"mpich\"]\n[[filter]]\nkind = \"model-np-cap\"\n\
             model = \"myrinet\"\nmax_np = 8\n",
        )
        .unwrap_err();
        assert!(e.contains("unknown model `myrinet`"), "{e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[grid]\nworkloads = [\"a\"]\nsize = \"small\"\n\
             nps = [2]\nmodels = [\"mpich\"]\ntile_sizes = [\"huge\"]\n",
        )
        .unwrap_err();
        assert!(e.contains("\"auto\""), "{e}");

        let e = grid_from_toml(
            "schema = \"overlap-grid/v1\"\n[orbit]\nx = 1\n",
        )
        .unwrap_err();
        assert!(e.contains("unknown section [orbit]"), "{e}");
    }
}
