//! The transformable IR: a typed AST for the mini-Fortran subset.
//!
//! This plays the role of the Nestor IR in the paper: the Compuniformer
//! consumes and rewrites these trees, and [`crate::unparse`] turns them back
//! into source text.
//!
//! Structural equality ([`PartialEq`]) deliberately ignores spans so that a
//! parse → unparse → parse roundtrip compares equal; see the manual impls at
//! the bottom of this module.

use crate::span::Span;

/// Scalar element types. The subset has no logical type; conditions are
/// integers (0 = false, nonzero = true), matching old Fortran practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    Integer,
    Real,
}

impl ScalarType {
    pub fn keyword(self) -> &'static str {
        match self {
            ScalarType::Integer => "integer",
            ScalarType::Real => "real",
        }
    }
}

/// One dimension's declared bounds, `lower:upper` (both inclusive, Fortran
/// style). `integer :: a(n)` parses with an implicit lower bound of 1.
#[derive(Debug, Clone)]
pub struct DimBound {
    pub lower: Expr,
    pub upper: Expr,
}

/// A variable declaration: scalar if `dims` is empty.
#[derive(Debug, Clone)]
pub struct Decl {
    pub name: String,
    pub ty: ScalarType,
    pub dims: Vec<DimBound>,
    pub span: Span,
}

impl Decl {
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Binary operators, in increasing precedence groups (see parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => ".or.",
            BinOp::And => ".and.",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
        }
    }

    /// Binding power for the unparser's minimal-parenthesis printing.
    /// Higher binds tighter. `Pow` is right-associative; the rest are left.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
            BinOp::Pow => 7,
        }
    }

    pub fn is_right_assoc(self) -> bool {
        matches!(self, BinOp::Pow)
    }

    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators. Unary minus has precedence 6 (between `*` and `**`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

impl UnOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => ".not.",
        }
    }
}

/// Expressions. `ArrayRef` covers both array element references and intrinsic
/// function calls at parse time; [`crate::validate`] reclassifies intrinsic
/// calls into `Call` using the intrinsic table.
#[derive(Debug, Clone)]
pub enum Expr {
    IntLit(i64, Span),
    RealLit(f64, Span),
    Var(String, Span),
    ArrayRef {
        name: String,
        indices: Vec<Expr>,
        span: Span,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::RealLit(_, s)
            | Expr::Var(_, s)
            | Expr::ArrayRef { span: s, .. }
            | Expr::Call { span: s, .. }
            | Expr::Unary { span: s, .. }
            | Expr::Binary { span: s, .. } => *s,
        }
    }

    /// Constant-fold check: is this literally the integer `v`?
    pub fn is_int(&self, v: i64) -> bool {
        matches!(self, Expr::IntLit(x, _) if *x == v)
    }

    /// If the expression is an integer literal, return it.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Does any subexpression reference an array element?
    /// (The paper's *direct* pattern requires an RHS that is not an array
    /// reference — §3.2.)
    pub fn contains_array_ref(&self) -> bool {
        match self {
            Expr::ArrayRef { .. } => true,
            Expr::IntLit(..) | Expr::RealLit(..) | Expr::Var(..) => false,
            Expr::Call { args, .. } => args.iter().any(Expr::contains_array_ref),
            Expr::Unary { operand, .. } => operand.contains_array_ref(),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.contains_array_ref() || rhs.contains_array_ref()
            }
        }
    }

    /// Collect the names of all scalar variables read by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(n, _) => {
                if !out.iter().any(|v| v == n) {
                    out.push(n.clone());
                }
            }
            Expr::IntLit(..) | Expr::RealLit(..) => {}
            Expr::ArrayRef { indices, .. } => {
                for i in indices {
                    i.free_vars(out);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::Unary { operand, .. } => operand.free_vars(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.free_vars(out);
                rhs.free_vars(out);
            }
        }
    }
}

/// An assignment target: scalar (`indices` empty) or array element.
#[derive(Debug, Clone)]
pub struct LValue {
    pub name: String,
    pub indices: Vec<Expr>,
    pub span: Span,
}

impl LValue {
    pub fn is_scalar(&self) -> bool {
        self.indices.is_empty()
    }
}

/// One dimension of an array section argument.
#[derive(Debug, Clone)]
pub enum SecDim {
    /// A single index: `a(i, …)`.
    Index(Expr),
    /// A bounded range `lo:hi`; either side may be omitted meaning the
    /// declared bound: `a(2:, :hi)`, or `a(:)` for the whole extent.
    Range(Option<Expr>, Option<Expr>),
}

/// An array section used as a call argument, e.g. `as(1:k, iy)`.
/// A bare array name argument is represented as a section with one
/// `Range(None, None)` per declared dimension after validation, or kept as
/// `Arg::Expr(Expr::Var)` before it.
#[derive(Debug, Clone)]
pub struct Section {
    pub name: String,
    pub dims: Vec<SecDim>,
    pub span: Span,
}

/// A call argument: a plain expression or an array section.
#[derive(Debug, Clone)]
pub enum Arg {
    Expr(Expr),
    Section(Section),
}

impl Arg {
    pub fn span(&self) -> Span {
        match self {
            Arg::Expr(e) => e.span(),
            Arg::Section(s) => s.span,
        }
    }

    /// The variable name this argument passes by reference, if it is a bare
    /// variable or a section (used by the mutation analysis in §3.1).
    pub fn passed_name(&self) -> Option<&str> {
        match self {
            Arg::Expr(Expr::Var(n, _)) => Some(n),
            Arg::Section(s) => Some(&s.name),
            _ => None,
        }
    }
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    Assign {
        target: LValue,
        value: Expr,
        span: Span,
    },
    Do {
        var: String,
        lower: Expr,
        upper: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        span: Span,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        span: Span,
    },
    Call {
        name: String,
        args: Vec<Arg>,
        span: Span,
    },
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Call { span, .. } => *span,
        }
    }

    pub fn kind_name(&self) -> &'static str {
        match self {
            Stmt::Assign { .. } => "assignment",
            Stmt::Do { .. } => "do loop",
            Stmt::If { .. } => "if",
            Stmt::Call { .. } => "call",
        }
    }
}

/// A subroutine parameter. Arrays are passed by reference; scalars by value.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub span: Span,
}

/// A procedure: the main program or a subroutine.
#[derive(Debug, Clone)]
pub struct Procedure {
    pub name: String,
    pub params: Vec<Param>,
    pub decls: Vec<Decl>,
    pub body: Vec<Stmt>,
    pub is_main: bool,
    pub span: Span,
}

impl Procedure {
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

/// A whole compilation unit: zero or more subroutines plus one main program.
#[derive(Debug, Clone)]
pub struct Program {
    pub procedures: Vec<Procedure>,
    pub main: Procedure,
}

impl Program {
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// All procedures including main, main last (source order).
    pub fn all_procedures(&self) -> impl Iterator<Item = &Procedure> {
        self.procedures.iter().chain(std::iter::once(&self.main))
    }
}

// ---------------------------------------------------------------------------
// Span-insensitive structural equality.
//
// PartialEq is implemented manually so unparse/parse roundtrips compare equal
// even though spans differ. Real literals compare with bitwise equality
// (f64::to_bits) so NaN == NaN and -0.0 != 0.0: the roundtrip property needs
// reflexivity, not IEEE semantics.
// ---------------------------------------------------------------------------

impl PartialEq for DimBound {
    fn eq(&self, other: &Self) -> bool {
        self.lower == other.lower && self.upper == other.upper
    }
}
impl Eq for DimBound {}

impl PartialEq for Decl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.ty == other.ty && self.dims == other.dims
    }
}
impl Eq for Decl {}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        use Expr::*;
        match (self, other) {
            (IntLit(a, _), IntLit(b, _)) => a == b,
            (RealLit(a, _), RealLit(b, _)) => a.to_bits() == b.to_bits(),
            (Var(a, _), Var(b, _)) => a == b,
            (
                ArrayRef {
                    name: n1,
                    indices: i1,
                    ..
                },
                ArrayRef {
                    name: n2,
                    indices: i2,
                    ..
                },
            ) => n1 == n2 && i1 == i2,
            (
                Call {
                    name: n1, args: a1, ..
                },
                Call {
                    name: n2, args: a2, ..
                },
            ) => n1 == n2 && a1 == a2,
            (
                Unary {
                    op: o1, operand: e1, ..
                },
                Unary {
                    op: o2, operand: e2, ..
                },
            ) => o1 == o2 && e1 == e2,
            (
                Binary {
                    op: o1,
                    lhs: l1,
                    rhs: r1,
                    ..
                },
                Binary {
                    op: o2,
                    lhs: l2,
                    rhs: r2,
                    ..
                },
            ) => o1 == o2 && l1 == l2 && r1 == r2,
            _ => false,
        }
    }
}
impl Eq for Expr {}

impl PartialEq for LValue {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.indices == other.indices
    }
}
impl Eq for LValue {}

impl PartialEq for SecDim {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SecDim::Index(a), SecDim::Index(b)) => a == b,
            (SecDim::Range(a1, a2), SecDim::Range(b1, b2)) => a1 == b1 && a2 == b2,
            _ => false,
        }
    }
}
impl Eq for SecDim {}

impl PartialEq for Section {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.dims == other.dims
    }
}
impl Eq for Section {}

impl PartialEq for Arg {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Arg::Expr(a), Arg::Expr(b)) => a == b,
            (Arg::Section(a), Arg::Section(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Arg {}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        use Stmt::*;
        match (self, other) {
            (
                Assign {
                    target: t1,
                    value: v1,
                    ..
                },
                Assign {
                    target: t2,
                    value: v2,
                    ..
                },
            ) => t1 == t2 && v1 == v2,
            (
                Do {
                    var: v1,
                    lower: l1,
                    upper: u1,
                    step: s1,
                    body: b1,
                    ..
                },
                Do {
                    var: v2,
                    lower: l2,
                    upper: u2,
                    step: s2,
                    body: b2,
                    ..
                },
            ) => v1 == v2 && l1 == l2 && u1 == u2 && s1 == s2 && b1 == b2,
            (
                If {
                    cond: c1,
                    then_body: t1,
                    else_body: e1,
                    ..
                },
                If {
                    cond: c2,
                    then_body: t2,
                    else_body: e2,
                    ..
                },
            ) => c1 == c2 && t1 == t2 && e1 == e2,
            (
                Call {
                    name: n1, args: a1, ..
                },
                Call {
                    name: n2, args: a2, ..
                },
            ) => n1 == n2 && a1 == a2,
            _ => false,
        }
    }
}
impl Eq for Stmt {}

impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl Eq for Param {}

impl PartialEq for Procedure {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.decls == other.decls
            && self.body == other.body
            && self.is_main == other.is_main
    }
}
impl Eq for Procedure {}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.procedures == other.procedures && self.main == other.main
    }
}
impl Eq for Program {}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Expr {
        Expr::Var(n.into(), Span::DUMMY)
    }

    #[test]
    fn equality_ignores_spans() {
        let a = Expr::Var("x".into(), Span::new(0, 1));
        let b = Expr::Var("x".into(), Span::new(10, 11));
        assert_eq!(a, b);
    }

    #[test]
    fn real_literal_equality_is_bitwise() {
        let nan1 = Expr::RealLit(f64::NAN, Span::DUMMY);
        let nan2 = Expr::RealLit(f64::NAN, Span::DUMMY);
        assert_eq!(nan1, nan2);
        let pos = Expr::RealLit(0.0, Span::DUMMY);
        let neg = Expr::RealLit(-0.0, Span::DUMMY);
        assert_ne!(pos, neg);
    }

    #[test]
    fn contains_array_ref_descends() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(var("x")),
            rhs: Box::new(Expr::ArrayRef {
                name: "a".into(),
                indices: vec![var("i")],
                span: Span::DUMMY,
            }),
            span: Span::DUMMY,
        };
        assert!(e.contains_array_ref());
        assert!(!var("x").contains_array_ref());
    }

    #[test]
    fn free_vars_dedup_and_descend_into_indices() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::ArrayRef {
                name: "a".into(),
                indices: vec![var("i")],
                span: Span::DUMMY,
            }),
            rhs: Box::new(var("i")),
            span: Span::DUMMY,
        };
        let mut vs = Vec::new();
        e.free_vars(&mut vs);
        assert_eq!(vs, vec!["i".to_string()]);
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Pow.precedence() > BinOp::Mul.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
    }

    #[test]
    fn arg_passed_name() {
        let a = Arg::Expr(var("at"));
        assert_eq!(a.passed_name(), Some("at"));
        let b = Arg::Expr(Expr::IntLit(3, Span::DUMMY));
        assert_eq!(b.passed_name(), None);
        let s = Arg::Section(Section {
            name: "as".into(),
            dims: vec![SecDim::Range(None, None)],
            span: Span::DUMMY,
        });
        assert_eq!(s.passed_name(), Some("as"));
    }
}
