//! Ergonomic AST constructors for code generation.
//!
//! The Compuniformer's codegen (tile loops, the Figure 4 communication loop,
//! epilogues) builds a lot of trees; these helpers keep that code close to
//! the shape of the Fortran it emits. All constructed nodes carry
//! [`Span::DUMMY`]. Arithmetic helpers constant-fold literal integers so the
//! emitted code stays readable (`off(3) + 1` prints as `4`, not `3 + 1`).

use crate::ast::*;
use crate::span::Span;

pub fn int(v: i64) -> Expr {
    Expr::IntLit(v, Span::DUMMY)
}

pub fn real(v: f64) -> Expr {
    Expr::RealLit(v, Span::DUMMY)
}

pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string(), Span::DUMMY)
}

pub fn aref(name: &str, indices: Vec<Expr>) -> Expr {
    Expr::ArrayRef {
        name: name.to_string(),
        indices,
        span: Span::DUMMY,
    }
}

pub fn call_fn(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call {
        name: name.to_string(),
        args,
        span: Span::DUMMY,
    }
}

pub fn neg(e: Expr) -> Expr {
    if let Some(v) = e.as_int() {
        return int(-v);
    }
    Expr::Unary {
        op: UnOp::Neg,
        operand: Box::new(e),
        span: Span::DUMMY,
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        span: Span::DUMMY,
    }
}

/// `a + b` with integer-literal folding and `x + 0 == x` simplification.
pub fn add(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => int(x + y),
        (Some(0), None) => b,
        (None, Some(0)) => a,
        _ => bin(BinOp::Add, a, b),
    }
}

/// `a - b` with folding and `x - 0 == x`.
pub fn sub(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => int(x - y),
        (None, Some(0)) => a,
        _ => bin(BinOp::Sub, a, b),
    }
}

/// `a * b` with folding, `1 * x == x`, and `0 * x == 0`.
pub fn mul(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => int(x * y),
        (Some(1), None) => b,
        (None, Some(1)) => a,
        (Some(0), None) | (None, Some(0)) => int(0),
        _ => bin(BinOp::Mul, a, b),
    }
}

/// Integer `a / b` (truncating), folding only when exact or both literal.
pub fn div(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) if y != 0 => int(x / y),
        (None, Some(1)) => a,
        _ => bin(BinOp::Div, a, b),
    }
}

pub fn modulo(a: Expr, b: Expr) -> Expr {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) if y != 0 => int(x.rem_euclid(y)),
        _ => call_fn("mod", vec![a, b]),
    }
}

pub fn eq(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Eq, a, b)
}

pub fn ne(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Ne, a, b)
}

pub fn lt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Lt, a, b)
}

pub fn le(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Le, a, b)
}

pub fn gt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Gt, a, b)
}

pub fn ge(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Ge, a, b)
}

pub fn and(a: Expr, b: Expr) -> Expr {
    bin(BinOp::And, a, b)
}

pub fn or(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Or, a, b)
}

// -- statements --------------------------------------------------------------

/// `name = value` (scalar assignment).
pub fn sassign(name: &str, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue {
            name: name.to_string(),
            indices: Vec::new(),
            span: Span::DUMMY,
        },
        value,
        span: Span::DUMMY,
    }
}

/// `name(indices…) = value` (array element assignment).
pub fn assign(name: &str, indices: Vec<Expr>, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue {
            name: name.to_string(),
            indices,
            span: Span::DUMMY,
        },
        value,
        span: Span::DUMMY,
    }
}

/// `do var = lower, upper … end do`.
pub fn do_loop(var: &str, lower: Expr, upper: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::Do {
        var: var.to_string(),
        lower,
        upper,
        step: None,
        body,
        span: Span::DUMMY,
    }
}

/// `do var = lower, upper, step … end do`.
pub fn do_loop_step(
    var: &str,
    lower: Expr,
    upper: Expr,
    step: Expr,
    body: Vec<Stmt>,
) -> Stmt {
    Stmt::Do {
        var: var.to_string(),
        lower,
        upper,
        step: Some(step),
        body,
        span: Span::DUMMY,
    }
}

/// `if (cond) then … end if`.
pub fn if_then(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body: Vec::new(),
        span: Span::DUMMY,
    }
}

/// `if (cond) then … else … end if`.
pub fn if_then_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body,
        span: Span::DUMMY,
    }
}

/// `call name(args…)`.
pub fn call(name: &str, args: Vec<Arg>) -> Stmt {
    Stmt::Call {
        name: name.to_string(),
        args,
        span: Span::DUMMY,
    }
}

/// Plain expression argument.
pub fn arg(e: Expr) -> Arg {
    Arg::Expr(e)
}

/// Array section argument `name(dims…)`.
pub fn section(name: &str, dims: Vec<SecDim>) -> Arg {
    Arg::Section(Section {
        name: name.to_string(),
        dims,
        span: Span::DUMMY,
    })
}

/// Section dimension `lo:hi`.
pub fn range(lo: Expr, hi: Expr) -> SecDim {
    SecDim::Range(Some(lo), Some(hi))
}

/// Section dimension `:` (full extent).
pub fn full_range() -> SecDim {
    SecDim::Range(None, None)
}

/// Section dimension that is a single index.
pub fn at(e: Expr) -> SecDim {
    SecDim::Index(e)
}

// -- declarations -------------------------------------------------------------

/// `integer :: name`.
pub fn decl_int(name: &str) -> Decl {
    Decl {
        name: name.to_string(),
        ty: ScalarType::Integer,
        dims: Vec::new(),
        span: Span::DUMMY,
    }
}

/// `real :: name`.
pub fn decl_real(name: &str) -> Decl {
    Decl {
        name: name.to_string(),
        ty: ScalarType::Real,
        dims: Vec::new(),
        span: Span::DUMMY,
    }
}

/// Array declaration with `1:upper` bounds per dimension.
pub fn decl_array(name: &str, ty: ScalarType, uppers: Vec<Expr>) -> Decl {
    Decl {
        name: name.to_string(),
        ty,
        dims: uppers
            .into_iter()
            .map(|u| DimBound {
                lower: int(1),
                upper: u,
            })
            .collect(),
        span: Span::DUMMY,
    }
}

/// Array declaration with explicit `lower:upper` bounds.
pub fn decl_array_bounds(name: &str, ty: ScalarType, dims: Vec<(Expr, Expr)>) -> Decl {
    Decl {
        name: name.to_string(),
        ty,
        dims: dims
            .into_iter()
            .map(|(lower, upper)| DimBound { lower, upper })
            .collect(),
        span: Span::DUMMY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unparse::{unparse_expr, unparse_stmt};

    #[test]
    fn folding_add_mul() {
        assert_eq!(add(int(2), int(3)), int(5));
        assert_eq!(unparse_expr(&add(var("x"), int(0))), "x");
        assert_eq!(unparse_expr(&mul(int(1), var("x"))), "x");
        assert_eq!(mul(int(0), var("x")), int(0));
        assert_eq!(unparse_expr(&mul(var("a"), var("b"))), "a * b");
    }

    #[test]
    fn folding_mod() {
        assert_eq!(modulo(int(7), int(4)), int(3));
        assert_eq!(unparse_expr(&modulo(var("ix"), var("k"))), "mod(ix, k)");
    }

    #[test]
    fn neg_folds_literals() {
        assert_eq!(neg(int(5)), int(-5));
        assert_eq!(unparse_expr(&neg(var("x"))), "-x");
    }

    #[test]
    fn builds_fig4_style_loop() {
        // do j = 1, np - 1
        //   to = mod(mynum + j, np)
        //   call mpi_isend(as(to * sz + 1:(to + 1) * sz), sz, to, 7)
        // end do
        let body = vec![
            sassign("to", modulo(add(var("mynum"), var("j")), var("np"))),
            call(
                "mpi_isend",
                vec![
                    section(
                        "as",
                        vec![range(
                            add(mul(var("to"), var("sz")), int(1)),
                            mul(add(var("to"), int(1)), var("sz")),
                        )],
                    ),
                    arg(var("sz")),
                    arg(var("to")),
                    arg(int(7)),
                ],
            ),
        ];
        let s = do_loop("j", int(1), sub(var("np"), int(1)), body);
        let printed = unparse_stmt(&s);
        assert!(printed.contains("do j = 1, np - 1"));
        assert!(printed.contains("to = mod(mynum + j, np)"));
        assert!(printed.contains("call mpi_isend(as(to * sz + 1:(to + 1) * sz), sz, to, 7)"));
        // And it reparses.
        let reparsed = crate::parser::parse_stmts(&printed).unwrap();
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed[0], s);
    }

    #[test]
    fn decl_builders() {
        let d = decl_array("as", ScalarType::Real, vec![var("nx")]);
        assert_eq!(d.rank(), 1);
        assert!(d.dims[0].lower.is_int(1));
        let d2 = decl_array_bounds("b", ScalarType::Integer, vec![(int(0), var("n"))]);
        assert!(d2.dims[0].lower.is_int(0));
    }
}
