//! Diagnostics shared by the lexer, parser and validator.

use crate::span::{line_col, Span};
use std::fmt;

/// Which phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Validate,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Validate => write!(f, "validate"),
        }
    }
}

/// A single diagnostic with a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirError {
    pub phase: Phase,
    pub span: Span,
    pub message: String,
}

impl FirError {
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        FirError {
            phase,
            span,
            message: message.into(),
        }
    }

    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        Self::new(Phase::Lex, span, message)
    }

    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        Self::new(Phase::Parse, span, message)
    }

    pub fn validate(span: Span, message: impl Into<String>) -> Self {
        Self::new(Phase::Validate, span, message)
    }

    /// Render with 1-based line/column resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        let lc = line_col(source, self.span.start);
        format!(
            "{} error at {}:{}: {}",
            self.phase, lc.line, lc.col, self.message
        )
    }
}

impl fmt::Display for FirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at bytes {}..{}: {}",
            self.phase, self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for FirError {}

/// A non-empty batch of diagnostics (the validator reports all it finds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Errors(pub Vec<FirError>);

impl Errors {
    pub fn single(err: FirError) -> Self {
        Errors(vec![err])
    }

    pub fn render(&self, source: &str) -> String {
        self.0
            .iter()
            .map(|e| e.render(source))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Errors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Errors {}

impl From<FirError> for Errors {
    fn from(e: FirError) -> Self {
        Errors::single(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_col() {
        let src = "program p\nxx = 1\nend program";
        let err = FirError::parse(Span::new(10, 12), "unexpected identifier");
        assert_eq!(err.render(src), "parse error at 2:1: unexpected identifier");
    }

    #[test]
    fn errors_display_joins_lines() {
        let errs = Errors(vec![
            FirError::lex(Span::new(0, 1), "a"),
            FirError::lex(Span::new(1, 2), "b"),
        ]);
        let s = format!("{errs}");
        assert!(s.contains('\n'));
        assert!(s.contains("a") && s.contains("b"));
    }
}
