//! Intrinsic functions and built-in (MPI) subroutines of the mini language.
//!
//! The MPI surface is the simplified API described in DESIGN.md §2:
//! counts instead of datatypes/communicators, and implicit request handles
//! (`mpi_waitall_recv` / `mpi_waitall` wait on everything outstanding).
//! `mynum` (0-based rank) and `np` (number of ranks) are predefined integer
//! scalars in every procedure.

/// Intrinsic *functions* usable in expressions. `(name, arity)`;
/// `usize::MAX` marks variadic-with-at-least-two (min/max).
const INTRINSIC_FNS: &[(&str, usize)] = &[
    ("mod", 2),
    ("min", usize::MAX),
    ("max", usize::MAX),
    ("abs", 1),
    ("sqrt", 1),
    ("sin", 1),
    ("cos", 1),
    ("exp", 1),
    ("log", 1),
    ("floor", 1),
    ("int", 1),
    ("real", 1),
];

/// Is `name` (already lowercased by the lexer) an intrinsic function?
pub fn is_intrinsic_fn(name: &str) -> bool {
    INTRINSIC_FNS.iter().any(|(n, _)| *n == name)
}

/// Arity check for an intrinsic function; `None` if unknown name.
/// Returns `Ok(())` or the expected-arity message fragment.
pub fn check_intrinsic_arity(name: &str, got: usize) -> Option<Result<(), String>> {
    let (_, arity) = INTRINSIC_FNS.iter().find(|(n, _)| *n == name)?;
    Some(if *arity == usize::MAX {
        if got >= 2 {
            Ok(())
        } else {
            Err(format!("`{name}` needs at least 2 arguments, got {got}"))
        }
    } else if got == *arity {
        Ok(())
    } else {
        Err(format!("`{name}` needs {arity} argument(s), got {got}"))
    })
}

/// Built-in subroutines reachable via `call`, with their arities.
///
/// | name              | arguments                                    |
/// |-------------------|----------------------------------------------|
/// | `mpi_alltoall`    | send array, element count per partner, recv array |
/// | `mpi_isend`       | buffer (section), element count, dest rank, tag |
/// | `mpi_irecv`       | buffer (section), element count, src rank, tag |
/// | `mpi_waitall_recv`| — (wait for all posted receives)             |
/// | `mpi_waitall`     | — (wait for all outstanding sends+receives)  |
/// | `mpi_barrier`     | —                                            |
/// | `print`           | any args (debugging aid, captured per rank)  |
const BUILTIN_SUBS: &[(&str, usize)] = &[
    ("mpi_alltoall", 3),
    ("mpi_isend", 4),
    ("mpi_irecv", 4),
    ("mpi_waitall_recv", 0),
    ("mpi_waitall", 0),
    ("mpi_barrier", 0),
    ("print", usize::MAX),
];

/// Is `name` a built-in subroutine (MPI or debugging)?
pub fn is_builtin_sub(name: &str) -> bool {
    BUILTIN_SUBS.iter().any(|(n, _)| *n == name)
}

/// Arity check for a built-in subroutine; `None` if unknown.
pub fn check_builtin_sub_arity(name: &str, got: usize) -> Option<Result<(), String>> {
    let (_, arity) = BUILTIN_SUBS.iter().find(|(n, _)| *n == name)?;
    Some(if *arity == usize::MAX || got == *arity {
        Ok(())
    } else {
        Err(format!("`{name}` needs {arity} argument(s), got {got}"))
    })
}

/// Names of the MPI communication builtins (excludes `print`).
pub fn is_mpi_builtin(name: &str) -> bool {
    name.starts_with("mpi_") && is_builtin_sub(name)
}

/// Predefined integer scalars available in every scope.
/// `mynum` = 0-based rank id; `np` = number of ranks.
pub const PREDEFINED_SCALARS: &[&str] = &["mynum", "np"];

pub fn is_predefined_scalar(name: &str) -> bool {
    PREDEFINED_SCALARS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_lookup() {
        assert!(is_intrinsic_fn("mod"));
        assert!(is_intrinsic_fn("sqrt"));
        assert!(!is_intrinsic_fn("as"));
        assert!(!is_intrinsic_fn("mpi_isend"));
    }

    #[test]
    fn arity_fixed() {
        assert_eq!(check_intrinsic_arity("mod", 2), Some(Ok(())));
        assert!(matches!(check_intrinsic_arity("mod", 1), Some(Err(_))));
        assert_eq!(check_intrinsic_arity("nosuch", 1), None);
    }

    #[test]
    fn arity_variadic_minmax() {
        assert_eq!(check_intrinsic_arity("min", 2), Some(Ok(())));
        assert_eq!(check_intrinsic_arity("min", 5), Some(Ok(())));
        assert!(matches!(check_intrinsic_arity("min", 1), Some(Err(_))));
    }

    #[test]
    fn builtin_subs() {
        assert!(is_builtin_sub("mpi_alltoall"));
        assert!(is_builtin_sub("print"));
        assert!(!is_builtin_sub("p"));
        assert_eq!(check_builtin_sub_arity("mpi_isend", 4), Some(Ok(())));
        assert!(matches!(
            check_builtin_sub_arity("mpi_isend", 3),
            Some(Err(_))
        ));
    }

    #[test]
    fn mpi_classification() {
        assert!(is_mpi_builtin("mpi_barrier"));
        assert!(!is_mpi_builtin("print"));
        assert!(!is_mpi_builtin("mpi_made_up"));
    }

    #[test]
    fn predefined_scalars() {
        assert!(is_predefined_scalar("mynum"));
        assert!(is_predefined_scalar("np"));
        assert!(!is_predefined_scalar("nx"));
    }
}
