//! Hand-written lexer for the mini-Fortran subset.
//!
//! Design notes:
//! - `!` starts a comment running to end of line (Fortran 90 style).
//! - Newlines are significant (they terminate statements) and are collapsed
//!   into a single [`TokenKind::Newline`] token; `;` also separates
//!   statements and lexes to `Newline`.
//! - `&` at end of line is a continuation: the newline is swallowed.
//! - Identifiers and keywords are case-insensitive; identifiers are
//!   normalized to lowercase so the rest of the pipeline compares strings
//!   directly.

use crate::error::FirError;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

pub struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    pub fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input. Fail-fast on the first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FirError> {
        let mut out: Vec<Token> = Vec::with_capacity(self.src.len() / 4 + 8);
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            // Collapse consecutive newlines.
            if tok.kind == TokenKind::Newline
                && matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None)
            {
                if is_eof {
                    break;
                }
                continue;
            }
            out.push(tok);
            if is_eof {
                break;
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_blank_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'!') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'&') => {
                    // Line continuation: swallow `&`, optional blanks/comment,
                    // and the following newline.
                    let save = self.pos;
                    self.pos += 1;
                    while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r')) {
                        self.pos += 1;
                    }
                    if self.peek() == Some(b'!') {
                        while let Some(b) = self.peek() {
                            if b == b'\n' {
                                break;
                            }
                            self.pos += 1;
                        }
                    }
                    if self.peek() == Some(b'\n') {
                        self.pos += 1;
                    } else {
                        // A stray `&` not at end of line: restore and let
                        // next_token report it.
                        self.pos = save;
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, FirError> {
        self.skip_blank_and_comments();
        let start = self.pos as u32;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start),
            });
        };

        let single = |kind: TokenKind, this: &mut Self| {
            this.pos += 1;
            Ok(Token {
                kind,
                span: Span::new(start, this.pos as u32),
            })
        };

        match b {
            b'\n' | b';' => single(TokenKind::Newline, self),
            b'(' => single(TokenKind::LParen, self),
            b')' => single(TokenKind::RParen, self),
            b',' => single(TokenKind::Comma, self),
            b'+' => single(TokenKind::Plus, self),
            b'-' => single(TokenKind::Minus, self),
            b'*' => {
                if self.peek2() == Some(b'*') {
                    self.pos += 2;
                    Ok(Token {
                        kind: TokenKind::Pow,
                        span: Span::new(start, self.pos as u32),
                    })
                } else {
                    single(TokenKind::Star, self)
                }
            }
            b'/' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    Ok(Token {
                        kind: TokenKind::Ne,
                        span: Span::new(start, self.pos as u32),
                    })
                } else {
                    single(TokenKind::Slash, self)
                }
            }
            b':' => {
                if self.peek2() == Some(b':') {
                    self.pos += 2;
                    Ok(Token {
                        kind: TokenKind::DoubleColon,
                        span: Span::new(start, self.pos as u32),
                    })
                } else {
                    single(TokenKind::Colon, self)
                }
            }
            b'=' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    Ok(Token {
                        kind: TokenKind::Eq,
                        span: Span::new(start, self.pos as u32),
                    })
                } else {
                    single(TokenKind::Assign, self)
                }
            }
            b'<' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    Ok(Token {
                        kind: TokenKind::Le,
                        span: Span::new(start, self.pos as u32),
                    })
                } else {
                    single(TokenKind::Lt, self)
                }
            }
            b'>' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    Ok(Token {
                        kind: TokenKind::Ge,
                        span: Span::new(start, self.pos as u32),
                    })
                } else {
                    single(TokenKind::Gt, self)
                }
            }
            b'.' => self.lex_dot_operator(start),
            b'0'..=b'9' => self.lex_number(start),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
            _ => {
                // Decode the full character so a multibyte input (`é`)
                // names itself in the diagnostic, not its lead byte.
                let ch = self.src[start as usize..].chars().next().unwrap_or('\u{fffd}');
                Err(FirError::lex(
                    Span::new(start, start + ch.len_utf8() as u32),
                    format!("unexpected character `{ch}`"),
                ))
            }
        }
    }

    /// `.and.`, `.or.`, `.not.`, plus `.true.`/`.false.` lexed as int 1/0
    /// (the subset has no logical type; conditions are integers).
    fn lex_dot_operator(&mut self, start: u32) -> Result<Token, FirError> {
        self.pos += 1; // consume '.'
        let word_start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z') | Some(b'A'..=b'Z')) {
            self.pos += 1;
        }
        let word = &self.src[word_start..self.pos];
        if self.peek() != Some(b'.') {
            return Err(FirError::lex(
                Span::new(start, self.pos as u32),
                format!("malformed dotted operator `.{word}` (missing closing `.`)"),
            ));
        }
        self.pos += 1; // consume trailing '.'
        let span = Span::new(start, self.pos as u32);
        let kind = match word.to_ascii_lowercase().as_str() {
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "true" => TokenKind::IntLit(1),
            "false" => TokenKind::IntLit(0),
            other => {
                return Err(FirError::lex(
                    span,
                    format!("unknown dotted operator `.{other}.`"),
                ))
            }
        };
        Ok(Token { kind, span })
    }

    fn lex_number(&mut self, start: u32) -> Result<Token, FirError> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_real = false;
        // A '.' is part of the number only if followed by a digit, to keep
        // `1.and.` unambiguous (Fortran itself requires whitespace there; we
        // are slightly more permissive).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_real = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent: e / E / d / D (Fortran double literals use d).
        if matches!(self.peek(), Some(b'e' | b'E' | b'd' | b'D')) {
            let mut look = self.pos + 1;
            if matches!(self.bytes.get(look), Some(b'+' | b'-')) {
                look += 1;
            }
            if matches!(self.bytes.get(look), Some(b'0'..=b'9')) {
                is_real = true;
                self.pos = look + 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let span = Span::new(start, self.pos as u32);
        let text = span.snippet(self.src);
        if is_real {
            let normalized = text.replace(['d', 'D'], "e");
            let v: f64 = normalized.parse().map_err(|_| {
                FirError::lex(span, format!("invalid real literal `{text}`"))
            })?;
            Ok(Token {
                kind: TokenKind::RealLit(v),
                span,
            })
        } else {
            let v: i64 = text.parse().map_err(|_| {
                FirError::lex(
                    span,
                    format!("integer literal `{text}` does not fit in 64 bits"),
                )
            })?;
            Ok(Token {
                kind: TokenKind::IntLit(v),
                span,
            })
        }
    }

    fn lex_ident(&mut self, start: u32) -> Result<Token, FirError> {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            self.pos += 1;
        }
        let span = Span::new(start, self.pos as u32);
        let text = span.snippet(self.src);
        let kind = match Keyword::from_ident(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_ascii_lowercase()),
        };
        Ok(Token { kind, span })
    }
}

/// Convenience entry point.
pub fn tokenize(src: &str) -> Result<Vec<Token>, FirError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn multibyte_character_names_itself_in_the_diagnostic() {
        let err = tokenize("x = é").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('é'), "diagnostic mangles the char: {msg}");
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\n  ! comment\n"), vec![TokenKind::Eof]);
    }

    #[test]
    fn lexes_do_loop_header() {
        assert_eq!(
            kinds("do ix = 1, NX"),
            vec![
                TokenKind::Kw(Keyword::Do),
                TokenKind::Ident("ix".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Comma,
                TokenKind::Ident("nx".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn identifiers_normalized_to_lowercase() {
        assert_eq!(
            kinds("As Ar MyNum"),
            vec![
                TokenKind::Ident("as".into()),
                TokenKind::Ident("ar".into()),
                TokenKind::Ident("mynum".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            kinds("a ** b == c /= d <= e >= f"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Pow,
                TokenKind::Ident("b".into()),
                TokenKind::Eq,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Le,
                TokenKind::Ident("e".into()),
                TokenKind::Ge,
                TokenKind::Ident("f".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dotted_operators() {
        assert_eq!(
            kinds("a .and. b .or. .not. c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::And,
                TokenKind::Ident("b".into()),
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn true_false_literals() {
        assert_eq!(
            kinds(".true. .false."),
            vec![TokenKind::IntLit(1), TokenKind::IntLit(0), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_int_and_real() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5d-2"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::RealLit(3.5),
                TokenKind::RealLit(1000.0),
                TokenKind::RealLit(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn int_dot_operator_not_a_real() {
        // `1.and.` must lex as IntLit(1), And — not a malformed real.
        assert_eq!(
            kinds("if (1 .and. 0) then"),
            vec![
                TokenKind::Kw(Keyword::If),
                TokenKind::LParen,
                TokenKind::IntLit(1),
                TokenKind::And,
                TokenKind::IntLit(0),
                TokenKind::RParen,
                TokenKind::Kw(Keyword::Then),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            kinds("a = 1 ! set a\nb = 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Newline,
                TokenKind::Ident("b".into()),
                TokenKind::Assign,
                TokenKind::IntLit(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn newlines_collapse_and_semicolon_separates() {
        assert_eq!(
            kinds("a = 1\n\n\nb = 2; c = 3"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Newline,
                TokenKind::Ident("b".into()),
                TokenKind::Assign,
                TokenKind::IntLit(2),
                TokenKind::Newline,
                TokenKind::Ident("c".into()),
                TokenKind::Assign,
                TokenKind::IntLit(3),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn leading_newlines_dropped() {
        assert_eq!(
            kinds("\n\na = 1"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn continuation_joins_lines() {
        assert_eq!(
            kinds("a = 1 + &\n    2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Plus,
                TokenKind::IntLit(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn continuation_with_trailing_comment() {
        assert_eq!(
            kinds("a = 1 + & ! still going\n 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::IntLit(1),
                TokenKind::Plus,
                TokenKind::IntLit(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn double_colon() {
        assert_eq!(
            kinds("integer :: n"),
            vec![
                TokenKind::Kw(Keyword::Integer),
                TokenKind::DoubleColon,
                TokenKind::Ident("n".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn colon_in_section() {
        assert_eq!(
            kinds("as(1:10)"),
            vec![
                TokenKind::Ident("as".into()),
                TokenKind::LParen,
                TokenKind::IntLit(1),
                TokenKind::Colon,
                TokenKind::IntLit(10),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn error_on_unknown_char() {
        let err = tokenize("a = #").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn error_on_bad_dotted_op() {
        let err = tokenize("a .xyz. b").unwrap_err();
        assert!(err.message.contains("xyz"));
    }

    #[test]
    fn error_on_unterminated_dotted_op() {
        let err = tokenize("a .and b").unwrap_err();
        assert!(err.message.contains("missing closing"));
    }

    #[test]
    fn spans_point_at_source() {
        let src = "x = 10";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[2].span.snippet(src), "10");
    }
}
