//! # fir — the mini-Fortran frontend
//!
//! This crate is the reproduction's stand-in for the paper's **Nestor**
//! framework (Silber & Darte, HPCN'99): "a lightweight framework for
//! implementing transformations to Fortran 90 code, providing a parser, a
//! transformable IR, and unparser."
//!
//! It implements a Fortran-90 subset sufficient for the communication-
//! computation overlap transformation of Fishgold et al.:
//!
//! - `program` / `subroutine` units, `integer` / `real` declarations with
//!   multi-dimensional explicit-shape arrays (`a(0:n, m)`),
//! - `do` loops (with step), block `if`/`else`, assignments, `call`s,
//! - array *sections* as call arguments (`as(lo:hi, iy)`) — the form the
//!   generated `mpi_isend`/`mpi_irecv` calls take,
//! - the simplified MPI builtins described in DESIGN.md (`mpi_alltoall`,
//!   `mpi_isend`, `mpi_irecv`, `mpi_waitall_recv`, `mpi_waitall`,
//!   `mpi_barrier`) and the predefined scalars `mynum` / `np`.
//!
//! The public pipeline is [`parse`] → analyze/transform (see the `depan` and
//! `compuniformer` crates) → [`unparse`], with [`validate::validate`]
//! guarding both ends. A parse → unparse → parse roundtrip yields a
//! structurally identical tree (property-tested).

pub mod ast;
pub mod builder;
pub mod error;
pub mod intrinsics;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod symbol;
pub mod token;
pub mod unparse;
pub mod validate;
pub mod visit;

pub use ast::{
    Arg, BinOp, Decl, DimBound, Expr, LValue, Param, Procedure, Program, ScalarType,
    SecDim, Section, Stmt, UnOp,
};
pub use error::{Errors, FirError};
pub use parser::{parse, parse_expr, parse_stmts};
pub use span::Span;
pub use unparse::{unparse, unparse_expr, unparse_stmt, unparse_stmts};

/// Parse and validate in one step; the convenient entry point for tools.
pub fn parse_validated(src: &str) -> Result<Program, Errors> {
    let program = parse(src).map_err(Errors::single)?;
    validate::validate(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_validated_accepts_good_source() {
        let src = "program m\n  real :: a(4)\n  do i = 1, 4\n    a(i) = i\n  end do\nend program";
        assert!(parse_validated(src).is_ok());
    }

    #[test]
    fn parse_validated_reports_parse_errors() {
        assert!(parse_validated("program\nend").is_err());
    }

    #[test]
    fn parse_validated_reports_semantic_errors() {
        assert!(parse_validated("program m\n  np = 1\nend program").is_err());
    }
}
