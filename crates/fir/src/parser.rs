//! Recursive-descent parser for the mini-Fortran subset.
//!
//! Grammar sketch (statements are newline- or `;`-terminated):
//!
//! ```text
//! unit       := { subroutine } program { subroutine }
//! program    := "program" IDENT NL decls stmts "end" "program" [IDENT]
//! subroutine := "subroutine" IDENT "(" [IDENT {"," IDENT}] ")" NL decls stmts
//!               "end" "subroutine" [IDENT]
//! decl       := ("integer"|"real") "::" declarator {"," declarator}
//! declarator := IDENT [ "(" bounds {"," bounds} ")" ]
//! bounds     := expr [":" expr]          (single expr means 1:expr)
//! stmt       := do | if | call | assign
//! do         := "do" IDENT "=" expr "," expr ["," expr] NL stmts "end" "do"
//! if         := "if" "(" expr ")" "then" NL stmts ["else" NL stmts] "end" "if"
//! call       := "call" IDENT "(" [arg {"," arg}] ")"
//! arg        := section | expr           (section iff a `:` appears)
//! assign     := IDENT ["(" expr {"," expr} ")"] "=" expr
//! ```
//!
//! Expression precedence, loosest to tightest:
//! `.or.` < `.and.` < `.not.` < relational < `+ -` < `* /` < unary `-` < `**`.
//! `**` is right-associative; everything else is left-associative.

use crate::ast::*;
use crate::error::FirError;
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a complete compilation unit.
pub fn parse(src: &str) -> Result<Program, FirError> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).parse_program_unit()
}

/// Parse a single expression (used by tests and the transformation's
/// pattern-matching helpers).
pub fn parse_expr(src: &str) -> Result<Expr, FirError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let e = p.parse_expr()?;
    p.expect_eof_or_newline()?;
    Ok(e)
}

/// Parse a statement list (no surrounding program), for tests and builders.
pub fn parse_stmts(src: &str) -> Result<Vec<Stmt>, FirError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let stmts = p.parse_stmt_list(&[])?;
    p.expect_eof_or_newline()?;
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
    depth: usize,
}

/// Expressions or statements nested deeper than this are a parse error,
/// not a stack overflow. Generated programs nest a handful of levels.
/// The bound is deliberately small: one nesting level costs the whole
/// precedence-climbing chain (~10 frames), and every later pass
/// (validation, unparsing, lowering, the analyses) recurses over the
/// same AST — capping the parse caps them all.
const MAX_DEPTH: usize = 64;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            idx: 0,
            depth: 0,
        }
    }

    fn enter(&mut self, what: &str) -> Result<(), FirError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(FirError::parse(
                self.peek().span,
                format!("{what} nested deeper than {MAX_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    // -- token utilities ----------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.idx + n).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Kw(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, ctx: &str) -> Result<Token, FirError> {
        if self.at(kind) {
            Ok(self.advance())
        } else {
            let t = self.peek();
            Err(FirError::parse(
                t.span,
                format!("expected {} {ctx}, found {}", kind.describe(), t.kind),
            ))
        }
    }

    fn expect_kw(&mut self, kw: Keyword, ctx: &str) -> Result<Token, FirError> {
        self.expect(&TokenKind::Kw(kw), ctx)
    }

    fn expect_ident(&mut self, ctx: &str) -> Result<(String, Span), FirError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.advance();
                Ok((name, t.span))
            }
            other => Err(FirError::parse(
                self.peek().span,
                format!("expected identifier {ctx}, found {other}"),
            )),
        }
    }

    /// Consume a statement terminator: newline, or end-of-file.
    fn expect_stmt_end(&mut self) -> Result<(), FirError> {
        if self.eat(&TokenKind::Newline) || self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            let t = self.peek();
            Err(FirError::parse(
                t.span,
                format!("expected end of statement, found {}", t.kind),
            ))
        }
    }

    fn expect_eof_or_newline(&mut self) -> Result<(), FirError> {
        self.eat(&TokenKind::Newline);
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            let t = self.peek();
            Err(FirError::parse(
                t.span,
                format!("expected end of input, found {}", t.kind),
            ))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&TokenKind::Newline) {}
    }

    // -- compilation unit ---------------------------------------------------

    fn parse_program_unit(&mut self) -> Result<Program, FirError> {
        let mut procedures = Vec::new();
        let mut main: Option<Procedure> = None;
        self.skip_newlines();
        while !self.at(&TokenKind::Eof) {
            if self.at_kw(Keyword::Subroutine) {
                procedures.push(self.parse_procedure(false)?);
            } else if self.at_kw(Keyword::Program) {
                let p = self.parse_procedure(true)?;
                if let Some(prev) = &main {
                    return Err(FirError::parse(
                        p.span,
                        format!(
                            "duplicate `program` unit `{}` (already saw `{}`)",
                            p.name, prev.name
                        ),
                    ));
                }
                main = Some(p);
            } else {
                let t = self.peek();
                return Err(FirError::parse(
                    t.span,
                    format!("expected `program` or `subroutine`, found {}", t.kind),
                ));
            }
            self.skip_newlines();
        }
        let main = main.ok_or_else(|| {
            FirError::parse(Span::DUMMY, "no `program` unit found".to_string())
        })?;
        Ok(Program { procedures, main })
    }

    fn parse_procedure(&mut self, is_main: bool) -> Result<Procedure, FirError> {
        let kw = if is_main {
            Keyword::Program
        } else {
            Keyword::Subroutine
        };
        let start = self.expect_kw(kw, "starting a procedure")?.span;
        let (name, _) = self.expect_ident("naming the procedure")?;

        let mut params = Vec::new();
        if !is_main && self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                loop {
                    let (pname, pspan) = self.expect_ident("in parameter list")?;
                    params.push(Param {
                        name: pname,
                        span: pspan,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "closing the parameter list")?;
        }
        self.expect_stmt_end()?;

        let mut decls = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_kw(Keyword::Integer) || self.at_kw(Keyword::Real) {
                self.parse_decl_line(&mut decls)?;
                self.expect_stmt_end()?;
            } else {
                break;
            }
        }

        let body = self.parse_stmt_list(&[kw])?;

        let end_tok = self.expect_kw(Keyword::End, "closing the procedure")?;
        self.expect_kw(kw, "after `end`")?;
        // Optional repeated name: `end program main`.
        if let TokenKind::Ident(n) = self.peek_kind().clone() {
            let t = self.advance();
            if n != name {
                return Err(FirError::parse(
                    t.span,
                    format!("mismatched end name: expected `{name}`, found `{n}`"),
                ));
            }
        }
        let span = start.merge(end_tok.span);
        Ok(Procedure {
            name,
            params,
            decls,
            body,
            is_main,
            span,
        })
    }

    fn parse_decl_line(&mut self, out: &mut Vec<Decl>) -> Result<(), FirError> {
        let ty_tok = self.advance();
        let ty = match ty_tok.kind {
            TokenKind::Kw(Keyword::Integer) => ScalarType::Integer,
            TokenKind::Kw(Keyword::Real) => ScalarType::Real,
            _ => unreachable!("caller checked for a type keyword"),
        };
        self.expect(&TokenKind::DoubleColon, "after the type in a declaration")?;
        loop {
            let (name, nspan) = self.expect_ident("in a declaration")?;
            let mut dims = Vec::new();
            let mut end_span = nspan;
            if self.eat(&TokenKind::LParen) {
                loop {
                    let first = self.parse_expr()?;
                    if self.eat(&TokenKind::Colon) {
                        let upper = self.parse_expr()?;
                        dims.push(DimBound {
                            lower: first,
                            upper,
                        });
                    } else {
                        // `a(n)` means `a(1:n)`.
                        dims.push(DimBound {
                            lower: Expr::IntLit(1, Span::DUMMY),
                            upper: first,
                        });
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                end_span = self
                    .expect(&TokenKind::RParen, "closing the dimension list")?
                    .span;
            }
            out.push(Decl {
                name,
                ty,
                dims,
                span: ty_tok.span.merge(end_span),
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(())
    }

    // -- statements ----------------------------------------------------------

    /// Parse statements until an `end` (or `else`) that closes one of the
    /// given constructs. The terminating token is *not* consumed.
    fn parse_stmt_list(&mut self, _closers: &[Keyword]) -> Result<Vec<Stmt>, FirError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if self.at(&TokenKind::Eof)
                || self.at_kw(Keyword::End)
                || self.at_kw(Keyword::Else)
            {
                break;
            }
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, FirError> {
        self.enter("statements")?;
        let r = self.parse_stmt_dispatch();
        self.depth -= 1;
        r
    }

    fn parse_stmt_dispatch(&mut self) -> Result<Stmt, FirError> {
        match self.peek_kind() {
            TokenKind::Kw(Keyword::Do) => self.parse_do(),
            TokenKind::Kw(Keyword::If) => self.parse_if(),
            TokenKind::Kw(Keyword::Call) => self.parse_call(),
            TokenKind::Ident(_) => self.parse_assign(),
            other => Err(FirError::parse(
                self.peek().span,
                format!("expected a statement, found {other}"),
            )),
        }
    }

    fn parse_do(&mut self) -> Result<Stmt, FirError> {
        let start = self.expect_kw(Keyword::Do, "starting a do loop")?.span;
        let (var, _) = self.expect_ident("as the loop variable")?;
        self.expect(&TokenKind::Assign, "after the loop variable")?;
        let lower = self.parse_expr()?;
        self.expect(&TokenKind::Comma, "between loop bounds")?;
        let upper = self.parse_expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_stmt_end()?;
        let body = self.parse_stmt_list(&[Keyword::Do])?;
        self.expect_kw(Keyword::End, "closing the do loop")?;
        let end = self.expect_kw(Keyword::Do, "after `end`")?.span;
        Ok(Stmt::Do {
            var,
            lower,
            upper,
            step,
            body,
            span: start.merge(end),
        })
    }

    fn parse_if(&mut self) -> Result<Stmt, FirError> {
        let start = self.expect_kw(Keyword::If, "starting an if")?.span;
        self.expect(&TokenKind::LParen, "after `if`")?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen, "closing the if condition")?;
        self.expect_kw(Keyword::Then, "after the if condition")?;
        self.expect_stmt_end()?;
        let then_body = self.parse_stmt_list(&[Keyword::If])?;
        let else_body = if self.eat_kw(Keyword::Else) {
            self.expect_stmt_end()?;
            self.parse_stmt_list(&[Keyword::If])?
        } else {
            Vec::new()
        };
        self.expect_kw(Keyword::End, "closing the if")?;
        let end = self.expect_kw(Keyword::If, "after `end`")?.span;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span: start.merge(end),
        })
    }

    fn parse_call(&mut self) -> Result<Stmt, FirError> {
        let start = self.expect_kw(Keyword::Call, "starting a call")?.span;
        let (name, name_span) = self.expect_ident("naming the subroutine")?;
        let mut args = Vec::new();
        let mut end = name_span;
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_arg()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            end = self.expect(&TokenKind::RParen, "closing the argument list")?.span;
        }
        Ok(Stmt::Call {
            name,
            args,
            span: start.merge(end),
        })
    }

    /// A call argument: an array section if a top-level `:` appears inside
    /// `name(...)`, otherwise a plain expression. Decided by backtracking.
    fn parse_arg(&mut self) -> Result<Arg, FirError> {
        if matches!(self.peek_kind(), TokenKind::Ident(_))
            && *self.peek_at(1) == TokenKind::LParen
        {
            let save = self.idx;
            match self.try_parse_section() {
                Ok(Some(sec)) => return Ok(Arg::Section(sec)),
                Ok(None) | Err(_) => self.idx = save,
            }
        }
        Ok(Arg::Expr(self.parse_expr()?))
    }

    /// Attempt `IDENT ( secdim {, secdim} )` where at least one secdim is a
    /// range, and the argument ends right after `)`. Returns Ok(None) when
    /// the parse succeeds but contains no range (then it is a plain
    /// expression and the caller re-parses it as such).
    fn try_parse_section(&mut self) -> Result<Option<Section>, FirError> {
        let (name, start) = self.expect_ident("in a section")?;
        self.expect(&TokenKind::LParen, "in a section")?;
        let mut dims = Vec::new();
        let mut saw_range = false;
        loop {
            // Possible forms per dim: `:`, `:e`, `e:`, `e1:e2`, `e`.
            if self.eat(&TokenKind::Colon) {
                saw_range = true;
                if self.at(&TokenKind::Comma) || self.at(&TokenKind::RParen) {
                    dims.push(SecDim::Range(None, None));
                } else {
                    let hi = self.parse_expr()?;
                    dims.push(SecDim::Range(None, Some(hi)));
                }
            } else {
                let lo = self.parse_expr()?;
                if self.eat(&TokenKind::Colon) {
                    saw_range = true;
                    if self.at(&TokenKind::Comma) || self.at(&TokenKind::RParen) {
                        dims.push(SecDim::Range(Some(lo), None));
                    } else {
                        let hi = self.parse_expr()?;
                        dims.push(SecDim::Range(Some(lo), Some(hi)));
                    }
                } else {
                    dims.push(SecDim::Index(lo));
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(&TokenKind::RParen, "closing a section")?.span;
        // The section must be a complete argument: next must be `,` or `)`.
        if !(self.at(&TokenKind::Comma) || self.at(&TokenKind::RParen)) {
            return Ok(None);
        }
        if !saw_range {
            return Ok(None);
        }
        Ok(Some(Section {
            name,
            dims,
            span: start.merge(end),
        }))
    }

    fn parse_assign(&mut self) -> Result<Stmt, FirError> {
        let (name, start) = self.expect_ident("starting an assignment")?;
        let mut indices = Vec::new();
        let mut lv_end = start;
        if self.eat(&TokenKind::LParen) {
            loop {
                indices.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            lv_end = self
                .expect(&TokenKind::RParen, "closing the subscript list")?
                .span;
        }
        self.expect(&TokenKind::Assign, "in an assignment")?;
        let value = self.parse_expr()?;
        let span = start.merge(value.span());
        Ok(Stmt::Assign {
            target: LValue {
                name,
                indices,
                span: start.merge(lv_end),
            },
            value,
            span,
        })
    }

    // -- expressions ----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, FirError> {
        self.enter("expressions")?;
        let r = self.parse_or();
        self.depth -= 1;
        r
    }

    fn parse_or(&mut self) -> Result<Expr, FirError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_and()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, FirError> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, FirError> {
        if self.at(&TokenKind::Not) {
            let start = self.advance().span;
            let operand = self.parse_not()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.parse_rel()
    }

    fn parse_rel(&mut self) -> Result<Expr, FirError> {
        let lhs = self.parse_add()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_add()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            });
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, FirError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_mul()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, FirError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, FirError> {
        if self.at(&TokenKind::Minus) {
            let start = self.advance().span;
            let operand = self.parse_unary()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        self.parse_pow()
    }

    fn parse_pow(&mut self) -> Result<Expr, FirError> {
        let base = self.parse_primary()?;
        if self.eat(&TokenKind::Pow) {
            // Right-associative; exponent may carry a unary minus.
            let exp = self.parse_unary()?;
            let span = base.span().merge(exp.span());
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
                span,
            });
        }
        Ok(base)
    }

    fn parse_primary(&mut self) -> Result<Expr, FirError> {
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                let t = self.advance();
                Ok(Expr::IntLit(v, t.span))
            }
            TokenKind::RealLit(v) => {
                let t = self.advance();
                Ok(Expr::RealLit(v, t.span))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "closing a parenthesized expression")?;
                Ok(e)
            }
            // `real(x)` is the conversion intrinsic even though `real` is
            // also the type keyword; disambiguate by the following `(`.
            TokenKind::Kw(Keyword::Real) if *self.peek_at(1) == TokenKind::LParen => {
                let t = self.advance();
                self.expect(&TokenKind::LParen, "after `real`")?;
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self
                    .expect(&TokenKind::RParen, "closing `real(...)`")?
                    .span;
                Ok(Expr::Call {
                    name: "real".to_string(),
                    args,
                    span: t.span.merge(end),
                })
            }
            TokenKind::Ident(name) => {
                let t = self.advance();
                if self.eat(&TokenKind::LParen) {
                    let mut indices = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            indices.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self
                        .expect(&TokenKind::RParen, "closing a subscript/argument list")?
                        .span;
                    let span = t.span.merge(end);
                    if crate::intrinsics::is_intrinsic_fn(&name) {
                        Ok(Expr::Call {
                            name,
                            args: indices,
                            span,
                        })
                    } else {
                        Ok(Expr::ArrayRef {
                            name,
                            indices,
                            span,
                        })
                    }
                } else {
                    Ok(Expr::Var(name, t.span))
                }
            }
            other => Err(FirError::parse(
                self.peek().span,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn hostile_paren_nesting_is_an_error_not_an_overflow() {
        // A megabyte of `(` must come back as a parse diagnostic.
        let src = format!("{}1{}", "(".repeat(500_000), ")".repeat(500_000));
        let err = parse_expr(&src).unwrap_err();
        assert!(
            err.to_string().contains("nested deeper"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn hostile_if_nesting_is_an_error_not_an_overflow() {
        let n = 100_000;
        let src = format!(
            "program m
{}x = 1.0
{}end program",
            "if (x > 0.0) then
".repeat(n),
            "end if
".repeat(n)
        );
        let err = parse(&src).unwrap_err();
        assert!(
            err.to_string().contains("nested deeper"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn deep_but_reasonable_nesting_still_parses() {
        let src = format!("{}1{}", "(".repeat(40), ")".repeat(40));
        parse_expr(&src).unwrap();
    }

    #[test]
    fn precedence_mul_over_add() {
        // a + b*c parses as a + (b*c)
        let e = expr("a + b * c");
        match e {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected Add at root, got {other:?}"),
        }
    }

    #[test]
    fn pow_right_assoc() {
        // a ** b ** c parses as a ** (b ** c)
        let e = expr("a ** b ** c");
        match e {
            Expr::Binary { op: BinOp::Pow, lhs, rhs, .. } => {
                assert!(matches!(*lhs, Expr::Var(..)));
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("expected Pow at root, got {other:?}"),
        }
    }

    #[test]
    fn sub_left_assoc() {
        // a - b - c parses as (a - b) - c
        let e = expr("a - b - c");
        match e {
            Expr::Binary { op: BinOp::Sub, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Sub, .. }));
            }
            other => panic!("expected Sub at root, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_above_mul() {
        // -a * b parses as (-a) * b under this grammar
        let e = expr("-a * b");
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn neg_of_pow() {
        // -a ** b parses as -(a ** b)? No: parse_unary consumes `-` then
        // parse_unary -> parse_pow sees a ** b. So Neg(Pow(a,b)).
        let e = expr("-a ** b");
        match e {
            Expr::Unary { op: UnOp::Neg, operand, .. } => {
                assert!(matches!(*operand, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("expected Neg at root, got {other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        // a == b .and. c == d .or. e == f
        // parses as ((a==b) .and. (c==d)) .or. (e==f)
        let e = expr("a == b .and. c == d .or. e == f");
        match e {
            Expr::Binary { op: BinOp::Or, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected Or at root, got {other:?}"),
        }
    }

    #[test]
    fn not_binds_above_and() {
        let e = expr(".not. a .and. b");
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn intrinsic_call_vs_array_ref() {
        assert!(matches!(expr("mod(a, b)"), Expr::Call { .. }));
        assert!(matches!(expr("as(i)"), Expr::ArrayRef { .. }));
    }

    #[test]
    fn real_conversion_despite_keyword() {
        // `real` is a type keyword AND the conversion intrinsic.
        match expr("real(3) + 1.0") {
            Expr::Binary { lhs, .. } => {
                assert!(matches!(*lhs, Expr::Call { ref name, .. } if name == "real"));
            }
            other => panic!("expected binary, got {other:?}"),
        }
        // As a declaration keyword it still works (covered elsewhere), and
        // a bare `real` not followed by `(` is still a parse error here.
        assert!(parse_expr("real + 1").is_err());
    }

    #[test]
    fn multi_dim_array_ref() {
        match expr("as(tx, ty, iy)") {
            Expr::ArrayRef { name, indices, .. } => {
                assert_eq!(name, "as");
                assert_eq!(indices.len(), 3);
            }
            other => panic!("expected array ref, got {other:?}"),
        }
    }

    #[test]
    fn assignment_to_array_element() {
        let stmts = parse_stmts("as(ix) = 2 * ix + iy").unwrap();
        assert_eq!(stmts.len(), 1);
        match &stmts[0] {
            Stmt::Assign { target, .. } => {
                assert_eq!(target.name, "as");
                assert_eq!(target.indices.len(), 1);
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn do_loop_with_step() {
        let stmts = parse_stmts("do i = 1, n, 2\n  a(i) = 0\nend do").unwrap();
        match &stmts[0] {
            Stmt::Do { var, step, body, .. } => {
                assert_eq!(var, "i");
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn nested_do_loops() {
        let src = "do iy = 1, n\n  do ix = 1, n\n    a(ix) = ix\n  end do\nend do";
        let stmts = parse_stmts(src).unwrap();
        match &stmts[0] {
            Stmt::Do { body, .. } => {
                assert!(matches!(&body[0], Stmt::Do { .. }));
            }
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn if_then_else() {
        let src = "if (a > 0) then\n  b = 1\nelse\n  b = 2\nend if";
        let stmts = parse_stmts(src).unwrap();
        match &stmts[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn if_without_else() {
        let src = "if (mod(ix, k) == 0) then\n  c = c + 1\nend if";
        let stmts = parse_stmts(src).unwrap();
        match &stmts[0] {
            Stmt::If { else_body, .. } => assert!(else_body.is_empty()),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn call_with_plain_args() {
        let stmts = parse_stmts("call p(x, at)").unwrap();
        match &stmts[0] {
            Stmt::Call { name, args, .. } => {
                assert_eq!(name, "p");
                assert_eq!(args.len(), 2);
                assert!(matches!(&args[0], Arg::Expr(Expr::Var(..))));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn call_with_section_args() {
        let stmts = parse_stmts("call mpi_isend(as(lo:hi), k, to, 7)").unwrap();
        match &stmts[0] {
            Stmt::Call { args, .. } => {
                match &args[0] {
                    Arg::Section(s) => {
                        assert_eq!(s.name, "as");
                        assert!(matches!(
                            &s.dims[0],
                            SecDim::Range(Some(_), Some(_))
                        ));
                    }
                    other => panic!("expected section, got {other:?}"),
                }
                assert!(matches!(&args[1], Arg::Expr(_)));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn call_with_full_and_partial_ranges() {
        let stmts = parse_stmts("call p(a(:, 2:, :5, i))").unwrap();
        match &stmts[0] {
            Stmt::Call { args, .. } => match &args[0] {
                Arg::Section(s) => {
                    assert_eq!(s.dims.len(), 4);
                    assert!(matches!(s.dims[0], SecDim::Range(None, None)));
                    assert!(matches!(s.dims[1], SecDim::Range(Some(_), None)));
                    assert!(matches!(s.dims[2], SecDim::Range(None, Some(_))));
                    assert!(matches!(s.dims[3], SecDim::Index(_)));
                }
                other => panic!("expected section, got {other:?}"),
            },
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn call_arg_array_ref_in_expression_not_section() {
        // `a(i) + 1` must parse as an expression even though it starts like
        // a section.
        let stmts = parse_stmts("call p(a(i) + 1)").unwrap();
        match &stmts[0] {
            Stmt::Call { args, .. } => {
                assert!(matches!(&args[0], Arg::Expr(Expr::Binary { .. })));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn whole_program_parses() {
        let src = "\
program main
  integer :: nx
  real :: as(1:8), ar(8)
  do iy = 1, nx
    as(iy) = iy * 2
  end do
  call mpi_alltoall(as, 2, ar)
end program main
";
        let p = parse(src).unwrap();
        assert_eq!(p.main.name, "main");
        assert_eq!(p.main.decls.len(), 3);
        assert_eq!(p.main.body.len(), 2);
        // implicit lower bound is 1
        assert!(p.main.decls[2].dims[0].lower.is_int(1));
    }

    #[test]
    fn subroutine_then_program() {
        let src = "\
subroutine p(n, at)
  integer :: n
  real :: at(n)
  do i = 1, n
    at(i) = i
  end do
end subroutine p

program main
  integer :: n
  real :: at(4)
  n = 4
  call p(n, at)
end program
";
        let p = parse(src).unwrap();
        assert_eq!(p.procedures.len(), 1);
        assert_eq!(p.procedures[0].name, "p");
        assert_eq!(p.procedures[0].params.len(), 2);
    }

    #[test]
    fn duplicate_program_rejected() {
        let src = "program a\nend program\nprogram b\nend program";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn missing_program_rejected() {
        let src = "subroutine s()\nend subroutine";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("no `program`"));
    }

    #[test]
    fn mismatched_end_name_rejected() {
        let src = "program a\nend program b";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("mismatched end name"));
    }

    #[test]
    fn unclosed_do_reports_error() {
        let src = "program a\ndo i = 1, 3\n x = 1\nend program";
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_message_names_found_token() {
        let err = parse_stmts("do = 1, 2").unwrap_err();
        assert!(err.message.contains("expected identifier"));
    }

    #[test]
    fn parenthesized_expression_drops_parens_node() {
        // No Paren node in the AST: `(a + b) * c` is Mul(Add, c).
        let e = expr("(a + b) * c");
        match e {
            Expr::Binary { op: BinOp::Mul, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("expected Mul at root, got {other:?}"),
        }
    }
}
