//! Byte-offset source spans and line/column mapping.

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans are carried on every AST node so analyses and the semi-automatic
/// transformation driver can point the user at the exact code they are
/// talking about (the paper's user queries in §3.1 need this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn len(self) -> u32 {
        self.end - self.start
    }

    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Slice `source` at this span. Returns `""` for out-of-range spans
    /// rather than panicking, so diagnostics never crash.
    pub fn snippet(self, source: &str) -> &str {
        source
            .get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }
}

/// 1-based line/column position derived from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

/// Compute the 1-based line/column of byte `offset` within `source`.
pub fn line_col(source: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(source.len());
    let mut line = 1u32;
    let mut line_start = 0usize;
    for (i, b) in source.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    LineCol {
        line,
        col: (offset - line_start) as u32 + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn merge_with_dummy_keeps_other() {
        let a = Span::new(3, 7);
        assert_eq!(Span::DUMMY.merge(a), a);
        assert_eq!(a.merge(Span::DUMMY), a);
    }

    #[test]
    fn line_col_basics() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 1), LineCol { line: 1, col: 2 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let src = "x\ny";
        let lc = line_col(src, 100);
        assert_eq!(lc.line, 2);
    }

    #[test]
    fn snippet_out_of_range_is_empty() {
        assert_eq!(Span::new(5, 9).snippet("ab"), "");
    }

    #[test]
    fn snippet_in_range() {
        assert_eq!(Span::new(3, 5).snippet("do ix = 1"), "ix");
    }
}
