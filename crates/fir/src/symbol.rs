//! Per-procedure symbol resolution with Fortran implicit typing.
//!
//! Undeclared scalars follow the classic implicit rule: names starting with
//! `i`–`n` are `integer`, everything else `real`. The predefined scalars
//! `mynum` (rank id) and `np` (rank count) are always integers and read-only.

use crate::ast::{Decl, Procedure, ScalarType};
use crate::intrinsics::is_predefined_scalar;
use std::collections::HashMap;

/// What a name resolves to inside one procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol<'p> {
    /// A declared array.
    Array(&'p Decl),
    /// A declared scalar.
    Scalar(ScalarType, &'p Decl),
    /// `mynum` / `np`.
    Predefined,
    /// Undeclared scalar, typed by the implicit rule.
    Implicit(ScalarType),
}

impl Symbol<'_> {
    pub fn is_array(&self) -> bool {
        matches!(self, Symbol::Array(_))
    }

    /// Scalar type of this symbol; arrays return their element type.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Symbol::Array(d) => d.ty,
            Symbol::Scalar(t, _) => *t,
            Symbol::Predefined => ScalarType::Integer,
            Symbol::Implicit(t) => *t,
        }
    }
}

/// The Fortran implicit typing rule for undeclared scalars.
pub fn implicit_type(name: &str) -> ScalarType {
    match name.bytes().next() {
        Some(b'i'..=b'n') => ScalarType::Integer,
        _ => ScalarType::Real,
    }
}

/// Symbol table for a single procedure.
pub struct ProcSymbols<'p> {
    map: HashMap<&'p str, &'p Decl>,
}

impl<'p> ProcSymbols<'p> {
    pub fn new(proc: &'p Procedure) -> Self {
        let mut map = HashMap::with_capacity(proc.decls.len());
        for d in &proc.decls {
            // Later declarations shadow earlier ones; the validator reports
            // duplicates separately.
            map.insert(d.name.as_str(), d);
        }
        ProcSymbols { map }
    }

    pub fn decl(&self, name: &str) -> Option<&'p Decl> {
        self.map.get(name).copied()
    }

    /// Resolve `name` to a symbol. Never fails: undeclared names resolve via
    /// the implicit rule (the validator flags problematic uses).
    pub fn resolve(&self, name: &str) -> Symbol<'p> {
        if let Some(d) = self.map.get(name) {
            if d.is_array() {
                Symbol::Array(d)
            } else {
                Symbol::Scalar(d.ty, d)
            }
        } else if is_predefined_scalar(name) {
            Symbol::Predefined
        } else {
            Symbol::Implicit(implicit_type(name))
        }
    }

    /// Is `name` a declared array in this procedure?
    pub fn is_array(&self, name: &str) -> bool {
        self.resolve(name).is_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog() -> crate::ast::Program {
        parse(
            "program m\n  integer :: n\n  real :: as(8), scale\n  n = 1\nend program",
        )
        .unwrap()
    }

    #[test]
    fn implicit_rule() {
        assert_eq!(implicit_type("ix"), ScalarType::Integer);
        assert_eq!(implicit_type("n"), ScalarType::Integer);
        assert_eq!(implicit_type("alpha"), ScalarType::Real);
        assert_eq!(implicit_type("x"), ScalarType::Real);
    }

    #[test]
    fn resolve_declared() {
        let p = prog();
        let syms = ProcSymbols::new(&p.main);
        assert!(matches!(syms.resolve("as"), Symbol::Array(_)));
        assert!(matches!(
            syms.resolve("n"),
            Symbol::Scalar(ScalarType::Integer, _)
        ));
        assert!(matches!(
            syms.resolve("scale"),
            Symbol::Scalar(ScalarType::Real, _)
        ));
    }

    #[test]
    fn resolve_predefined_and_implicit() {
        let p = prog();
        let syms = ProcSymbols::new(&p.main);
        assert_eq!(syms.resolve("mynum"), Symbol::Predefined);
        assert_eq!(syms.resolve("np"), Symbol::Predefined);
        assert_eq!(
            syms.resolve("iy"),
            Symbol::Implicit(ScalarType::Integer)
        );
        assert_eq!(syms.resolve("tmp"), Symbol::Implicit(ScalarType::Real));
    }

    #[test]
    fn is_array_helper() {
        let p = prog();
        let syms = ProcSymbols::new(&p.main);
        assert!(syms.is_array("as"));
        assert!(!syms.is_array("n"));
        assert!(!syms.is_array("undeclared"));
    }
}
