//! Token kinds produced by the lexer.

use crate::span::Span;
use std::fmt;

/// Keywords of the mini-Fortran subset. Keywords are case-insensitive in the
/// source (`DO`, `do`, `Do` all lex to [`Keyword::Do`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Program,
    Subroutine,
    End,
    Do,
    If,
    Then,
    Else,
    Call,
    Integer,
    Real,
}

impl Keyword {
    pub fn from_ident(s: &str) -> Option<Keyword> {
        // Keywords are short; lowercase without allocating where possible.
        let mut buf = [0u8; 16];
        if s.len() > buf.len() {
            return None;
        }
        for (i, b) in s.bytes().enumerate() {
            buf[i] = b.to_ascii_lowercase();
        }
        match &buf[..s.len()] {
            b"program" => Some(Keyword::Program),
            b"subroutine" => Some(Keyword::Subroutine),
            b"end" => Some(Keyword::End),
            b"do" => Some(Keyword::Do),
            b"if" => Some(Keyword::If),
            b"then" => Some(Keyword::Then),
            b"else" => Some(Keyword::Else),
            b"call" => Some(Keyword::Call),
            b"integer" => Some(Keyword::Integer),
            b"real" => Some(Keyword::Real),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Program => "program",
            Keyword::Subroutine => "subroutine",
            Keyword::End => "end",
            Keyword::Do => "do",
            Keyword::If => "if",
            Keyword::Then => "then",
            Keyword::Else => "else",
            Keyword::Call => "call",
            Keyword::Integer => "integer",
            Keyword::Real => "real",
        }
    }
}

/// All token kinds. Identifier and literal payloads are owned so the token
/// stream outlives the source slice it came from.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    IntLit(i64),
    RealLit(f64),
    Kw(Keyword),

    // punctuation
    LParen,
    RParen,
    Comma,
    Colon,
    DoubleColon,

    // operators
    Assign,   // =
    Plus,     // +
    Minus,    // -
    Star,     // *
    Slash,    // /
    Pow,      // **
    Eq,       // ==
    Ne,       // /=
    Lt,       // <
    Le,       // <=
    Gt,       // >
    Ge,       // >=
    And,      // .and.
    Or,       // .or.
    Not,      // .not.

    /// Statement separator: one or more newlines (or `;`).
    Newline,
    Eof,
}

impl TokenKind {
    /// Human-readable description used in parser error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::RealLit(v) => format!("real literal `{v}`"),
            TokenKind::Kw(k) => format!("keyword `{}`", k.as_str()),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::DoubleColon => "`::`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Pow => "`**`".into(),
            TokenKind::Eq => "`==`".into(),
            TokenKind::Ne => "`/=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::And => "`.and.`".into(),
            TokenKind::Or => "`.or.`".into(),
            TokenKind::Not => "`.not.`".into(),
            TokenKind::Newline => "end of line".into(),
            TokenKind::Eof => "end of file".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_ident("DO"), Some(Keyword::Do));
        assert_eq!(Keyword::from_ident("Program"), Some(Keyword::Program));
        assert_eq!(Keyword::from_ident("enddo"), None);
        assert_eq!(Keyword::from_ident("ix"), None);
    }

    #[test]
    fn keyword_lookup_handles_long_idents() {
        assert_eq!(Keyword::from_ident("averyverylongidentifier"), None);
    }

    #[test]
    fn describe_mentions_payload() {
        assert!(TokenKind::Ident("abc".into()).describe().contains("abc"));
        assert!(TokenKind::IntLit(42).describe().contains("42"));
    }
}
