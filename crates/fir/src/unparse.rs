//! The unparser: turn AST back into mini-Fortran source.
//!
//! The output is designed to re-parse to a structurally identical tree
//! (`parse(unparse(p)) == p`), which is enforced by a property test in
//! `tests/roundtrip.rs`. Parentheses are emitted only where precedence or
//! associativity demands them.

use crate::ast::*;

/// Precedence ladder used for minimal-parenthesis printing. Larger binds
/// tighter. Mirrors the parser's grammar including the two unary operators,
/// which have no `BinOp` precedence of their own.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 10,
            BinOp::And => 20,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 30,
            BinOp::Add | BinOp::Sub => 40,
            BinOp::Mul | BinOp::Div => 50,
            BinOp::Pow => 70,
        },
        Expr::Unary { op: UnOp::Not, .. } => 25,
        Expr::Unary { op: UnOp::Neg, .. } => 55,
        Expr::IntLit(..) | Expr::RealLit(..) | Expr::Var(..) | Expr::ArrayRef { .. }
        | Expr::Call { .. } => 100,
    }
}

fn binop_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 10,
        BinOp::And => 20,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 30,
        BinOp::Add | BinOp::Sub => 40,
        BinOp::Mul | BinOp::Div => 50,
        BinOp::Pow => 70,
    }
}

/// Render an expression.
pub fn unparse_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e);
    s
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::IntLit(v, _) => {
            if *v < 0 {
                // Negative literals only arise from builders; print
                // parenthesized so `a ** -1` style output stays parseable.
                out.push_str(&format!("(-{})", v.unsigned_abs()));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Expr::RealLit(v, _) => write_real(out, *v),
        Expr::Var(n, _) => out.push_str(n),
        Expr::ArrayRef { name, indices, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, ix) in indices.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, ix);
            }
            out.push(')');
        }
        Expr::Call { name, args, .. } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        Expr::Unary { op, operand, .. } => {
            out.push_str(op.symbol());
            if *op == UnOp::Not {
                out.push(' ');
            }
            let need = match op {
                UnOp::Neg => prec(operand) < 55,
                UnOp::Not => prec(operand) < 30,
            };
            write_child(out, operand, need);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let p = binop_prec(*op);
            // Comparisons do not chain in the grammar, so equal-precedence
            // comparison children must be parenthesized on both sides.
            let lhs_need = if op.is_comparison() {
                prec(lhs) <= p && prec(lhs) != 100
            } else {
                prec(lhs) < p || (prec(lhs) == p && op.is_right_assoc())
            };
            let rhs_need = if op.is_comparison() {
                prec(rhs) <= p && prec(rhs) != 100
            } else {
                prec(rhs) < p || (prec(rhs) == p && !op.is_right_assoc())
            };
            write_child(out, lhs, lhs_need);
            if *op == BinOp::Pow {
                out.push_str("**");
            } else {
                out.push(' ');
                out.push_str(op.symbol());
                out.push(' ');
            }
            write_child(out, rhs, rhs_need);
        }
    }
}

fn write_child(out: &mut String, e: &Expr, parens: bool) {
    if parens {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    } else {
        write_expr(out, e);
    }
}

/// Print a real literal so it re-lexes as a real (always a `.` or exponent)
/// and round-trips exactly (shortest representation via `{:?}` of f64).
fn write_real(out: &mut String, v: f64) {
    if v.is_nan() {
        // No NaN literal in the language; print an expression that divides
        // zero by zero. Only builder-constructed trees can contain NaN.
        out.push_str("(0.0 / 0.0)");
        return;
    }
    if v.is_infinite() {
        out.push_str(if v > 0.0 { "(1.0e308 * 10.0)" } else { "(-1.0e308 * 10.0)" });
        return;
    }
    if v < 0.0 || (v == 0.0 && v.is_sign_negative()) {
        out.push_str("(-");
        write_real_pos(out, -v);
        out.push(')');
    } else {
        write_real_pos(out, v);
    }
}

fn write_real_pos(out: &mut String, v: f64) {
    let s = format!("{v:?}"); // shortest roundtrip repr, e.g. "3.5", "1e-7"
    if s.contains('.') || s.contains('e') || s.contains('E') {
        out.push_str(&s);
    } else {
        out.push_str(&s);
        out.push_str(".0");
    }
}

/// Render a whole program.
pub fn unparse(p: &Program) -> String {
    let mut pr = Printer::new();
    for proc in &p.procedures {
        pr.procedure(proc);
        pr.blank();
    }
    pr.procedure(&p.main);
    pr.out
}

/// Render a single statement at no indentation (tests, diagnostics, and the
/// harness's Figure 2/3 listings).
pub fn unparse_stmt(s: &Stmt) -> String {
    let mut pr = Printer::new();
    pr.stmt(s);
    pr.out
}

/// Render a statement list at no indentation.
pub fn unparse_stmts(stmts: &[Stmt]) -> String {
    let mut pr = Printer::new();
    for s in stmts {
        pr.stmt(s);
    }
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn procedure(&mut self, p: &Procedure) {
        if p.is_main {
            self.line(&format!("program {}", p.name));
        } else {
            let params = p
                .params
                .iter()
                .map(|q| q.name.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            self.line(&format!("subroutine {}({})", p.name, params));
        }
        self.indent += 1;
        for d in &p.decls {
            self.decl(d);
        }
        for s in &p.body {
            self.stmt(s);
        }
        self.indent -= 1;
        if p.is_main {
            self.line(&format!("end program {}", p.name));
        } else {
            self.line(&format!("end subroutine {}", p.name));
        }
    }

    fn decl(&mut self, d: &Decl) {
        let mut s = format!("{} :: {}", d.ty.keyword(), d.name);
        if !d.dims.is_empty() {
            s.push('(');
            for (i, b) in d.dims.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                if b.lower.is_int(1) {
                    s.push_str(&unparse_expr(&b.upper));
                } else {
                    s.push_str(&unparse_expr(&b.lower));
                    s.push(':');
                    s.push_str(&unparse_expr(&b.upper));
                }
            }
            s.push(')');
        }
        self.line(&s);
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { target, value, .. } => {
                let mut line = String::new();
                line.push_str(&target.name);
                if !target.indices.is_empty() {
                    line.push('(');
                    for (i, ix) in target.indices.iter().enumerate() {
                        if i > 0 {
                            line.push_str(", ");
                        }
                        line.push_str(&unparse_expr(ix));
                    }
                    line.push(')');
                }
                line.push_str(" = ");
                line.push_str(&unparse_expr(value));
                self.line(&line);
            }
            Stmt::Do {
                var,
                lower,
                upper,
                step,
                body,
                ..
            } => {
                let mut head = format!(
                    "do {} = {}, {}",
                    var,
                    unparse_expr(lower),
                    unparse_expr(upper)
                );
                if let Some(st) = step {
                    head.push_str(", ");
                    head.push_str(&unparse_expr(st));
                }
                self.line(&head);
                self.indent += 1;
                for st in body {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.line("end do");
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.line(&format!("if ({}) then", unparse_expr(cond)));
                self.indent += 1;
                for st in then_body {
                    self.stmt(st);
                }
                self.indent -= 1;
                if !else_body.is_empty() {
                    self.line("else");
                    self.indent += 1;
                    for st in else_body {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.line("end if");
            }
            Stmt::Call { name, args, .. } => {
                let mut line = format!("call {name}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    match a {
                        Arg::Expr(e) => line.push_str(&unparse_expr(e)),
                        Arg::Section(sec) => {
                            line.push_str(&sec.name);
                            line.push('(');
                            for (j, d) in sec.dims.iter().enumerate() {
                                if j > 0 {
                                    line.push_str(", ");
                                }
                                match d {
                                    SecDim::Index(e) => line.push_str(&unparse_expr(e)),
                                    SecDim::Range(lo, hi) => {
                                        if let Some(lo) = lo {
                                            line.push_str(&unparse_expr(lo));
                                        }
                                        line.push(':');
                                        if let Some(hi) = hi {
                                            line.push_str(&unparse_expr(hi));
                                        }
                                    }
                                }
                            }
                            line.push(')');
                        }
                    }
                }
                line.push(')');
                self.line(&line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr, parse_stmts};

    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = unparse_expr(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(e1, e2, "roundtrip mismatch: `{src}` -> `{printed}`");
    }

    #[test]
    fn minimal_parens_add_mul() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(unparse_expr(&e), "a + b * c");
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(unparse_expr(&e), "(a + b) * c");
    }

    #[test]
    fn sub_rhs_parenthesized() {
        let e = parse_expr("a - (b - c)").unwrap();
        assert_eq!(unparse_expr(&e), "a - (b - c)");
        let e = parse_expr("a - b - c").unwrap();
        assert_eq!(unparse_expr(&e), "a - b - c");
    }

    #[test]
    fn pow_assoc_printing() {
        let e = parse_expr("a ** b ** c").unwrap();
        assert_eq!(unparse_expr(&e), "a**b**c");
        let e = parse_expr("(a ** b) ** c").unwrap();
        assert_eq!(unparse_expr(&e), "(a**b)**c");
    }

    #[test]
    fn neg_of_product_parenthesized() {
        // AST Neg(Mul(a,b)) must not print as -a*b.
        let e = Expr::Unary {
            op: UnOp::Neg,
            operand: Box::new(parse_expr("a * b").unwrap()),
            span: crate::span::Span::DUMMY,
        };
        let printed = unparse_expr(&e);
        assert_eq!(printed, "-(a * b)");
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn chained_comparison_from_builder_roundtrips() {
        // Eq(Lt(a,b), c) is unparseable without parens; ensure we add them.
        let inner = parse_expr("a < b").unwrap();
        let e = Expr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(inner),
            rhs: Box::new(parse_expr("c").unwrap()),
            span: crate::span::Span::DUMMY,
        };
        let printed = unparse_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn real_literals_keep_dot() {
        let e = parse_expr("2.0").unwrap();
        assert_eq!(unparse_expr(&e), "2.0");
        let e = parse_expr("0.5").unwrap();
        assert_eq!(unparse_expr(&e), "0.5");
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "a",
            "42",
            "3.5",
            "a + b * c - d / e",
            "mod(ix, k) == 0",
            "a(ix) + a(ix + 1)",
            "-(a + b) * c",
            "a .and. b .or. .not. c",
            "min(a, b, c) + max(1, 2)",
            "2**10",
            "as(tx, ty, iy)",
            "(np + mynum - j) / np",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn stmt_roundtrip_if_and_do() {
        let src = "do iy = 1, nx\n  do ix = 1, nx, 2\n    if (mod(ix, k) == 0) then\n      as(ix) = ix * iy\n    else\n      as(ix) = 0\n    end if\n  end do\nend do\n";
        let s1 = parse_stmts(src).unwrap();
        let printed = unparse_stmts(&s1);
        let s2 = parse_stmts(&printed).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn call_with_sections_roundtrip() {
        let src = "call mpi_isend(as(lo:hi, iy), k, to, 7)\ncall p(a(:, 2:, :5, i))\n";
        let s1 = parse_stmts(src).unwrap();
        let printed = unparse_stmts(&s1);
        let s2 = parse_stmts(&printed).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn program_roundtrip() {
        let src = "\
subroutine p(n, at)
  integer :: n
  real :: at(n)
  do i = 1, n
    at(i) = i * 2
  end do
end subroutine p

program main
  integer :: n
  real :: at(8), ar(0:7)
  n = 8
  call p(n, at)
  call mpi_alltoall(at, 2, ar)
end program main
";
        let p1 = parse(src).unwrap();
        let printed = unparse(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n---\n{printed}", e));
        assert_eq!(p1, p2);
    }

    #[test]
    fn decl_lower_bound_elision() {
        let p1 = parse("program m\n  real :: a(1:5), b(0:5)\nend program").unwrap();
        let printed = unparse(&p1);
        assert!(printed.contains("a(5)"));
        assert!(printed.contains("b(0:5)"));
    }

    #[test]
    fn negative_int_literal_prints_parenthesized() {
        let e = Expr::IntLit(-3, crate::span::Span::DUMMY);
        let printed = unparse_expr(&e);
        // Reparses as Neg(3) — numerically identical; builders should
        // prefer Unary Neg for structural roundtrips.
        assert_eq!(printed, "(-3)");
    }
}
